#!/usr/bin/env sh
# Full local gate: everything CI would run, in the order that fails
# fastest. Run from the repository root before pushing.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo doc --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> trace_bubbles --smoke"
cargo run --release -p fps-bench --bin trace_bubbles -- --smoke > /dev/null

echo "==> bench_kernels --smoke"
cargo run --release -p fps-bench --bin bench_kernels -- --smoke > /dev/null

echo "All checks passed."
