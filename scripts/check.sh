#!/usr/bin/env sh
# Full local gate: everything CI would run, in the order that fails
# fastest. Run from the repository root before pushing.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo doc --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> trace_bubbles --smoke"
cargo run --release -p fps-bench --bin trace_bubbles -- --smoke > /dev/null

echo "==> bench_kernels --smoke (path identity + tiled/sparse gates, mode-tagged)"
# Asserts bitwise identity across Scalar/Parallel/Fused/Sparse (incl.
# the sparse GEMM row-split contract) and runs both speed gates; on
# hosts under 4 cores the tiled gate runs in modeled-makespan mode, so
# single-core CI cannot flake on wall-clock thread speedups.
cargo run --release -p fps-bench --bin bench_kernels -- --smoke > /dev/null

echo "==> bench_routing --smoke"
cargo run --release -p fps-bench --bin bench_routing -- --smoke > /dev/null

echo "==> bench_simtime --smoke (calendar >= 3x heap gate)"
cargo run --release -p fps-bench --bin bench_simtime -- --smoke > /dev/null

echo "==> fig16_fleet --smoke (affinity routing gates)"
cargo run --release -p fps-bench --bin fig16_fleet -- --smoke > /dev/null

echo "==> fig_chaos_fleet --smoke (fleet fault-tolerance gates)"
cargo run --release -p fps-bench --bin fig_chaos_fleet -- --smoke > /dev/null

echo "==> fig_stagegraph --smoke (stage-graph disaggregation gates)"
cargo run --release -p fps-bench --bin fig_stagegraph -- --smoke > /dev/null

echo "==> fig_cache_placement --smoke (placement + feedback-routing gates)"
# Asserts the legacy fingerprint (ring-order == pre-refactor store),
# popularity > ring-order on effective hit rate at Zipf(1.0), and
# feedback routing < blind affinity on cache-fetch p95 under the
# seeded slow-disk plan.
cargo run --release -p fps-bench --bin fig_cache_placement -- --smoke > /dev/null

echo "==> sim-vs-server decision parity (release)"
cargo test --release -q -p flashps --test integration_control > /dev/null

echo "==> fig12_e2e --quick replays the committed artifact byte-identically"
cargo run --release -q -p fps-bench --bin fig12_e2e -- --quick > /dev/null
git diff --exit-code -- results/fig12_e2e.json results/fig12_e2e.txt

echo "All checks passed."
