//! `flashps-cli` — drive the FlashPS system from the command line.
//!
//! ```text
//! flashps-cli edit  [--model sdxl] [--ratio 0.2] [--prompt "..."] [--seed 1] [--out edit.ppm]
//! flashps-cli serve [--model sdxl] [--rps 1.0] [--workers 4] [--duration 120] [--trace-out t.json]
//! flashps-cli plan  [--model sdxl] [--ratio 0.2] [--batch 4]
//! ```
//!
//! `edit` runs a real numeric edit and writes the output image; `serve`
//! runs the cluster simulator and prints latency statistics; `plan`
//! prints Algorithm 1's block decisions for a mask ratio.
//!
//! `serve --trace-out <path>` additionally records the run's span
//! timeline and writes it as Chrome trace JSON — load it in
//! `chrome://tracing` or <https://ui.perfetto.dev> (see README.md).
//! The export includes the control plane's decision events (admit /
//! shed / rung / route_decision, on the dedicated control track), each
//! stamped with the plane's clock domain.

use std::collections::HashMap;

use flashps::experiment::{run_serving, RouterKind, ServingRun};
use flashps::{FlashPs, FlashPsConfig};
use fps_baselines::{eval_setup, EvalSetup, SystemKind};
use fps_diffusion::{Image, ModelConfig};
use fps_serving::cost::BatchItem;
use fps_trace::{chrome_trace_string, Clock, TraceSink};
use fps_workload::trace::ArrivalProcess;
use fps_workload::{Mask, MaskShape, RatioDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn toy_model(name: &str) -> ModelConfig {
    match name {
        "sd21" | "sd2.1" => ModelConfig::sd21_like(),
        "flux" => ModelConfig::flux_like(),
        _ => ModelConfig::sdxl_like(),
    }
}

fn setup_for(name: &str) -> EvalSetup {
    let setups = eval_setup();
    let want = match name {
        "sd21" | "sd2.1" => "sd2.1",
        "flux" => "flux",
        _ => "sdxl",
    };
    setups
        .into_iter()
        .find(|s| s.model.name == want)
        .expect("known model")
}

fn cmd_edit(flags: &HashMap<String, String>) -> Result<(), String> {
    let cfg = toy_model(flags.get("model").map(String::as_str).unwrap_or("sdxl"));
    let ratio: f64 = flags
        .get("ratio")
        .map(|v| v.parse().map_err(|e| format!("bad --ratio: {e}")))
        .transpose()?
        .unwrap_or(0.2);
    let prompt = flags
        .get("prompt")
        .cloned()
        .unwrap_or_else(|| "add a red scarf".to_string());
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(1);
    let out_path = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "edit.ppm".to_string());

    let mut system = FlashPs::new(FlashPsConfig::new(cfg.clone())).map_err(|e| e.to_string())?;
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), seed ^ 0x7E);
    system
        .register_template(0, &template)
        .map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = Mask::generate(
        cfg.pixel_h(),
        cfg.pixel_w(),
        MaskShape::Blob,
        ratio,
        &mut rng,
    );
    let result = system
        .edit(0, &mask, &prompt, seed)
        .map_err(|e| e.to_string())?;
    std::fs::write(&out_path, result.output.image.to_ppm()).map_err(|e| e.to_string())?;
    println!(
        "edited {} ({} tokens masked, {:.1}% ratio) with \"{}\"",
        cfg.name,
        (result.mask_ratio * cfg.tokens() as f64).round() as usize,
        result.mask_ratio * 100.0,
        prompt
    );
    println!(
        "plan cached {}/{} blocks; {:.1}x fewer FLOPs than full recompute",
        result.use_cache.iter().filter(|&&b| b).count(),
        cfg.blocks,
        result.speedup_vs_full
    );
    println!("wrote {out_path}");
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let setup = setup_for(flags.get("model").map(String::as_str).unwrap_or("sdxl"));
    let rps: f64 = flags
        .get("rps")
        .map(|v| v.parse().map_err(|e| format!("bad --rps: {e}")))
        .transpose()?
        .unwrap_or(1.0);
    let workers: usize = flags
        .get("workers")
        .map(|v| v.parse().map_err(|e| format!("bad --workers: {e}")))
        .transpose()?
        .unwrap_or(4);
    let duration: f64 = flags
        .get("duration")
        .map(|v| v.parse().map_err(|e| format!("bad --duration: {e}")))
        .transpose()?
        .unwrap_or(120.0);
    let trace_out = flags.get("trace-out").cloned();
    println!(
        "simulating FlashPS: {} on {}, {workers} workers, {rps} req/s for {duration}s",
        setup.model.name, setup.gpu.name
    );
    let sink = match &trace_out {
        Some(_) => TraceSink::recording(Clock::Virtual),
        None => TraceSink::disabled(),
    };
    let run = ServingRun {
        system: SystemKind::FlashPs,
        router: RouterKind::MaskAware,
        workers,
        rps,
        arrivals: ArrivalProcess::Poisson,
        duration_secs: duration,
        ratio_dist: RatioDistribution::ProductionTrace,
        seed: 0xC11,
        trace: sink.clone(),
    };
    let point = run_serving(&setup, &run)
        .map_err(|e| e.to_string())?
        .ok_or("unsupported combination")?;
    println!(
        "served {} requests | mean {:.2}s | p95 {:.2}s | queueing {:.2}s | throughput {:.2} req/s",
        point.served, point.mean_latency, point.p95_latency, point.mean_queueing, point.throughput
    );
    if let Some(path) = trace_out {
        let t = sink.drain().ok_or("trace sink was not recording")?;
        std::fs::write(&path, chrome_trace_string(&t)).map_err(|e| e.to_string())?;
        println!(
            "wrote {} spans / {} events to {path} (open in chrome://tracing or ui.perfetto.dev)",
            t.spans.len(),
            t.events.len()
        );
    }
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), String> {
    let setup = setup_for(flags.get("model").map(String::as_str).unwrap_or("sdxl"));
    let ratio: f64 = flags
        .get("ratio")
        .map(|v| v.parse().map_err(|e| format!("bad --ratio: {e}")))
        .transpose()?
        .unwrap_or(0.2);
    let batch: usize = flags
        .get("batch")
        .map(|v| v.parse().map_err(|e| format!("bad --batch: {e}")))
        .transpose()?
        .unwrap_or(1);
    let cm = setup.cost_model();
    let items = vec![BatchItem { mask_ratio: ratio }; batch.max(1)];
    let (latency, plan) = cm.step_latency_mask_aware(&items, false);
    let full = cm.step_latency_full(batch.max(1));
    println!(
        "{} on {}: mask {ratio:.2}, batch {batch}",
        cm.model.name, cm.gpu.name
    );
    let picto: String = plan.iter().map(|&c| if c { 'C' } else { 'F' }).collect();
    println!("Algorithm 1 plan (C = cached, F = full): {picto}");
    println!(
        "step latency {:.1} ms (full recompute {:.1} ms, {:.2}x); request ≈ {:.2}s over {} steps",
        latency.as_millis_f64(),
        full.as_millis_f64(),
        full.as_secs_f64() / latency.as_secs_f64(),
        latency.as_secs_f64() * cm.model.steps as f64,
        cm.model.steps
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: flashps-cli <edit|serve|plan> [--model sd21|sdxl|flux] [flags...]\n\
                 see the crate docs for per-command flags";
    let Some(cmd) = args.first() else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "edit" => cmd_edit(&flags),
        "serve" => cmd_serve(&flags),
        "plan" => cmd_plan(&flags),
        _ => Err(usage.to_string()),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
