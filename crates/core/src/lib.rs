//! # FlashPS
//!
//! A reproduction of *FlashPS: Efficient Generative Image Editing with
//! Mask-aware Caching and Scheduling* (EuroSys '26) as a Rust library.
//!
//! FlashPS serves mask-guided image-editing requests efficiently by:
//!
//! 1. **Mask-aware caching** (§3): reusing cached transformer
//!    activations of *unmasked* tokens across requests that edit the
//!    same template, so only masked tokens are computed;
//! 2. **Bubble-free pipelined cache loading** (§4.2, Algorithm 1): a
//!    dynamic program chooses which transformer blocks consume cached
//!    activations so host→HBM loads hide behind computation;
//! 3. **Continuous batching with CPU/GPU disaggregation** (§4.3):
//!    requests join/leave the running batch at denoising-step
//!    boundaries, with pre/post-processing on separate processes;
//! 4. **Mask-aware load balancing** (§4.4, Algorithm 2): regression
//!    latency models route requests to the least-loaded worker.
//!
//! The crate exposes three layers:
//!
//! - [`FlashPs`] — the numeric editing system over the toy-scale
//!   diffusion substrate: register templates (priming their activation
//!   caches), then edit with any [`fps_diffusion::Strategy`].
//! - [`server::ThreadedServer`] — a real multi-threaded serving front
//!   end with step-level continuous batching over [`FlashPs`]. Its
//!   admission, degradation, and routing decisions come from the same
//!   clock-generic `fps_serving::ControlPlane` the cluster simulator
//!   uses, so policies validated in simulation carry over unchanged.
//! - [`scheduler::MaskAwareRouter`] + [`experiment`] — the cluster
//!   scheduler and the simulation harness reproducing the paper's
//!   serving experiments.
//!
//! ## Quickstart
//!
//! ```
//! use flashps::{FlashPs, FlashPsConfig};
//! use fps_diffusion::{Image, ModelConfig};
//! use fps_workload::{Mask, MaskShape};
//!
//! let cfg = ModelConfig::tiny();
//! let mut system = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
//! let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 42);
//! system.register_template(7, &template).unwrap();
//!
//! let mut rng = rand::rngs::mock::StepRng::new(1, 1);
//! let mask = Mask::generate(cfg.pixel_h(), cfg.pixel_w(), MaskShape::Rect, 0.25, &mut rng);
//! let result = system.edit(7, &mask, "add a red scarf", 1).unwrap();
//! assert!(result.output.image.data().iter().all(|v| v.is_finite()));
//! assert!(result.speedup_vs_full > 1.0);
//! ```

pub mod experiment;
pub mod scheduler;
pub mod server;
pub mod system;

pub use experiment::{run_serving, ServingPoint};
pub use scheduler::MaskAwareRouter;
pub use server::{EditJob, ServerConfig, StagedServerConfig, ThreadedServer, Ticket};
pub use system::{rung_strategy, EditResult, FlashPs, FlashPsConfig};

/// Errors surfaced by the FlashPS system.
#[derive(Debug)]
pub enum FlashPsError {
    /// Underlying numeric pipeline error.
    Diffusion(fps_diffusion::DiffusionError),
    /// Underlying serving simulator error.
    Serving(fps_serving::ServingError),
    /// Template was never registered.
    UnknownTemplate {
        /// The missing template id.
        template_id: u64,
    },
    /// The server is shutting down or a worker died.
    ServerClosed,
    /// The server's request queue is at its configured depth cap; the
    /// job was shed at admission instead of queued.
    Overloaded,
    /// The control plane rejected the job (overload-control admission:
    /// rate limit, queue bound, or deadline infeasibility).
    Rejected(fps_serving::RejectReason),
    /// The job exceeded its wall-clock deadline before completing.
    JobTimeout,
    /// A worker panicked while serving the job and the retry budget
    /// ran out.
    WorkerPanicked,
}

impl core::fmt::Display for FlashPsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Diffusion(e) => write!(f, "diffusion error: {e}"),
            Self::Serving(e) => write!(f, "serving error: {e}"),
            Self::UnknownTemplate { template_id } => {
                write!(f, "template {template_id} was never registered")
            }
            Self::ServerClosed => write!(f, "server closed"),
            Self::Overloaded => {
                write!(f, "server overloaded: request queue at capacity")
            }
            Self::Rejected(reason) => {
                write!(f, "control plane rejected the job: {}", reason.label())
            }
            Self::JobTimeout => write!(f, "job exceeded its deadline"),
            Self::WorkerPanicked => {
                write!(f, "worker panicked serving the job; retries exhausted")
            }
        }
    }
}

impl std::error::Error for FlashPsError {}

impl From<fps_diffusion::DiffusionError> for FlashPsError {
    fn from(e: fps_diffusion::DiffusionError) -> Self {
        Self::Diffusion(e)
    }
}

impl From<fps_serving::ServingError> for FlashPsError {
    fn from(e: fps_serving::ServingError) -> Self {
        Self::Serving(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, FlashPsError>;
