//! Algorithm 2: the mask-aware scheduling policy.
//!
//! For each candidate worker, the scheduler forms the hypothetical
//! batch `running_batch + new_request`, estimates its per-step compute
//! and cache-load latencies with the offline-fitted regression models
//! (Fig. 11), runs Algorithm 1's pipeline DP over those estimates, and
//! scores the worker by the pipeline latency scaled by the batch's
//! remaining denoising work. The request goes to the lowest-scoring
//! worker.

use fps_json::Json;
use fps_maskcache::pipeline::plan_uniform;
use fps_maskcache::BlockCosts;
use fps_serving::cost::{BatchItem, CostModel};
use fps_serving::profiler::{fit_latency_model, LatencyModel};
use fps_serving::router::{Router, WorkerView};
use fps_simtime::SimTime;
use fps_trace::{Clock, TraceSink, Track};
use fps_workload::RequestSpec;

use crate::Result;

/// The mask-aware router (Algorithm 2).
#[derive(Debug)]
pub struct MaskAwareRouter {
    cost: CostModel,
    latency: LatencyModel,
    decisions: u64,
    trace: TraceSink,
}

impl MaskAwareRouter {
    /// Fits the regression models offline and builds the router.
    ///
    /// # Errors
    ///
    /// Propagates profiler fitting failures.
    pub fn new(cost: CostModel) -> Result<Self> {
        let (latency, _, _) = fit_latency_model(&cost)?;
        Ok(Self {
            cost,
            latency,
            decisions: 0,
            trace: TraceSink::disabled(),
        })
    }

    /// Attaches a trace sink; every routing decision becomes a
    /// scheduler-track instant event carrying the chosen worker and
    /// its estimated cost.
    ///
    /// # Panics
    ///
    /// Panics on a wall-clock sink: `route` timestamps with the
    /// simulator's [`SimTime`], so the sink must be virtual (share the
    /// one passed to `ClusterConfig::trace`).
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        assert_ne!(
            sink.clock(),
            Some(Clock::Wall),
            "MaskAwareRouter routes on virtual time; attach the ClusterSim's \
             virtual-clock sink"
        );
        self.trace = sink;
        self
    }

    /// The fitted latency models (for inspection and the Fig. 11
    /// bench).
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Scheduling decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Algorithm 2's `CalcCost`: the estimated serving latency of a
    /// worker if `req` joined its outstanding batch.
    pub fn calc_cost(&self, req: &RequestSpec, worker: &WorkerView) -> f64 {
        // new_batch ← worker.running_batch + req.
        let mut batch: Vec<BatchItem> = worker
            .outstanding
            .iter()
            .map(|r| BatchItem {
                mask_ratio: r.mask_ratio,
            })
            .collect();
        batch.push(BatchItem {
            mask_ratio: req.mask_ratio,
        });

        // Per-block latency estimates from the regression models.
        let blocks = self.cost.model.blocks.max(1);
        let compute_cached = self
            .latency
            .predict_compute(&self.cost, &batch)
            .mul_f64(1.0 / blocks as f64);
        let load = self
            .latency
            .predict_load(&self.cost, &batch)
            .mul_f64(1.0 / blocks as f64);
        // C_w/o: the compute estimate at mask ratio 1 for the same
        // batch size.
        let full_batch: Vec<BatchItem> = batch
            .iter()
            .map(|_| BatchItem { mask_ratio: 1.0 })
            .collect();
        let compute_full = self
            .latency
            .predict_compute(&self.cost, &full_batch)
            .mul_f64(1.0 / blocks as f64);

        // dp(new_batch, Comp(·), Load(·)) — Algorithm 1 extended with
        // the estimated costs.
        let plan = plan_uniform(
            blocks,
            BlockCosts {
                compute_cached,
                compute_full,
                load,
            },
        );

        // Scale per-step latency by the batch's remaining denoising
        // work (steps left of outstanding requests; the new request
        // runs the full schedule).
        let total_remaining: usize = worker
            .outstanding
            .iter()
            .map(|r| r.steps_left)
            .sum::<usize>()
            + self.cost.model.steps;
        let mean_remaining = total_remaining as f64 / batch.len() as f64;
        // Overflow beyond the batch capacity queues behind the batch:
        // penalize proportionally.
        let overflow = (batch.len() as f64 / worker.max_batch.max(1) as f64).max(1.0);
        plan.latency.as_secs_f64() * mean_remaining * overflow
    }
}

impl Router for MaskAwareRouter {
    fn route(&mut self, req: &RequestSpec, workers: &[WorkerView], now: SimTime) -> usize {
        self.decisions += 1;
        let (chosen, cost) = workers
            .iter()
            .map(|w| (w.id, self.calc_cost(req, w)))
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            })
            .unwrap_or((0, 0.0));
        if self.trace.is_enabled() {
            self.trace.event_at(
                "route",
                "scheduler",
                Track::new(0, 0),
                now.as_nanos(),
                vec![
                    ("id", Json::U64(req.id)),
                    ("worker", Json::U64(chosen as u64)),
                    ("est_cost_secs", Json::F64(cost)),
                ],
            );
        }
        chosen
    }

    fn name(&self) -> &'static str {
        "mask-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_diffusion::ModelConfig;
    use fps_serving::cost::GpuSpec;
    use fps_serving::worker::OutstandingReq;
    use fps_workload::trace::MaskShapeSpec;

    fn router() -> MaskAwareRouter {
        MaskAwareRouter::new(CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl())).unwrap()
    }

    fn req(m: f64) -> RequestSpec {
        RequestSpec {
            id: 0,
            arrival_ns: 0,
            template_id: 0,
            mask_ratio: m,
            mask_shape: MaskShapeSpec::Rect,
            seed: 0,
        }
    }

    fn view(id: usize, ratios: &[f64], steps_left: usize) -> WorkerView {
        WorkerView {
            id,
            outstanding: ratios
                .iter()
                .map(|&m| OutstandingReq {
                    mask_ratio: m,
                    steps_left,
                })
                .collect(),
            max_batch: 8,
            model_tokens: 4096,
            health: fps_serving::worker::WorkerHealth::Healthy,
        }
    }

    #[test]
    fn prefers_idle_workers() {
        let mut r = router();
        let ws = vec![view(0, &[0.3, 0.3], 40), view(1, &[], 0)];
        assert_eq!(r.route(&req(0.2), &ws, SimTime::ZERO), 1);
        assert_eq!(r.decisions(), 1);
        assert_eq!(r.name(), "mask-aware");
    }

    #[test]
    fn sees_mask_sizes_not_just_counts() {
        // Worker 0: one huge mask; worker 1: two tiny masks. A
        // request-count balancer picks 0; mask-aware picks 1.
        let mut r = router();
        let ws = vec![view(0, &[0.9], 50), view(1, &[0.05, 0.05], 50)];
        assert_eq!(r.route(&req(0.1), &ws, SimTime::ZERO), 1);
    }

    #[test]
    fn cost_grows_with_load() {
        let r = router();
        let idle = view(0, &[], 0);
        let busy = view(0, &[0.3, 0.3, 0.3], 50);
        let c_idle = r.calc_cost(&req(0.2), &idle);
        let c_busy = r.calc_cost(&req(0.2), &busy);
        assert!(c_busy > c_idle, "busy {c_busy} vs idle {c_idle}");
        assert!(c_idle > 0.0);
    }

    #[test]
    fn overflow_beyond_capacity_is_penalized() {
        let r = router();
        let mut full = view(0, &[0.2; 8], 50);
        full.max_batch = 8;
        let mut half = view(1, &[0.2; 4], 50);
        half.max_batch = 8;
        let c_full = r.calc_cost(&req(0.2), &full);
        let c_half = r.calc_cost(&req(0.2), &half);
        assert!(c_full > c_half);
    }

    #[test]
    fn empty_worker_list_defaults_to_zero() {
        let mut r = router();
        assert_eq!(r.route(&req(0.2), &[], SimTime::ZERO), 0);
    }

    #[test]
    fn routing_decisions_are_traced() {
        let sink = TraceSink::recording(Clock::Virtual);
        let mut r = router().with_trace(sink.clone());
        let ws = vec![view(0, &[], 0), view(1, &[0.5, 0.5], 40)];
        r.route(&req(0.2), &ws, SimTime::from_nanos(5_000));
        let t = sink.drain().unwrap();
        assert_eq!(t.events.len(), 1);
        let ev = &t.events[0];
        assert_eq!(ev.name, "route");
        assert_eq!(ev.ts_ns, 5_000);
        assert_eq!(ev.arg("worker").and_then(Json::as_u64), Some(0));
    }

    #[test]
    #[should_panic(expected = "virtual-clock")]
    fn wall_clock_sink_is_rejected() {
        let _ = router().with_trace(TraceSink::recording(Clock::Wall));
    }
}
