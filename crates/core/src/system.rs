//! The FlashPS numeric editing system: the public API a downstream
//! user drives.
//!
//! [`FlashPs`] owns a toy-scale diffusion pipeline, a template
//! registry whose activation caches are primed on registration (§2.2
//! "reusability of the templates"), and a planner that runs
//! Algorithm 1 against a calibrated cost model to decide which blocks
//! consume cached activations for each request's mask ratio.

use std::collections::HashMap;

use fps_baselines::system::teacache_threshold;
use fps_diffusion::{EditOutput, EditPipeline, Image, ModelConfig, Strategy, TemplateCache};
use fps_serving::cost::{BatchItem, CostModel, GpuSpec};
use fps_serving::Rung;
use fps_workload::Mask;

use crate::{FlashPsError, Result};

/// Configuration of a [`FlashPs`] instance.
#[derive(Debug, Clone)]
pub struct FlashPsConfig {
    /// The (runnable, toy-scale) model to serve.
    pub model: ModelConfig,
    /// Cost model driving Algorithm 1's per-request block plans. The
    /// planner maps the toy model's mask ratios onto this analytic
    /// model, defaulting to the paper-scale config matching the toy
    /// preset's architecture on an H800.
    pub planner: CostModel,
    /// Capture K/V activations at priming (enables the Fig. 7
    /// variant at 2× cache size).
    pub capture_kv: bool,
    /// Host-memory budget for primed template caches, in bytes
    /// (`u64::MAX` = unbounded). When a registration would exceed the
    /// budget, least-recently-used templates are evicted (§4.2's LRU
    /// policy at the API level; re-registering re-primes).
    pub cache_budget_bytes: u64,
}

impl FlashPsConfig {
    /// Default configuration for a toy model: paper-scale planner of
    /// the matching architecture on an H800.
    pub fn new(model: ModelConfig) -> Self {
        let analytic = match model.name.as_str() {
            n if n.starts_with("sd21") => ModelConfig::paper_sd21(),
            n if n.starts_with("sdxl") => ModelConfig::paper_sdxl(),
            n if n.starts_with("flux") => ModelConfig::paper_flux(),
            _ => {
                // Unknown toy config: scale the analytic model from its
                // own block count so plans have the right length.
                let mut m = ModelConfig::paper_sdxl();
                m.blocks = model.blocks;
                m
            }
        };
        let mut planner_model = analytic;
        // The plan length must match the runnable model's block count.
        planner_model.blocks = model.blocks;
        Self {
            planner: CostModel::new(GpuSpec::h800(), planner_model),
            model,
            capture_kv: false,
            cache_budget_bytes: u64::MAX,
        }
    }
}

/// The outcome of one edit through the system.
#[derive(Debug, Clone)]
pub struct EditResult {
    /// The numeric pipeline output (image, FLOPs, step counts).
    pub output: EditOutput,
    /// Algorithm 1's per-block cache decisions used for this request.
    pub use_cache: Vec<bool>,
    /// Analytic FLOP speedup vs full recomputation.
    pub speedup_vs_full: f64,
    /// The request's token-level mask ratio.
    pub mask_ratio: f64,
    /// Degradation rung the request was served at, when it went
    /// through a control plane with overload control active (`None`
    /// for direct edits and servers without a ladder).
    pub rung: Option<Rung>,
}

/// Numeric strategy a degradation rung serves with on a real pipeline;
/// the step-skip thresholds mirror the rung compute fractions (a lower
/// fraction skips more steps).
///
/// This is the rung → mechanism mapping shared by the overload
/// ablation and the threaded server: the control plane picks the rung,
/// this function picks the [`Strategy`] that realizes it on the
/// runnable pipeline.
pub fn rung_strategy(rung: Rung, system: &FlashPs, ratio: f64, steps: usize) -> Strategy {
    match rung {
        Rung::FlashPsKv => Strategy::MaskAware {
            use_cache: system.plan_for_ratio(ratio),
            kv: true,
        },
        Rung::FlashPs => Strategy::MaskAware {
            use_cache: system.plan_for_ratio(ratio),
            kv: false,
        },
        Rung::TeaCacheHigh => Strategy::StepSkip {
            threshold: teacache_threshold(steps),
        },
        Rung::TeaCacheLow | Rung::ReducedSteps => Strategy::StepSkip {
            threshold: 2.0 * teacache_threshold(steps),
        },
    }
}

/// Bytes of a template cache, counting K/V when captured.
fn cache_bytes(c: &TemplateCache) -> u64 {
    c.bytes_y() + c.bytes_kv()
}

/// The FlashPS editing system.
#[derive(Debug)]
pub struct FlashPs {
    config: FlashPsConfig,
    pipeline: EditPipeline,
    templates: HashMap<u64, TemplateCache>,
    images: HashMap<u64, Image>,
    /// LRU clock: template id → last-touch stamp.
    last_used: HashMap<u64, u64>,
    clock: u64,
    evictions: u64,
}

impl FlashPs {
    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures for inconsistent
    /// configs.
    pub fn new(config: FlashPsConfig) -> Result<Self> {
        let pipeline = EditPipeline::new(&config.model)?;
        Ok(Self {
            config,
            pipeline,
            templates: HashMap::new(),
            images: HashMap::new(),
            last_used: HashMap::new(),
            clock: 0,
            evictions: 0,
        })
    }

    /// The underlying pipeline (for probes, baselines, and analyses).
    pub fn pipeline(&self) -> &EditPipeline {
        &self.pipeline
    }

    /// Attaches a wall-clock trace sink to the pipeline: session
    /// setup, every denoising step, and VAE decode become spans on
    /// `track`. See [`EditPipeline::set_trace_sink`].
    pub fn set_trace_sink(&mut self, sink: fps_trace::TraceSink, track: fps_trace::Track) {
        self.pipeline.set_trace_sink(sink, track);
    }

    /// The system configuration.
    pub fn config(&self) -> &FlashPsConfig {
        &self.config
    }

    /// Registers a template: primes and stores its activation cache.
    /// Re-registering an id replaces the template.
    ///
    /// # Errors
    ///
    /// Propagates priming failures (e.g. wrong image dimensions).
    pub fn register_template(&mut self, template_id: u64, image: &Image) -> Result<()> {
        let cache = self
            .pipeline
            .prime(image, template_id, self.config.capture_kv)?;
        // Evict before inserting so the new cache never evicts itself.
        self.remove_template(template_id);
        let incoming = cache_bytes(&cache);
        self.evict_to_fit(incoming);
        self.templates.insert(template_id, cache);
        self.images.insert(template_id, image.clone());
        self.touch(template_id);
        Ok(())
    }

    /// Removes a template's cache and image; returns whether it
    /// existed.
    pub fn remove_template(&mut self, template_id: u64) -> bool {
        self.last_used.remove(&template_id);
        self.images.remove(&template_id);
        self.templates.remove(&template_id).is_some()
    }

    /// Total bytes of all resident template caches.
    pub fn cache_bytes_resident(&self) -> u64 {
        self.templates.values().map(cache_bytes).sum()
    }

    /// Templates evicted by the LRU budget so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn touch(&mut self, template_id: u64) {
        self.clock += 1;
        self.last_used.insert(template_id, self.clock);
    }

    /// Spills a template's cache to its serialized byte form and
    /// removes it from host memory — pair with
    /// [`FlashPs::restore_template`] to round-trip through disk or the
    /// hierarchical store's payload path (§4.2 secondary storage).
    ///
    /// # Errors
    ///
    /// Returns [`FlashPsError::UnknownTemplate`] when absent.
    pub fn spill_template(&mut self, template_id: u64) -> Result<(Vec<u8>, Image)> {
        let cache = self
            .templates
            .get(&template_id)
            .ok_or(FlashPsError::UnknownTemplate { template_id })?;
        let bytes = cache.to_bytes();
        let image = self
            .images
            .get(&template_id)
            .cloned()
            .ok_or(FlashPsError::UnknownTemplate { template_id })?;
        self.remove_template(template_id);
        Ok((bytes, image))
    }

    /// Restores a spilled template without re-priming.
    ///
    /// # Errors
    ///
    /// Propagates deserialization failures for corrupt blobs.
    pub fn restore_template(&mut self, bytes: &[u8], image: Image) -> Result<u64> {
        let cache = TemplateCache::from_bytes(bytes)?;
        let template_id = cache.template_id;
        self.remove_template(template_id);
        let incoming = cache_bytes(&cache);
        self.evict_to_fit(incoming);
        self.templates.insert(template_id, cache);
        self.images.insert(template_id, image);
        self.touch(template_id);
        Ok(template_id)
    }

    fn evict_to_fit(&mut self, incoming: u64) {
        let budget = self.config.cache_budget_bytes;
        while self.cache_bytes_resident().saturating_add(incoming) > budget {
            let victim = self
                .last_used
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(&id, _)| id);
            let Some(victim) = victim else { break };
            self.remove_template(victim);
            self.evictions += 1;
        }
    }

    /// Number of registered templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Cache bytes held for a template (Y variant), if registered.
    pub fn template_cache_bytes(&self, template_id: u64) -> Option<u64> {
        self.templates.get(&template_id).map(|c| c.bytes_y())
    }

    /// Looks up a registered template's cache and image.
    ///
    /// # Errors
    ///
    /// Returns [`FlashPsError::UnknownTemplate`] when absent.
    pub fn template(&self, template_id: u64) -> Result<(&Image, &TemplateCache)> {
        match (
            self.images.get(&template_id),
            self.templates.get(&template_id),
        ) {
            (Some(img), Some(cache)) => Ok((img, cache)),
            _ => Err(FlashPsError::UnknownTemplate { template_id }),
        }
    }

    /// Algorithm 1's block plan for a mask ratio under the planner's
    /// cost model (batch size 1).
    pub fn plan_for_ratio(&self, mask_ratio: f64) -> Vec<bool> {
        let (_, plan) = self
            .config
            .planner
            .step_latency_mask_aware(&[BatchItem { mask_ratio }], self.config.capture_kv);
        plan
    }

    /// Edits a registered template with FlashPS's mask-aware strategy.
    ///
    /// The pixel mask is projected onto the latent token grid; the
    /// block plan comes from Algorithm 1 at the request's mask ratio.
    ///
    /// # Errors
    ///
    /// Returns [`FlashPsError::UnknownTemplate`] for unregistered
    /// templates and propagates pipeline errors.
    pub fn edit(
        &self,
        template_id: u64,
        mask: &Mask,
        prompt: &str,
        seed: u64,
    ) -> Result<EditResult> {
        let cfg = &self.config.model;
        let masked_idx = mask.token_indices(cfg.latent_h, cfg.latent_w);
        self.edit_tokens(template_id, &masked_idx, prompt, seed)
    }

    /// Edits with an explicit token-level mask.
    ///
    /// # Errors
    ///
    /// Returns [`FlashPsError::UnknownTemplate`] for unregistered
    /// templates and propagates pipeline errors.
    pub fn edit_tokens(
        &self,
        template_id: u64,
        masked_idx: &[usize],
        prompt: &str,
        seed: u64,
    ) -> Result<EditResult> {
        let (image, cache) = self.template(template_id)?;
        let cfg = &self.config.model;
        let mask_ratio = masked_idx.len() as f64 / cfg.tokens() as f64;
        let use_cache = self.plan_for_ratio(mask_ratio);
        let strategy = Strategy::MaskAware {
            use_cache: use_cache.clone(),
            kv: self.config.capture_kv,
        };
        let output = self.pipeline.edit(
            image,
            template_id,
            masked_idx,
            prompt,
            seed,
            &strategy,
            Some(cache),
        )?;
        let full = fps_diffusion::flops::step_flops_full(cfg, 1) * cfg.steps as u64;
        let speedup = full as f64 / output.flops.max(1) as f64;
        Ok(EditResult {
            output,
            use_cache,
            speedup_vs_full: speedup,
            mask_ratio,
            rung: None,
        })
    }

    /// Edits with automatic strategy selection (§7 of the paper): for
    /// style-transfer-like requests whose masks cover most of the
    /// canvas, mask-aware computation stops paying off and the system
    /// falls back to full recomputation.
    ///
    /// # Errors
    ///
    /// As [`FlashPs::edit`].
    pub fn edit_auto(
        &self,
        template_id: u64,
        mask: &Mask,
        prompt: &str,
        seed: u64,
    ) -> Result<EditResult> {
        let cfg = &self.config.model;
        let masked_idx = mask.token_indices(cfg.latent_h, cfg.latent_w);
        let mask_ratio = masked_idx.len() as f64 / cfg.tokens() as f64;
        let use_cache = self.plan_for_ratio(mask_ratio);
        let aware_pays_off = use_cache.iter().any(|&b| b) && mask_ratio < 0.9;
        if aware_pays_off {
            return self.edit_tokens(template_id, &masked_idx, prompt, seed);
        }
        let (image, cache) = self.template(template_id)?;
        let output = self.pipeline.edit(
            image,
            template_id,
            &masked_idx,
            prompt,
            seed,
            &Strategy::FullRecompute,
            Some(cache),
        )?;
        Ok(EditResult {
            output,
            use_cache: vec![false; cfg.blocks],
            speedup_vs_full: 1.0,
            mask_ratio,
            rung: None,
        })
    }

    /// Runs a baseline strategy on a registered template (for quality
    /// and ablation comparisons).
    ///
    /// # Errors
    ///
    /// Returns [`FlashPsError::UnknownTemplate`] for unregistered
    /// templates and propagates pipeline errors.
    pub fn edit_with_strategy(
        &self,
        template_id: u64,
        mask: &Mask,
        prompt: &str,
        seed: u64,
        strategy: &Strategy,
    ) -> Result<EditOutput> {
        let (image, cache) = self.template(template_id)?;
        let cfg = &self.config.model;
        let masked_idx = mask.token_indices(cfg.latent_h, cfg.latent_w);
        Ok(self.pipeline.edit(
            image,
            template_id,
            &masked_idx,
            prompt,
            seed,
            strategy,
            Some(cache),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_workload::MaskShape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn system() -> (FlashPs, Mask) {
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 11);
        sys.register_template(1, &template).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mask = Mask::generate(
            cfg.pixel_h(),
            cfg.pixel_w(),
            MaskShape::Rect,
            0.25,
            &mut rng,
        );
        (sys, mask)
    }

    #[test]
    fn register_and_edit() {
        let (sys, mask) = system();
        assert_eq!(sys.template_count(), 1);
        assert!(sys.template_cache_bytes(1).unwrap() > 0);
        let result = sys.edit(1, &mask, "add flowers", 7).unwrap();
        assert!(result.mask_ratio > 0.0 && result.mask_ratio < 1.0);
        assert_eq!(result.use_cache.len(), sys.config().model.blocks);
        assert!(
            result.speedup_vs_full > 1.0,
            "got {}",
            result.speedup_vs_full
        );
        assert!(result.output.image.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn unknown_template_rejected() {
        let (sys, mask) = system();
        assert!(matches!(
            sys.edit(99, &mask, "x", 0),
            Err(FlashPsError::UnknownTemplate { template_id: 99 })
        ));
        assert!(sys.template(99).is_err());
        assert!(sys.template_cache_bytes(99).is_none());
    }

    #[test]
    fn plans_depend_on_mask_ratio() {
        let (sys, _) = system();
        let small = sys.plan_for_ratio(0.05);
        let large = sys.plan_for_ratio(0.9);
        assert_eq!(small.len(), sys.config().model.blocks);
        // Larger masks are compute-bound: at least as many blocks can
        // afford the cache.
        let cached_small = small.iter().filter(|&&b| b).count();
        let cached_large = large.iter().filter(|&&b| b).count();
        assert!(cached_large >= cached_small.min(1));
    }

    #[test]
    fn baseline_strategy_runs() {
        let (sys, mask) = system();
        let out = sys
            .edit_with_strategy(1, &mask, "x", 5, &Strategy::FullRecompute)
            .unwrap();
        assert_eq!(out.steps_skipped, 0);
        let flash = sys.edit(1, &mask, "x", 5).unwrap();
        assert!(flash.output.flops < out.flops);
    }

    #[test]
    fn edits_are_deterministic() {
        let (sys, mask) = system();
        let a = sys.edit(1, &mask, "p", 9).unwrap();
        let b = sys.edit(1, &mask, "p", 9).unwrap();
        assert_eq!(a.output.image, b.output.image);
        // Different seeds diverge in the masked region.
        let c = sys.edit(1, &mask, "p", 10).unwrap();
        assert_ne!(a.output.image, c.output.image);
    }

    #[test]
    fn lru_budget_evicts_oldest_templates() {
        let cfg = ModelConfig::tiny();
        let mut config = FlashPsConfig::new(cfg.clone());
        // Budget fits exactly two tiny template caches.
        let one = {
            let mut probe = FlashPs::new(config.clone()).unwrap();
            probe
                .register_template(0, &Image::template(cfg.pixel_h(), cfg.pixel_w(), 0))
                .unwrap();
            probe.cache_bytes_resident()
        };
        config.cache_budget_bytes = 2 * one;
        let mut sys = FlashPs::new(config).unwrap();
        for id in 0..3u64 {
            let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), id);
            sys.register_template(id, &img).unwrap();
        }
        assert_eq!(sys.template_count(), 2, "budget holds two caches");
        assert_eq!(sys.evictions(), 1);
        assert!(sys.template(0).is_err(), "oldest evicted");
        assert!(sys.template(2).is_ok(), "newest resident");
        assert!(sys.cache_bytes_resident() <= 2 * one);
    }

    #[test]
    fn auto_strategy_falls_back_on_huge_masks() {
        let (sys, small_mask) = system();
        let cfg = sys.config().model.clone();
        // A near-total mask: style-transfer territory.
        let mut huge = Mask::empty(cfg.pixel_h(), cfg.pixel_w());
        for y in 0..cfg.pixel_h() {
            for x in 0..cfg.pixel_w() {
                huge.set(y, x, true);
            }
        }
        let full = sys.edit_auto(1, &huge, "style", 1).unwrap();
        assert!(
            full.use_cache.iter().all(|&b| !b),
            "huge mask must fall back to full recompute"
        );
        assert!((full.speedup_vs_full - 1.0).abs() < 1e-9);
        // Small masks still go mask-aware.
        let aware = sys.edit_auto(1, &small_mask, "edit", 1).unwrap();
        assert!(aware.use_cache.iter().any(|&b| b));
        assert!(aware.speedup_vs_full > 1.0);
    }

    #[test]
    fn spill_and_restore_round_trip() {
        let (mut sys, mask) = system();
        let before = sys.edit(1, &mask, "p", 7).unwrap();
        let (bytes, image) = sys.spill_template(1).unwrap();
        assert_eq!(sys.template_count(), 0);
        assert!(sys.edit(1, &mask, "p", 7).is_err(), "spilled away");
        let id = sys.restore_template(&bytes, image).unwrap();
        assert_eq!(id, 1);
        let after = sys.edit(1, &mask, "p", 7).unwrap();
        assert_eq!(
            before.output.image, after.output.image,
            "restore must not change outputs"
        );
        // Corrupt blobs are rejected.
        assert!(sys
            .restore_template(&bytes[..bytes.len() / 2], Image::zeros(1, 1))
            .is_err());
        assert!(sys.spill_template(99).is_err());
    }

    #[test]
    fn remove_template_frees_bytes() {
        let (mut sys, _) = system();
        assert!(sys.cache_bytes_resident() > 0);
        assert!(sys.remove_template(1));
        assert!(!sys.remove_template(1));
        assert_eq!(sys.cache_bytes_resident(), 0);
        assert_eq!(sys.template_count(), 0);
    }

    #[test]
    fn reregistration_replaces_template() {
        let (mut sys, mask) = system();
        let cfg = sys.config().model.clone();
        let other = Image::template(cfg.pixel_h(), cfg.pixel_w(), 99);
        sys.register_template(1, &other).unwrap();
        assert_eq!(sys.template_count(), 1);
        let out = sys.edit(1, &mask, "p", 1).unwrap();
        assert!(out.output.image.data().iter().all(|v| v.is_finite()));
    }
}
