//! Experiment harness: one-call serving runs for the bench binaries.

use fps_json::{Json, ToJson};

use fps_baselines::{EvalSetup, SystemKind};
use fps_serving::cost::CostModel;
use fps_serving::router::{LeastLoadedRouter, RoundRobinRouter, Router, TokenCountRouter};
use fps_serving::{ClusterSim, RunReport};
use fps_trace::TraceSink;
use fps_workload::trace::ArrivalProcess;
use fps_workload::{RatioDistribution, Trace, TraceConfig};

use crate::scheduler::MaskAwareRouter;
use crate::{FlashPsError, Result};

/// Which routing policy a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Round-robin placement.
    RoundRobin,
    /// Request-count balancing (baseline of §6.5).
    RequestCount,
    /// Masked-token-count balancing (baseline of §6.5).
    TokenCount,
    /// Algorithm 2 (FlashPS).
    MaskAware,
}

impl RouterKind {
    /// Instantiates the router; the mask-aware policy fits its
    /// regression models against `cost`.
    ///
    /// # Errors
    ///
    /// Propagates profiler fitting failures for the mask-aware policy.
    pub fn build(self, cost: &CostModel) -> Result<Box<dyn Router>> {
        self.build_traced(cost, &TraceSink::disabled())
    }

    /// Like [`RouterKind::build`], with a virtual-clock trace sink
    /// attached to policies that record routing decisions (currently
    /// the mask-aware policy).
    ///
    /// # Errors
    ///
    /// Propagates profiler fitting failures for the mask-aware policy.
    ///
    /// # Panics
    ///
    /// Panics when `trace` is a wall-clock sink (routing runs on
    /// virtual time).
    pub fn build_traced(self, cost: &CostModel, trace: &TraceSink) -> Result<Box<dyn Router>> {
        Ok(match self {
            Self::RoundRobin => Box::new(RoundRobinRouter::default()),
            Self::RequestCount => Box::new(LeastLoadedRouter),
            Self::TokenCount => Box::new(TokenCountRouter),
            Self::MaskAware => {
                Box::new(MaskAwareRouter::new(cost.clone())?.with_trace(trace.clone()))
            }
        })
    }

    /// Policy label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Self::RoundRobin => "round-robin",
            Self::RequestCount => "request-count",
            Self::TokenCount => "token-count",
            Self::MaskAware => "mask-aware",
        }
    }
}

/// Parameters of one serving run.
#[derive(Debug, Clone)]
pub struct ServingRun {
    /// System under test.
    pub system: SystemKind,
    /// Routing policy.
    pub router: RouterKind,
    /// Worker replicas.
    pub workers: usize,
    /// Mean request rate (requests/second).
    pub rps: f64,
    /// Arrival process (Poisson by default; bursty for the load-
    /// balancing experiments, per §4.4's bursty-traffic observation).
    pub arrivals: ArrivalProcess,
    /// Trace duration in virtual seconds.
    pub duration_secs: f64,
    /// Mask-ratio distribution.
    pub ratio_dist: RatioDistribution,
    /// Trace seed.
    pub seed: u64,
    /// Virtual-clock span sink shared by the cluster, its cache store,
    /// the control plane (decision events, stamped with the plane's
    /// clock domain), and (for the mask-aware policy) the router.
    /// Disabled by default; drain it after [`run_serving`] returns to
    /// inspect or export the run's timeline.
    pub trace: TraceSink,
}

impl Default for ServingRun {
    fn default() -> Self {
        Self {
            system: SystemKind::FlashPs,
            router: RouterKind::MaskAware,
            workers: 8,
            rps: 1.0,
            arrivals: ArrivalProcess::Poisson,
            duration_secs: 300.0,
            ratio_dist: RatioDistribution::ProductionTrace,
            seed: 0xE2E,
            trace: TraceSink::disabled(),
        }
    }
}

/// One measured point of a serving sweep (a row of Fig. 12 / 16).
#[derive(Debug, Clone)]
pub struct ServingPoint {
    /// System label.
    pub system: String,
    /// Model label.
    pub model: String,
    /// Router label.
    pub router: String,
    /// Offered load (requests/second).
    pub rps: f64,
    /// Requests served.
    pub served: usize,
    /// Mean end-to-end latency (s).
    pub mean_latency: f64,
    /// P95 end-to-end latency (s).
    pub p95_latency: f64,
    /// Mean queueing time (s).
    pub mean_queueing: f64,
    /// Achieved throughput (requests/second).
    pub throughput: f64,
}

/// Runs one serving experiment on an evaluation setup.
///
/// Returns `None` when the system cannot serve the setup's model
/// (FISEdit beyond SD2.1).
///
/// # Errors
///
/// Propagates simulator and router-construction failures.
pub fn run_serving(setup: &EvalSetup, run: &ServingRun) -> Result<Option<ServingPoint>> {
    let Some(mut config) = setup.cluster_config(run.system, run.workers) else {
        return Ok(None);
    };
    config.trace = run.trace.clone();
    let trace = Trace::generate(&TraceConfig {
        rps: run.rps,
        arrivals: run.arrivals,
        duration_secs: run.duration_secs,
        ratio_dist: run.ratio_dist,
        num_templates: 16,
        zipf_s: 1.0,
        seed: run.seed,
    });
    let mut router = run.router.build_traced(&config.cost, &run.trace)?;
    let report = ClusterSim::run(config, &trace, router.as_mut())?;
    Ok(Some(point_from_report(
        run.system.label(),
        &setup.model.name,
        run.router.label(),
        run.rps,
        &report,
    )))
}

/// Converts a raw report into a serving point.
pub fn point_from_report(
    system: &str,
    model: &str,
    router: &str,
    rps: f64,
    report: &RunReport,
) -> ServingPoint {
    ServingPoint {
        system: system.to_string(),
        model: model.to_string(),
        router: router.to_string(),
        rps,
        served: report.outcomes.len(),
        mean_latency: report.mean_latency(),
        p95_latency: report.p95_latency(),
        mean_queueing: report.mean_queueing(),
        throughput: report.throughput_rps,
    }
}

impl ToJson for ServingPoint {
    fn to_json(&self) -> Json {
        Json::object()
            .with("system", self.system.as_str())
            .with("model", self.model.as_str())
            .with("router", self.router.as_str())
            .with("rps", self.rps)
            .with("served", self.served)
            .with("mean_latency", self.mean_latency)
            .with("p95_latency", self.p95_latency)
            .with("mean_queueing", self.mean_queueing)
            .with("throughput", self.throughput)
    }
}

/// Serializes a slice of points to pretty JSON (experiment binaries
/// dump these next to their text tables).
pub fn to_json<T: ToJson>(points: &[T]) -> String {
    points.to_json().to_string_pretty()
}

/// Convenience: the full Fig. 12 grid for one setup — every supported
/// system at each RPS.
///
/// # Errors
///
/// Propagates per-run failures.
pub fn fig12_grid(
    setup: &EvalSetup,
    rps_values: &[f64],
    workers: usize,
    duration_secs: f64,
) -> Result<Vec<ServingPoint>> {
    let mut points = Vec::new();
    for &rps in rps_values {
        for system in SystemKind::all() {
            let run = ServingRun {
                system,
                // Baselines ship with request-level balancing (§6.1);
                // FlashPS uses Algorithm 2.
                router: if system == SystemKind::FlashPs {
                    RouterKind::MaskAware
                } else {
                    RouterKind::RequestCount
                },
                workers,
                rps,
                duration_secs,
                ratio_dist: RatioDistribution::ProductionTrace,
                arrivals: ArrivalProcess::Poisson,
                seed: 0xF1612,
                trace: TraceSink::disabled(),
            };
            if let Some(p) = run_serving(setup, &run)? {
                points.push(p);
            }
        }
    }
    if points.is_empty() {
        return Err(FlashPsError::Serving(
            fps_serving::ServingError::InvalidConfig {
                reason: "no system supported the setup".into(),
            },
        ));
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_baselines::eval_setup;

    #[test]
    fn run_serving_produces_sane_points() {
        let setups = eval_setup();
        let run = ServingRun {
            duration_secs: 60.0,
            workers: 2,
            rps: 0.5,
            ..Default::default()
        };
        let p = run_serving(&setups[1], &run).unwrap().unwrap();
        assert_eq!(p.system, "flashps");
        assert_eq!(p.model, "sdxl");
        assert!(p.served > 10);
        assert!(p.mean_latency > 0.0);
        assert!(p.p95_latency >= p.mean_latency);
    }

    #[test]
    fn run_serving_records_spans_and_route_events_when_traced() {
        let setups = eval_setup();
        let sink = TraceSink::recording(fps_trace::Clock::Virtual);
        let run = ServingRun {
            duration_secs: 60.0,
            workers: 2,
            rps: 0.5,
            trace: sink.clone(),
            ..Default::default()
        };
        let p = run_serving(&setups[1], &run).unwrap().unwrap();
        let t = sink.drain().unwrap();
        assert_eq!(t.spans_named("request").count(), p.served);
        assert!(
            t.events.iter().any(|e| e.name == "route"),
            "mask-aware routing decisions must be traced"
        );
    }

    #[test]
    fn unsupported_combo_returns_none() {
        let setups = eval_setup();
        let run = ServingRun {
            system: SystemKind::FisEdit,
            duration_secs: 10.0,
            workers: 1,
            ..Default::default()
        };
        assert!(run_serving(&setups[2], &run).unwrap().is_none());
    }

    #[test]
    fn router_kinds_build() {
        let setups = eval_setup();
        let cost = setups[0].cost_model();
        for kind in [
            RouterKind::RoundRobin,
            RouterKind::RequestCount,
            RouterKind::TokenCount,
            RouterKind::MaskAware,
        ] {
            let r = kind.build(&cost).unwrap();
            assert_eq!(r.name(), kind.label());
        }
    }

    #[test]
    fn fig12_grid_covers_systems() {
        let setups = eval_setup();
        // SD2.1 setup includes FISEdit; use a short trace.
        let points = fig12_grid(&setups[0], &[0.5], 2, 40.0).unwrap();
        let systems: std::collections::HashSet<String> =
            points.iter().map(|p| p.system.clone()).collect();
        assert!(systems.contains("flashps"));
        assert!(systems.contains("diffusers"));
        assert!(systems.contains("fisedit"));
        assert!(systems.contains("teacache"));
        let json = to_json(&points);
        assert!(json.contains("mean_latency"));
    }
}
