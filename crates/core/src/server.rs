//! A real multi-threaded serving front end with step-level continuous
//! batching.
//!
//! Worker threads share one MPMC request channel (the request queue of
//! Fig. 8) and drive [`fps_diffusion::EditSession`]s: each loop
//! iteration admits newly arrived requests into the running batch —
//! taking exactly one denoising step, per §4.3 — executes one step for
//! every inflight session, and retires completed ones. Preprocessing
//! (session setup) and postprocessing (decode) happen on the worker
//! thread here; the *performance* consequences of disaggregation are
//! studied in the simulator, where timing is controlled.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError};
use fps_diffusion::{EditSession, Guidance, Strategy};

use crate::system::{EditResult, FlashPs};
use crate::{FlashPsError, Result};

/// Configuration of the threaded server.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads (one "GPU" each).
    pub workers: usize,
    /// Maximum sessions a worker interleaves.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 4,
        }
    }
}

/// One editing request submitted to the server.
#[derive(Debug, Clone)]
pub struct EditJob {
    /// Registered template to edit.
    pub template_id: u64,
    /// Masked latent-token indices.
    pub masked_idx: Vec<usize>,
    /// Text prompt.
    pub prompt: String,
    /// Per-request seed.
    pub seed: u64,
    /// Optional classifier-free guidance (doubles per-step compute).
    pub guidance: Option<Guidance>,
}

struct QueuedJob {
    job: EditJob,
    reply: Sender<Result<EditResult>>,
}

/// A handle to a submitted job.
pub struct Ticket {
    rx: Receiver<Result<EditResult>>,
}

impl Ticket {
    /// Blocks until the edit completes.
    ///
    /// # Errors
    ///
    /// Returns [`FlashPsError::ServerClosed`] if the worker died, or
    /// the edit's own error.
    pub fn wait(self) -> Result<EditResult> {
        self.rx.recv().map_err(|_| FlashPsError::ServerClosed)?
    }
}

/// The multi-threaded continuous-batching server.
pub struct ThreadedServer {
    tx: Option<Sender<QueuedJob>>,
    handles: Vec<JoinHandle<()>>,
    system: Arc<FlashPs>,
}

impl ThreadedServer {
    /// Starts worker threads over a (template-registered) system.
    pub fn start(system: FlashPs, config: ServerConfig) -> Self {
        let system = Arc::new(system);
        let (tx, rx) = unbounded::<QueuedJob>();
        let handles = (0..config.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let system = Arc::clone(&system);
                let max_batch = config.max_batch.max(1);
                std::thread::spawn(move || worker_loop(&system, &rx, max_batch))
            })
            .collect();
        Self {
            tx: Some(tx),
            handles,
            system,
        }
    }

    /// The shared system (templates can no longer be mutated once the
    /// server owns it).
    pub fn system(&self) -> &FlashPs {
        &self.system
    }

    /// Submits a job; returns a ticket to await the result.
    ///
    /// # Errors
    ///
    /// Returns [`FlashPsError::ServerClosed`] after shutdown.
    pub fn submit(&self, job: EditJob) -> Result<Ticket> {
        let (reply, rx) = bounded(1);
        let tx = self.tx.as_ref().ok_or(FlashPsError::ServerClosed)?;
        tx.send(QueuedJob { job, reply })
            .map_err(|_| FlashPsError::ServerClosed)?;
        Ok(Ticket { rx })
    }

    /// Drains the queue and joins all workers.
    pub fn shutdown(mut self) {
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadedServer {
    fn drop(&mut self) {
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct Inflight {
    session: EditSession,
    template_id: u64,
    use_cache: Vec<bool>,
    mask_ratio: f64,
    reply: Sender<Result<EditResult>>,
}

fn begin_job(system: &FlashPs, job: &EditJob) -> Result<(EditSession, Vec<bool>, f64)> {
    let (image, _) = system.template(job.template_id)?;
    let cfg = &system.config().model;
    let mask_ratio = job.masked_idx.len() as f64 / cfg.tokens() as f64;
    let use_cache = system.plan_for_ratio(mask_ratio);
    let strategy = Strategy::MaskAware {
        use_cache: use_cache.clone(),
        kv: system.config().capture_kv,
    };
    let session = system.pipeline().begin_guided(
        image,
        job.template_id,
        &job.masked_idx,
        &job.prompt,
        job.seed,
        strategy,
        job.guidance.clone(),
    )?;
    Ok((session, use_cache, mask_ratio))
}

fn worker_loop(system: &FlashPs, rx: &Receiver<QueuedJob>, max_batch: usize) {
    let mut inflight: Vec<Inflight> = Vec::new();
    let mut closed = false;
    loop {
        // Admission: block when idle, otherwise take whatever is
        // queued — a join costs at most one denoising step (§4.3).
        while !closed && inflight.len() < max_batch {
            let queued = if inflight.is_empty() {
                match rx.recv() {
                    Ok(q) => Some(q),
                    Err(_) => {
                        closed = true;
                        None
                    }
                }
            } else {
                match rx.try_recv() {
                    Ok(q) => Some(q),
                    Err(TryRecvError::Empty) => None,
                    Err(TryRecvError::Disconnected) => {
                        closed = true;
                        None
                    }
                }
            };
            let Some(q) = queued else { break };
            match begin_job(system, &q.job) {
                Ok((session, use_cache, mask_ratio)) => inflight.push(Inflight {
                    session,
                    template_id: q.job.template_id,
                    use_cache,
                    mask_ratio,
                    reply: q.reply,
                }),
                Err(e) => {
                    let _ = q.reply.send(Err(e));
                }
            }
        }
        if inflight.is_empty() {
            if closed {
                return;
            }
            continue;
        }
        // One denoising step for every inflight session.
        let mut i = 0;
        while i < inflight.len() {
            let item = &mut inflight[i];
            let step_result = match system.template(item.template_id) {
                Ok((_, cache)) => system.pipeline().step(&mut item.session, Some(cache)),
                Err(e) => {
                    let item = inflight.swap_remove(i);
                    let _ = item.reply.send(Err(e));
                    continue;
                }
            };
            if let Err(e) = step_result {
                let item = inflight.swap_remove(i);
                let _ = item.reply.send(Err(e.into()));
                continue;
            }
            if inflight[i].session.is_done() {
                let item = inflight.swap_remove(i);
                let cfg = &system.config().model;
                let full =
                    fps_diffusion::flops::step_flops_full(cfg, 1) * cfg.steps as u64;
                let result = system
                    .pipeline()
                    .finish(item.session)
                    .map(|output| {
                        let speedup = full as f64 / output.flops.max(1) as f64;
                        EditResult {
                            output,
                            use_cache: item.use_cache,
                            speedup_vs_full: speedup,
                            mask_ratio: item.mask_ratio,
                        }
                    })
                    .map_err(FlashPsError::from);
                let _ = item.reply.send(result);
                continue;
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::FlashPsConfig;
    use fps_diffusion::{Image, ModelConfig};

    fn server(workers: usize, max_batch: usize) -> ThreadedServer {
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        for id in 0..3u64 {
            let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), id);
            sys.register_template(id, &img).unwrap();
        }
        ThreadedServer::start(
            sys,
            ServerConfig {
                workers,
                max_batch,
            },
        )
    }

    fn job(template: u64, seed: u64) -> EditJob {
        EditJob {
            template_id: template,
            masked_idx: vec![1, 2, 5, 6],
            prompt: "edit".into(),
            seed,
            guidance: None,
        }
    }

    #[test]
    fn serves_a_single_job() {
        let server = server(1, 2);
        let ticket = server.submit(job(0, 1)).unwrap();
        let result = ticket.wait().unwrap();
        assert!(result.output.image.data().iter().all(|v| v.is_finite()));
        assert!(result.speedup_vs_full > 1.0);
        server.shutdown();
    }

    #[test]
    fn serves_many_jobs_concurrently() {
        let server = server(2, 3);
        let tickets: Vec<Ticket> = (0..10)
            .map(|i| server.submit(job(i % 3, i)).unwrap())
            .collect();
        for t in tickets {
            let r = t.wait().unwrap();
            assert!(r.mask_ratio > 0.0);
        }
        server.shutdown();
    }

    #[test]
    fn results_match_direct_edits() {
        // Continuous batching must not change outputs: the server's
        // result equals the synchronous API's, whatever the
        // interleaving.
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        let direct = sys.edit_tokens(0, &[1, 2, 5, 6], "edit", 42).unwrap();
        let server = ThreadedServer::start(
            sys,
            ServerConfig {
                workers: 2,
                max_batch: 4,
            },
        );
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| server.submit(job(0, 42)).unwrap())
            .collect();
        for t in tickets {
            let served = t.wait().unwrap();
            assert_eq!(served.output.image, direct.output.image);
        }
        server.shutdown();
    }

    #[test]
    fn guided_jobs_serve_and_differ_from_unguided() {
        let server = server(1, 2);
        let plain = server.submit(job(0, 1)).unwrap().wait().unwrap();
        let mut guided_job = job(0, 1);
        guided_job.guidance = Some(Guidance::cfg(5.0));
        let guided = server.submit(guided_job).unwrap().wait().unwrap();
        assert_ne!(plain.output.image, guided.output.image);
        assert_eq!(guided.output.flops, 2 * plain.output.flops);
        server.shutdown();
    }

    #[test]
    fn unknown_template_errors_through_ticket() {
        let server = server(1, 2);
        let ticket = server.submit(job(99, 1)).unwrap();
        assert!(matches!(
            ticket.wait(),
            Err(FlashPsError::UnknownTemplate { template_id: 99 })
        ));
        server.shutdown();
    }

    #[test]
    fn shutdown_then_submit_fails() {
        let s = server(1, 1);
        let system_alive = {
            let ticket = s.submit(job(0, 1)).unwrap();
            ticket.wait().is_ok()
        };
        assert!(system_alive);
        // After drop, the struct is gone; emulate by explicit
        // shutdown on a fresh server and checking drop path runs.
        let s2 = server(1, 1);
        s2.shutdown();
    }
}
