//! A real multi-threaded serving front end with step-level continuous
//! batching.
//!
//! Worker threads drive [`fps_diffusion::EditSession`]s: each loop
//! iteration admits newly arrived requests into the running batch —
//! taking exactly one denoising step, per §4.3 — executes one step for
//! every inflight session, and retires completed ones. Preprocessing
//! (session setup) and postprocessing (decode) happen on the worker
//! thread here; the *performance* consequences of disaggregation are
//! studied in the simulator, where timing is controlled.
//!
//! ## Control plane
//!
//! Every policy decision — admit or shed, which degradation rung,
//! which worker — is made by the shared clock-generic
//! [`fps_serving::ControlPlane`], the same type the virtual-time
//! cluster simulator consults. [`ThreadedServer::start`] builds a
//! minimal plane (least-loaded routing plus the legacy
//! [`ServerConfig::max_queue_depth`] bound);
//! [`ThreadedServer::start_with_plane`] accepts a caller-built plane,
//! which is how the server gains SLO-aware admission, the five-rung
//! degradation ladder, and mask-aware worker selection. Each worker
//! owns a private queue; the plane's router decides placement at
//! submit time over live per-worker outstanding-work views.
//!
//! ## Resilience
//!
//! A step that panics kills the whole "engine process": every inflight
//! session on that worker is lost and its job is re-routed through the
//! control plane with a bumped attempt counter (bounded by
//! [`ServerConfig::max_job_attempts`], then the ticket resolves to
//! [`FlashPsError::WorkerPanicked`]). Jobs carry an optional
//! wall-clock deadline ([`ServerConfig::job_timeout`]); expired jobs
//! resolve to [`FlashPsError::JobTimeout`] instead of occupying the
//! batch — including at requeue time, so a job whose deadline already
//! passed never burns a second batch slot. Shutdown — explicit or via
//! `Drop` — flips a closing flag, lets workers drain their queues
//! (including requeued jobs), and joins them; tickets never dangle.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{
    bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError,
};
use fps_diffusion::{EditSession, Guidance, Strategy};
use fps_json::Json;
use fps_serving::worker::OutstandingReq;
use fps_serving::{
    Assessment, ControlPlane, Decision, LeastLoadedRouter, RejectReason, Router, Rung, TimeSource,
    WorkerHealth, WorkerView,
};
use fps_trace::{Clock, TraceSink, Track};
use fps_workload::trace::MaskShapeSpec;
use fps_workload::RequestSpec;
use parking_lot::Mutex;

use crate::system::{rung_strategy, EditResult, FlashPs};
use crate::{FlashPsError, Result};

/// How long an idle worker sleeps between checks of the closing flag.
const IDLE_POLL: Duration = Duration::from_millis(10);

/// Configuration of the threaded server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (one "GPU" each). `0` auto-sizes to the shared
    /// kernel pool's lane count
    /// ([`fps_tensor::pool::WorkPool::threads`]), so one knob
    /// (`FPS_POOL_THREADS`) governs both the compute plane and the
    /// serving plane.
    pub workers: usize,
    /// Maximum sessions a worker interleaves.
    pub max_batch: usize,
    /// Wall-clock ceiling from submission to completion; expired jobs
    /// resolve to [`FlashPsError::JobTimeout`]. `None` disables it.
    pub job_timeout: Option<Duration>,
    /// Total attempts a job gets when workers panic mid-batch (the
    /// first run plus requeues). At least 1.
    pub max_job_attempts: u32,
    /// Fault-injection hook: a job with this seed panics the worker on
    /// its first attempt, killing the whole inflight batch. Used by
    /// resilience tests; `None` in production.
    pub chaos_panic_seed: Option<u64>,
    /// Admission cap on outstanding jobs (queued plus inflight),
    /// enforced by the control plane's legacy queue-bound gate when no
    /// overload stack is installed. [`ThreadedServer::submit`] sheds
    /// with [`FlashPsError::Overloaded`] once the cap is reached —
    /// queueing past a few service waves only adds latency, never
    /// goodput. `None` leaves the queue unbounded.
    pub max_queue_depth: Option<usize>,
    /// Start with workers paused: jobs queue (and the control plane
    /// decides on them) but nothing executes until
    /// [`ThreadedServer::resume`]. Lets tests submit a deterministic
    /// burst with no completions racing the decision sequence.
    pub start_paused: bool,
    /// Trace sink for wall-clock spans (queue wait, per-step compute,
    /// VAE decode). Must be [`TraceSink::disabled`] or a
    /// [`Clock::Wall`] sink — the server reads real time, so a
    /// virtual-clock sink would mix clock domains and is rejected at
    /// [`ThreadedServer::start`].
    pub trace: TraceSink,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 4,
            job_timeout: None,
            max_job_attempts: 3,
            chaos_panic_seed: None,
            max_queue_depth: None,
            start_paused: false,
            trace: TraceSink::disabled(),
        }
    }
}

/// Pool shapes for [`ThreadedServer::start_staged`]: the disaggregated
/// execution mode where session setup (preprocess + text-encode),
/// denoising, and decode (VAE + postprocess) run on separate pools
/// joined by bounded queues — §4.3 disaggregation generalized to
/// micro-serving. [`ServerConfig::workers`] sizes the denoise pool.
#[derive(Debug, Clone)]
pub struct StagedServerConfig {
    /// Threads running session setup (preprocess + text encode).
    pub encode_workers: usize,
    /// Threads running VAE decode + postprocess.
    pub decode_workers: usize,
    /// Capacity of each bounded inter-stage queue. A full queue
    /// backpressures: encode blocks, and finished denoise sessions
    /// hold their batch slot until decode drains.
    pub stage_queue_capacity: usize,
}

impl Default for StagedServerConfig {
    fn default() -> Self {
        Self {
            encode_workers: 2,
            decode_workers: 1,
            stage_queue_capacity: 8,
        }
    }
}

/// One editing request submitted to the server.
#[derive(Debug, Clone)]
pub struct EditJob {
    /// Registered template to edit.
    pub template_id: u64,
    /// Masked latent-token indices.
    pub masked_idx: Vec<usize>,
    /// Text prompt.
    pub prompt: String,
    /// Per-request seed.
    pub seed: u64,
    /// Optional classifier-free guidance (doubles per-step compute).
    pub guidance: Option<Guidance>,
}

/// The control plane plus the execution-plane state it decides over:
/// one outstanding-work ledger entry per unresolved job, keyed by the
/// plane-assigned request id.
struct ControlState {
    plane: ControlPlane<Box<dyn Router + Send>>,
    /// Per-worker outstanding jobs (queued + inflight), the router's
    /// load signal — the wall-clock analogue of the simulator's
    /// `outstanding` vectors.
    ledger: Vec<Vec<(u64, OutstandingReq)>>,
    /// Reused worker-view buffer (allocation-light routing).
    views: Vec<WorkerView>,
    /// Next plane request id.
    next_id: u64,
    /// Latent tokens of the served model (sizes router views).
    model_tokens: usize,
    /// Per-worker batch capacity (sizes router views and admission
    /// capacity).
    max_batch: usize,
}

impl ControlState {
    fn backlog(&self) -> usize {
        self.ledger.iter().map(Vec::len).sum()
    }

    fn capacity(&self) -> usize {
        self.ledger.len() * self.max_batch.max(1)
    }

    /// Routes one request: refreshes the view buffer from the ledger,
    /// asks the plane, clamps a misbehaving router to worker 0, and
    /// records the placement in the ledger.
    fn route_and_ledger(
        &mut self,
        id: u64,
        spec: &RequestSpec,
        steps: usize,
        now: fps_simtime::SimTime,
    ) -> usize {
        let ControlState {
            plane,
            ledger,
            views,
            ..
        } = self;
        views.truncate(ledger.len());
        while views.len() < ledger.len() {
            views.push(WorkerView {
                id: 0,
                outstanding: Vec::new(),
                max_batch: 0,
                model_tokens: 0,
                health: WorkerHealth::Healthy,
            });
        }
        for (w, (v, outstanding)) in views.iter_mut().zip(ledger.iter()).enumerate() {
            v.id = w;
            v.max_batch = self.max_batch;
            v.model_tokens = self.model_tokens;
            v.health = WorkerHealth::Healthy;
            v.outstanding.clear();
            v.outstanding
                .extend(outstanding.iter().map(|(_, r)| OutstandingReq {
                    mask_ratio: r.mask_ratio,
                    steps_left: r.steps_left,
                }));
        }
        let w = plane.route(id, spec, views, now);
        let w = if w < ledger.len() { w } else { 0 };
        ledger[w].push((
            id,
            OutstandingReq {
                mask_ratio: spec.mask_ratio,
                steps_left: steps,
            },
        ));
        w
    }
}

/// Holds one ledger slot; dropping it removes the entry, so the
/// ledger counts *unresolved* jobs exactly — through queues, the
/// inflight batch, and panic requeues.
///
/// `Drop` takes the control lock: never drop a guard while holding it.
struct SlotGuard {
    control: Arc<Mutex<ControlState>>,
    id: u64,
    worker: usize,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let mut ctl = self.control.lock();
        if let Some(pos) = ctl.ledger[self.worker]
            .iter()
            .position(|(id, _)| *id == self.id)
        {
            ctl.ledger[self.worker].swap_remove(pos);
        }
    }
}

struct QueuedJob {
    job: EditJob,
    reply: Sender<Result<EditResult>>,
    /// Attempts already consumed (0 on first submission).
    attempt: u32,
    /// When the job was first submitted (deadline anchor; requeues
    /// keep the original).
    enqueued_at: Instant,
    /// Plane-assigned request id (stable across requeues).
    id: u64,
    /// Degradation rung the plane assigned this dispatch.
    rung: Option<Rung>,
    /// Ledger slot: released when the job resolves.
    slot: SlotGuard,
}

/// A handle to a submitted job.
pub struct Ticket {
    rx: Receiver<Result<EditResult>>,
}

impl Ticket {
    /// Blocks until the edit completes.
    ///
    /// # Errors
    ///
    /// Returns [`FlashPsError::ServerClosed`] if the worker died, or
    /// the edit's own error.
    pub fn wait(self) -> Result<EditResult> {
        self.rx.recv().map_err(|_| FlashPsError::ServerClosed)?
    }
}

/// The multi-threaded continuous-batching server.
pub struct ThreadedServer {
    txs: Option<Vec<Sender<QueuedJob>>>,
    /// Staged mode only: the encode pool's shared entry queue.
    /// [`Self::submit`] sends here instead of to a per-worker queue —
    /// routing to a specific denoise worker still happens at submit
    /// time (the ledger slot carries the placement); the encode pool
    /// forwards the built session to that worker's bounded queue.
    entry: Option<Sender<QueuedJob>>,
    closing: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    system: Arc<FlashPs>,
    control: Arc<Mutex<ControlState>>,
}

impl ThreadedServer {
    /// Starts worker threads over a (template-registered) system, with
    /// a minimal control plane: least-loaded routing and the legacy
    /// [`ServerConfig::max_queue_depth`] bound.
    ///
    /// # Panics
    ///
    /// Panics when `config.trace` is a virtual-clock sink: the server
    /// timestamps with real [`Instant`]s, and wall and virtual
    /// nanoseconds must never mix in one trace.
    pub fn start(system: FlashPs, config: ServerConfig) -> Self {
        let steps = system.config().model.steps;
        let plane = ControlPlane::new(
            Box::new(LeastLoadedRouter) as Box<dyn Router + Send>,
            TimeSource::wall(),
            steps,
        )
        .with_queue_cap(config.max_queue_depth);
        Self::start_with_plane(system, config, plane)
    }

    /// Starts worker threads routed through a caller-built control
    /// plane — the full policy stack (SLO-aware admission, the
    /// degradation ladder, mask-aware routing) when the plane carries
    /// an overload state.
    ///
    /// # Panics
    ///
    /// Panics when `plane.time()` is virtual or `config.trace` is a
    /// virtual-clock sink: this execution plane runs on the wall
    /// clock.
    pub fn start_with_plane(
        system: FlashPs,
        config: ServerConfig,
        plane: ControlPlane<Box<dyn Router + Send>>,
    ) -> Self {
        assert_ne!(
            config.trace.clock(),
            Some(Clock::Virtual),
            "ThreadedServer records wall-clock timestamps; use \
             TraceSink::recording(Clock::Wall) (virtual clocks belong to ClusterSim)"
        );
        assert!(
            plane.time().is_wall(),
            "ThreadedServer is the wall-clock execution plane; build its \
             ControlPlane with TimeSource::wall() (virtual clocks belong to ClusterSim)"
        );
        // Decision events land in the server's own sink, stamped with
        // the plane's (wall) clock domain.
        let plane = plane.with_trace(config.trace.clone());
        let workers = match config.workers {
            0 => fps_tensor::pool::global().threads(),
            n => n,
        };
        for w in 0..workers {
            config
                .trace
                .name_track(Track::new(0, w as u32), format!("worker{w}"));
        }
        let system = Arc::new(system);
        let closing = Arc::new(AtomicBool::new(false));
        let paused = Arc::new(AtomicBool::new(config.start_paused));
        let control = Arc::new(Mutex::new(ControlState {
            plane,
            ledger: vec![Vec::new(); workers],
            views: Vec::new(),
            next_id: 0,
            model_tokens: system.config().model.tokens(),
            max_batch: config.max_batch.max(1),
        }));
        let mut txs = Vec::with_capacity(workers);
        let mut rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = unbounded::<QueuedJob>();
            txs.push(tx);
            rxs.push(rx);
        }
        let handles = rxs
            .into_iter()
            .enumerate()
            .map(|(w, rx)| {
                let ctx = WorkerCtx {
                    system: Arc::clone(&system),
                    control: Arc::clone(&control),
                    // Workers hold sender clones of every queue so a
                    // panic requeue can follow the plane's re-route;
                    // channel disconnection therefore no longer signals
                    // shutdown — the closing flag does.
                    txs: txs.clone(),
                    own: w,
                    closing: Arc::clone(&closing),
                    paused: Arc::clone(&paused),
                    config: config.clone(),
                };
                fps_tensor::pool::spawn_service(&format!("worker{w}"), move || {
                    worker_loop(&ctx, &rx)
                })
            })
            .collect();
        Self {
            txs: Some(txs),
            entry: None,
            closing,
            paused,
            handles,
            system,
            control,
        }
    }

    /// Starts the server in *staged* (disaggregated) mode with a
    /// minimal control plane: session setup, denoising, and decode run
    /// on separate pools joined by bounded queues, so CPU-side work
    /// never blocks a denoise step. Outputs are byte-identical to the
    /// monolithic mode — the stages call the exact same
    /// `begin`/`step`/`finish` pipeline seams.
    ///
    /// # Panics
    ///
    /// Panics when `config.trace` is a virtual-clock sink.
    pub fn start_staged(system: FlashPs, config: ServerConfig, staged: StagedServerConfig) -> Self {
        let steps = system.config().model.steps;
        let plane = ControlPlane::new(
            Box::new(LeastLoadedRouter) as Box<dyn Router + Send>,
            TimeSource::wall(),
            steps,
        )
        .with_queue_cap(config.max_queue_depth);
        Self::start_staged_with_plane(system, config, staged, plane)
    }

    /// Staged mode behind a caller-built control plane (the staged
    /// analogue of [`Self::start_with_plane`]). The plane still gates
    /// admission and routes each job to a denoise worker at submit
    /// time; the encode pool forwards the built session to that
    /// worker's bounded queue.
    ///
    /// # Panics
    ///
    /// Panics when `plane.time()` is virtual or `config.trace` is a
    /// virtual-clock sink.
    pub fn start_staged_with_plane(
        system: FlashPs,
        config: ServerConfig,
        staged: StagedServerConfig,
        plane: ControlPlane<Box<dyn Router + Send>>,
    ) -> Self {
        assert_ne!(
            config.trace.clock(),
            Some(Clock::Virtual),
            "ThreadedServer records wall-clock timestamps; use \
             TraceSink::recording(Clock::Wall) (virtual clocks belong to ClusterSim)"
        );
        assert!(
            plane.time().is_wall(),
            "ThreadedServer is the wall-clock execution plane; build its \
             ControlPlane with TimeSource::wall() (virtual clocks belong to ClusterSim)"
        );
        let plane = plane.with_trace(config.trace.clone());
        let workers = match config.workers {
            0 => fps_tensor::pool::global().threads(),
            n => n,
        };
        let encode_workers = staged.encode_workers.max(1);
        let decode_workers = staged.decode_workers.max(1);
        let cap = staged.stage_queue_capacity.max(1);
        for w in 0..workers {
            config
                .trace
                .name_track(Track::new(0, w as u32), format!("worker{w}"));
        }
        for e in 0..encode_workers {
            config
                .trace
                .name_track(Track::new(5, e as u32), format!("encode{e}"));
        }
        for d in 0..decode_workers {
            config
                .trace
                .name_track(Track::new(6, d as u32), format!("decode{d}"));
        }
        let system = Arc::new(system);
        let closing = Arc::new(AtomicBool::new(false));
        let paused = Arc::new(AtomicBool::new(config.start_paused));
        let control = Arc::new(Mutex::new(ControlState {
            plane,
            ledger: vec![Vec::new(); workers],
            views: Vec::new(),
            next_id: 0,
            model_tokens: system.config().model.tokens(),
            max_batch: config.max_batch.max(1),
        }));
        let (entry_tx, entry_rx) = unbounded::<QueuedJob>();
        // Per-denoise-worker bounded queues (PR 5 shape): the submit-
        // time placement is honored, and a full queue backpressures
        // the encode pool.
        let mut denoise_txs = Vec::with_capacity(workers);
        let mut denoise_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = bounded::<Inflight>(cap);
            denoise_txs.push(tx);
            denoise_rxs.push(rx);
        }
        let (decode_tx, decode_rx) = bounded::<Inflight>(cap);
        let mut handles = Vec::with_capacity(encode_workers + workers + decode_workers);
        // Encode pool: MPMC over the shared entry queue.
        for e in 0..encode_workers {
            let ctx = WorkerCtx {
                system: Arc::clone(&system),
                control: Arc::clone(&control),
                txs: Vec::new(),
                own: e,
                closing: Arc::clone(&closing),
                paused: Arc::clone(&paused),
                config: config.clone(),
            };
            let rx = entry_rx.clone();
            let txs = denoise_txs.clone();
            handles.push(fps_tensor::pool::spawn_service(
                &format!("encode{e}"),
                move || encode_loop(&ctx, &rx, &txs),
            ));
        }
        // Denoise pool: per-worker bounded queues. Panic requeues
        // re-enter through the encode pool (a lost session must be
        // rebuilt), so every "queue" in the requeue table is the entry.
        for (w, rx) in denoise_rxs.into_iter().enumerate() {
            let ctx = WorkerCtx {
                system: Arc::clone(&system),
                control: Arc::clone(&control),
                txs: vec![entry_tx.clone(); workers],
                own: w,
                closing: Arc::clone(&closing),
                paused: Arc::clone(&paused),
                config: config.clone(),
            };
            let tx = decode_tx.clone();
            handles.push(fps_tensor::pool::spawn_service(
                &format!("worker{w}"),
                move || staged_denoise_loop(&ctx, &rx, &tx),
            ));
        }
        // The denoise pool holds the only decode senders from here on:
        // decode workers exit on disconnection once the pool drains.
        drop(decode_tx);
        for d in 0..decode_workers {
            let ctx = WorkerCtx {
                system: Arc::clone(&system),
                control: Arc::clone(&control),
                txs: Vec::new(),
                own: d,
                closing: Arc::clone(&closing),
                paused: Arc::clone(&paused),
                config: config.clone(),
            };
            let rx = decode_rx.clone();
            handles.push(fps_tensor::pool::spawn_service(
                &format!("decode{d}"),
                move || decode_loop(&ctx, &rx),
            ));
        }
        drop(decode_rx);
        Self {
            txs: Some(Vec::new()),
            entry: Some(entry_tx),
            closing,
            paused,
            handles,
            system,
            control,
        }
    }

    /// The shared system (templates can no longer be mutated once the
    /// server owns it).
    pub fn system(&self) -> &FlashPs {
        &self.system
    }

    /// Outstanding jobs: queued plus inflight, requeues included.
    pub fn queue_depth(&self) -> usize {
        self.control.lock().backlog()
    }

    /// Unpauses workers started with [`ServerConfig::start_paused`].
    pub fn resume(&self) {
        self.paused.store(false, Ordering::SeqCst);
    }

    /// The control plane's recorded decision sequence (empty unless
    /// the plane was built with recording enabled).
    pub fn decisions(&self) -> Vec<Decision> {
        self.control.lock().plane.decisions().to_vec()
    }

    /// Submits a job; returns a ticket to await the result.
    ///
    /// The control plane decides the job's fate before it is queued:
    /// admission (or the legacy depth cap), the degradation rung under
    /// overload, and the target worker.
    ///
    /// # Errors
    ///
    /// Returns [`FlashPsError::ServerClosed`] after shutdown,
    /// [`FlashPsError::Overloaded`] when the legacy queue cap sheds
    /// it, or [`FlashPsError::Rejected`] when overload-control
    /// admission sheds it.
    pub fn submit(&self, job: EditJob) -> Result<Ticket> {
        if self.closing.load(Ordering::SeqCst) {
            return Err(FlashPsError::ServerClosed);
        }
        let txs = self.txs.as_ref().ok_or(FlashPsError::ServerClosed)?;
        let cfg = &self.system.config().model;
        let mask_ratio = job.masked_idx.len() as f64 / cfg.tokens() as f64;
        let (worker, queued) = {
            let mut ctl = self.control.lock();
            let now = ctl.plane.time().now();
            // Ids are consumed per submission, shed or served — the
            // same numbering a trace gives the simulator.
            let id = ctl.next_id;
            ctl.next_id += 1;
            let (backlog, capacity) = (ctl.backlog(), ctl.capacity());
            let (rung, steps) = match ctl.plane.assess(id, now, backlog, capacity, false) {
                Assessment::Serve { rung, steps } => (rung, steps),
                Assessment::Shed(cause) => {
                    // The full overload stack surfaces the shed cause;
                    // the legacy depth cap keeps its historical error.
                    return Err(if ctl.plane.overload_enabled() {
                        FlashPsError::Rejected(RejectReason::Shed(cause))
                    } else {
                        FlashPsError::Overloaded
                    });
                }
            };
            let spec = RequestSpec {
                id,
                arrival_ns: now.as_nanos(),
                template_id: job.template_id,
                mask_ratio,
                mask_shape: MaskShapeSpec::Rect,
                seed: job.seed,
            };
            let w = ctl.route_and_ledger(id, &spec, steps, now);
            let (reply, rx) = bounded(1);
            let slot = SlotGuard {
                control: Arc::clone(&self.control),
                id,
                worker: w,
            };
            let queued = QueuedJob {
                job,
                reply,
                attempt: 0,
                enqueued_at: Instant::now(),
                id,
                rung,
                slot,
            };
            (w, (queued, rx))
        };
        let (queued, rx) = queued;
        // Send outside the lock: a failed send drops the job (and its
        // slot guard, which re-locks to clean the ledger). Staged mode
        // enters through the encode pool's shared queue.
        let target = match &self.entry {
            Some(tx) => tx,
            None => &txs[worker],
        };
        target
            .send(queued)
            .map_err(|_| FlashPsError::ServerClosed)?;
        Ok(Ticket { rx })
    }

    /// Gracefully drains the queue (every already-submitted ticket
    /// resolves) and joins all workers.
    pub fn shutdown(mut self) {
        self.close();
    }

    /// Shared drain path for [`Self::shutdown`] and `Drop`: flips the
    /// closing flag (and unpauses), releases the submit side of every
    /// queue, and joins workers — who keep serving until their queues
    /// (including requeues) are empty.
    fn close(&mut self) {
        self.closing.store(true, Ordering::SeqCst);
        self.paused.store(false, Ordering::SeqCst);
        self.txs.take();
        self.entry.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadedServer {
    fn drop(&mut self) {
        self.close();
    }
}

/// Everything a worker thread needs, bundled so the loop and the
/// requeue path share one context.
struct WorkerCtx {
    system: Arc<FlashPs>,
    control: Arc<Mutex<ControlState>>,
    txs: Vec<Sender<QueuedJob>>,
    own: usize,
    closing: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    config: ServerConfig,
}

struct Inflight {
    session: EditSession,
    /// The original job, kept so a panic can requeue it.
    job: EditJob,
    attempt: u32,
    enqueued_at: Instant,
    use_cache: Vec<bool>,
    mask_ratio: f64,
    reply: Sender<Result<EditResult>>,
    /// Plane-assigned request id (stable across requeues).
    id: u64,
    /// Degradation rung this dispatch serves at.
    rung: Option<Rung>,
    /// Root "request" span id for this attempt (0 when disabled).
    trace_root: u64,
    /// Wall nanoseconds when this attempt joined the batch.
    admitted_ns: u64,
    /// Ledger slot, released when this job resolves.
    slot: SlotGuard,
}

/// Builds the session for a dispatch: the control plane's rung picks
/// the strategy (via [`rung_strategy`]); without a ladder the plain
/// mask-aware plan is used, as always.
fn begin_job(
    system: &FlashPs,
    job: &EditJob,
    rung: Option<Rung>,
) -> Result<(EditSession, Vec<bool>, f64)> {
    let (image, _) = system.template(job.template_id)?;
    let cfg = &system.config().model;
    let mask_ratio = job.masked_idx.len() as f64 / cfg.tokens() as f64;
    let strategy = match rung {
        None => Strategy::MaskAware {
            use_cache: system.plan_for_ratio(mask_ratio),
            kv: system.config().capture_kv,
        },
        Some(r) => {
            let mut s = rung_strategy(r, system, mask_ratio, cfg.steps);
            // The premium rung asks for K/V reuse; honor it only when
            // this system captured K/V at priming.
            if let Strategy::MaskAware { kv, .. } = &mut s {
                *kv = *kv && system.config().capture_kv;
            }
            s
        }
    };
    let use_cache = match &strategy {
        Strategy::MaskAware { use_cache, .. } => use_cache.clone(),
        _ => vec![false; cfg.blocks],
    };
    let session = system.pipeline().begin_guided(
        image,
        job.template_id,
        &job.masked_idx,
        &job.prompt,
        job.seed,
        strategy,
        job.guidance.clone(),
    )?;
    Ok((session, use_cache, mask_ratio))
}

/// Whether a job's wall-clock deadline has passed.
fn expired(timeout: Option<Duration>, enqueued_at: Instant) -> bool {
    timeout.is_some_and(|t| enqueued_at.elapsed() > t)
}

/// Crash recovery: the engine process died mid-batch. Every inflight
/// session is lost; jobs with attempts left are re-routed through the
/// control plane, the rest resolve to
/// [`FlashPsError::WorkerPanicked`]. Jobs whose submit-time deadline
/// already passed are dropped here with [`FlashPsError::JobTimeout`]
/// instead of burning another batch slot.
fn requeue_batch(inflight: &mut Vec<Inflight>, ctx: &WorkerCtx, trace: &TraceSink, track: Track) {
    for item in inflight.drain(..) {
        let next_attempt = item.attempt + 1;
        if next_attempt >= ctx.config.max_job_attempts.max(1) {
            let _ = item.reply.send(Err(FlashPsError::WorkerPanicked));
            continue;
        }
        if expired(ctx.config.job_timeout, item.enqueued_at) {
            // Satellite of the requeue path: the deadline elapsed
            // while the job was inflight, so requeueing could only
            // waste a slot on an answer nobody is waiting for.
            if trace.is_enabled() {
                trace.event_at(
                    "job_timeout",
                    "server",
                    track,
                    trace.now_ns(),
                    vec![("seed", Json::U64(item.job.seed))],
                );
            }
            let _ = item.reply.send(Err(FlashPsError::JobTimeout));
            continue;
        }
        let Inflight {
            job,
            reply,
            enqueued_at,
            id,
            mask_ratio,
            slot,
            ..
        } = item;
        // The old slot's Drop takes the control lock — release it
        // before locking for the re-route.
        drop(slot);
        let (worker, queued) = {
            let mut ctl = ctx.control.lock();
            let now = ctl.plane.time().now();
            let (backlog, capacity) = (ctl.backlog(), ctl.capacity());
            // A requeue has paid for admission; the ladder re-assesses
            // it at the pressure prevailing now (same contract as the
            // simulator's retries).
            let (rung, steps) = match ctl.plane.assess(id, now, backlog, capacity, true) {
                Assessment::Serve { rung, steps } => (rung, steps),
                Assessment::Shed(cause) => {
                    // Unreachable: already-admitted work is never
                    // shed; fail loudly rather than silently if the
                    // plane's contract ever changes.
                    let _ = reply.send(Err(FlashPsError::Rejected(RejectReason::Shed(cause))));
                    continue;
                }
            };
            let spec = RequestSpec {
                id,
                arrival_ns: now.as_nanos(),
                template_id: job.template_id,
                mask_ratio,
                mask_shape: MaskShapeSpec::Rect,
                seed: job.seed,
            };
            let w = ctl.route_and_ledger(id, &spec, steps, now);
            let slot = SlotGuard {
                control: Arc::clone(&ctx.control),
                id,
                worker: w,
            };
            (
                w,
                QueuedJob {
                    job,
                    reply,
                    attempt: next_attempt,
                    enqueued_at,
                    id,
                    rung,
                    slot,
                },
            )
        };
        // The routed sibling may already have drained and exited; our
        // own queue is always alive (we are running), so fall back to
        // it rather than stranding the job.
        if let Err(e) = ctx.txs[worker].send(queued) {
            let q = e.into_inner();
            if let Err(e) = ctx.txs[ctx.own].send(q) {
                let _ = e.into_inner().reply.send(Err(FlashPsError::ServerClosed));
            }
        }
    }
}

/// Decodes a finished session and resolves its ticket: the shared tail
/// of the monolithic worker loop and the staged decode pool. Records
/// the `vae_decode` span and the root `request` span.
fn resolve_finish(system: &FlashPs, item: Inflight, trace: &TraceSink, track: Track) {
    let cfg = &system.config().model;
    let full = fps_diffusion::flops::step_flops_full(cfg, 1) * cfg.steps as u64;
    let Inflight {
        session,
        job,
        attempt,
        enqueued_at,
        use_cache,
        mask_ratio,
        reply,
        rung,
        trace_root,
        ..
    } = item;
    let result = {
        let _decode_span = trace.start("vae_decode", "stage", track, trace_root);
        system
            .pipeline()
            .finish(session)
            .map(|output| {
                let speedup = full as f64 / output.flops.max(1) as f64;
                EditResult {
                    output,
                    use_cache,
                    speedup_vs_full: speedup,
                    mask_ratio,
                    rung,
                }
            })
            .map_err(FlashPsError::from)
    };
    if trace.is_enabled() {
        trace.span_with_id(
            trace_root,
            "request",
            "request",
            track,
            trace.instant_ns(enqueued_at),
            trace.now_ns(),
            0,
            vec![
                ("template", Json::U64(job.template_id)),
                ("seed", Json::U64(job.seed)),
                ("attempt", Json::U64(attempt.into())),
                ("mask_ratio", Json::F64(mask_ratio)),
            ],
        );
    }
    let _ = reply.send(result);
}

fn worker_loop(ctx: &WorkerCtx, rx: &Receiver<QueuedJob>) {
    let system = &*ctx.system;
    let config = &ctx.config;
    let max_batch = config.max_batch.max(1);
    let trace = config.trace.clone();
    let track = Track::new(0, ctx.own as u32);
    let mut inflight: Vec<Inflight> = Vec::new();
    loop {
        if ctx.paused.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        // Admission: poll when idle (requeue senders keep the channel
        // open, so disconnection can't signal shutdown — the closing
        // flag does), otherwise take whatever is queued — a join costs
        // at most one denoising step (§4.3).
        while inflight.len() < max_batch {
            let queued = if inflight.is_empty() {
                match rx.recv_timeout(IDLE_POLL) {
                    Ok(q) => Some(q),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        return;
                    }
                }
            } else {
                match rx.try_recv() {
                    Ok(q) => Some(q),
                    Err(TryRecvError::Empty) => None,
                    Err(TryRecvError::Disconnected) => None,
                }
            };
            let Some(q) = queued else { break };
            if expired(config.job_timeout, q.enqueued_at) {
                if trace.is_enabled() {
                    trace.event_at(
                        "job_timeout",
                        "server",
                        track,
                        trace.now_ns(),
                        vec![("seed", Json::U64(q.job.seed))],
                    );
                }
                let _ = q.reply.send(Err(FlashPsError::JobTimeout));
                continue;
            }
            match begin_job(system, &q.job, q.rung) {
                Ok((session, use_cache, mask_ratio)) => {
                    let mut trace_root = 0;
                    let mut admitted_ns = 0;
                    if trace.is_enabled() {
                        // The root "request" span is recorded when the
                        // job resolves; children reference its
                        // pre-allocated id.
                        trace_root = trace.next_id();
                        admitted_ns = trace.now_ns();
                        trace.span_at(
                            "queue",
                            "stage",
                            track,
                            trace.instant_ns(q.enqueued_at),
                            admitted_ns,
                            trace_root,
                            vec![
                                ("attempt", Json::U64(q.attempt.into())),
                                (
                                    "rung",
                                    Json::Str(
                                        q.rung.map(|r| r.label()).unwrap_or("no-ladder").into(),
                                    ),
                                ),
                            ],
                        );
                    }
                    inflight.push(Inflight {
                        session,
                        job: q.job,
                        attempt: q.attempt,
                        enqueued_at: q.enqueued_at,
                        use_cache,
                        mask_ratio,
                        reply: q.reply,
                        id: q.id,
                        rung: q.rung,
                        trace_root,
                        admitted_ns,
                        slot: q.slot,
                    });
                }
                Err(e) => {
                    let _ = q.reply.send(Err(e));
                }
            }
        }
        if inflight.is_empty() {
            // Graceful drain: leave only once shutdown was requested
            // and nothing is queued anymore (a sibling's requeue would
            // land in the channel and be picked up above).
            if ctx.closing.load(Ordering::SeqCst) && rx.is_empty() {
                return;
            }
            continue;
        }
        // One denoising step for every inflight session. A panic here
        // kills the whole batch (the "engine process" died): caught,
        // sessions dropped, jobs requeued.
        let mut i = 0;
        let mut crashed = false;
        while i < inflight.len() {
            let item = &mut inflight[i];
            if expired(config.job_timeout, item.enqueued_at) {
                let item = inflight.swap_remove(i);
                if trace.is_enabled() {
                    trace.event_at(
                        "job_timeout",
                        "server",
                        track,
                        trace.now_ns(),
                        vec![("seed", Json::U64(item.job.seed))],
                    );
                }
                let _ = item.reply.send(Err(FlashPsError::JobTimeout));
                continue;
            }
            let chaos_panic = config.chaos_panic_seed == Some(item.job.seed) && item.attempt == 0;
            let step_result = {
                // RAII: the span records on drop, panics included.
                let _step_span = trace.start("step", "gpu", track, item.trace_root);
                let session = &mut item.session;
                let template_id = item.job.template_id;
                catch_unwind(AssertUnwindSafe(|| {
                    assert!(!chaos_panic, "injected worker panic (chaos hook)");
                    match system.template(template_id) {
                        Ok((_, cache)) => system
                            .pipeline()
                            .step(session, Some(cache))
                            .map_err(FlashPsError::from),
                        Err(e) => Err(e),
                    }
                }))
            };
            let step_result = match step_result {
                Ok(r) => r,
                Err(_panic) => {
                    crashed = true;
                    break;
                }
            };
            if let Err(e) = step_result {
                let item = inflight.swap_remove(i);
                let _ = item.reply.send(Err(e));
                continue;
            }
            if inflight[i].session.is_done() {
                let item = inflight.swap_remove(i);
                if trace.is_enabled() {
                    trace.span_at(
                        "denoise",
                        "stage",
                        track,
                        item.admitted_ns,
                        trace.now_ns(),
                        item.trace_root,
                        Vec::new(),
                    );
                }
                resolve_finish(system, item, &trace, track);
                continue;
            }
            i += 1;
        }
        if crashed {
            if trace.is_enabled() {
                trace.event_at(
                    "worker_panic",
                    "server",
                    track,
                    trace.now_ns(),
                    vec![("lost_batch", Json::U64(inflight.len() as u64))],
                );
            }
            requeue_batch(&mut inflight, ctx, &trace, track);
        }
    }
}

/// Emits a `stage_enqueue`/`stage_dequeue` boundary event on the
/// inter-stage edge track (edge 0: encode→denoise, 1: denoise→decode)
/// so bubble analysis can attribute a stall to a specific edge.
fn edge_event(trace: &TraceSink, name: &'static str, edge: u32, id: u64) {
    if trace.is_enabled() {
        trace.event_at(
            name,
            "stage_edge",
            Track::new(3, edge),
            trace.now_ns(),
            vec![("id", Json::U64(id))],
        );
    }
}

/// Staged mode, stage 1: session setup (preprocess + text encode).
/// Pulls from the shared entry queue, builds the session through the
/// same [`begin_job`] seam the monolithic loop uses, and forwards it
/// to the submit-time-routed denoise worker's bounded queue — blocking
/// there when it is full (backpressure).
fn encode_loop(ctx: &WorkerCtx, rx: &Receiver<QueuedJob>, denoise_txs: &[Sender<Inflight>]) {
    let system = &*ctx.system;
    let config = &ctx.config;
    let trace = config.trace.clone();
    let track = Track::new(5, ctx.own as u32);
    loop {
        if ctx.paused.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let q = match rx.recv_timeout(IDLE_POLL) {
            Ok(q) => q,
            Err(RecvTimeoutError::Timeout) => {
                if ctx.closing.load(Ordering::SeqCst) && rx.is_empty() {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        if expired(config.job_timeout, q.enqueued_at) {
            if trace.is_enabled() {
                trace.event_at(
                    "job_timeout",
                    "server",
                    track,
                    trace.now_ns(),
                    vec![("seed", Json::U64(q.job.seed))],
                );
            }
            let _ = q.reply.send(Err(FlashPsError::JobTimeout));
            continue;
        }
        let encode_start = if trace.is_enabled() {
            trace.now_ns()
        } else {
            0
        };
        match begin_job(system, &q.job, q.rung) {
            Ok((session, use_cache, mask_ratio)) => {
                let mut trace_root = 0;
                let mut admitted_ns = 0;
                if trace.is_enabled() {
                    trace_root = trace.next_id();
                    admitted_ns = trace.now_ns();
                    trace.span_at(
                        "queue",
                        "stage",
                        track,
                        trace.instant_ns(q.enqueued_at),
                        encode_start,
                        trace_root,
                        vec![
                            ("attempt", Json::U64(q.attempt.into())),
                            (
                                "rung",
                                Json::Str(q.rung.map(|r| r.label()).unwrap_or("no-ladder").into()),
                            ),
                        ],
                    );
                    trace.span_at(
                        "text_encode",
                        "stage",
                        track,
                        encode_start,
                        admitted_ns,
                        trace_root,
                        Vec::new(),
                    );
                }
                let worker = q.slot.worker;
                let id = q.id;
                let item = Inflight {
                    session,
                    job: q.job,
                    attempt: q.attempt,
                    enqueued_at: q.enqueued_at,
                    use_cache,
                    mask_ratio,
                    reply: q.reply,
                    id,
                    rung: q.rung,
                    trace_root,
                    admitted_ns,
                    slot: q.slot,
                };
                edge_event(&trace, "stage_enqueue", 0, id);
                if let Err(e) = denoise_txs[worker].send(item) {
                    let _ = e.into_inner().reply.send(Err(FlashPsError::ServerClosed));
                }
            }
            Err(e) => {
                let _ = q.reply.send(Err(e));
            }
        }
    }
}

/// Staged mode, stage 2: denoising with step-level continuous
/// batching. Admits built sessions from this worker's bounded queue at
/// step boundaries; finished sessions hand off to the decode queue —
/// or, when it is full, keep their batch slot until it drains. Jobs
/// whose deadline lapses at a boundary are dropped there, freeing the
/// slot immediately. A panic requeues the batch through the encode
/// pool (the sessions died with the "engine process" and must be
/// rebuilt).
fn staged_denoise_loop(ctx: &WorkerCtx, rx: &Receiver<Inflight>, decode_tx: &Sender<Inflight>) {
    let system = &*ctx.system;
    let config = &ctx.config;
    let max_batch = config.max_batch.max(1);
    let trace = config.trace.clone();
    let track = Track::new(0, ctx.own as u32);
    let mut inflight: Vec<Inflight> = Vec::new();
    // Finished sessions blocked on a full decode queue (backpressure):
    // they occupy batch slots until the queue drains.
    let mut done_stalled: Vec<Inflight> = Vec::new();
    let mut upstream_done = false;
    loop {
        if ctx.paused.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        // Retry stalled handoffs first: decode may have drained.
        for item in std::mem::take(&mut done_stalled) {
            let id = item.id;
            match decode_tx.try_send(item) {
                Ok(()) => edge_event(&trace, "stage_enqueue", 1, id),
                Err(TrySendError::Full(item)) => done_stalled.push(item),
                Err(TrySendError::Disconnected(item)) => {
                    let _ = item.reply.send(Err(FlashPsError::ServerClosed));
                }
            }
        }
        // Admission at the step boundary, batch slots shared with
        // stalled handoffs.
        while inflight.len() + done_stalled.len() < max_batch {
            let queued = if inflight.is_empty() && done_stalled.is_empty() {
                match rx.recv_timeout(IDLE_POLL) {
                    Ok(q) => Some(q),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        upstream_done = true;
                        None
                    }
                }
            } else {
                match rx.try_recv() {
                    Ok(q) => Some(q),
                    Err(TryRecvError::Empty) => None,
                    Err(TryRecvError::Disconnected) => {
                        upstream_done = true;
                        None
                    }
                }
            };
            let Some(mut q) = queued else { break };
            edge_event(&trace, "stage_dequeue", 0, q.id);
            if expired(config.job_timeout, q.enqueued_at) {
                // Deadline drop at the stage boundary: the batch slot
                // is never occupied.
                if trace.is_enabled() {
                    trace.event_at(
                        "job_timeout",
                        "server",
                        track,
                        trace.now_ns(),
                        vec![("seed", Json::U64(q.job.seed))],
                    );
                }
                let _ = q.reply.send(Err(FlashPsError::JobTimeout));
                continue;
            }
            if trace.is_enabled() {
                q.admitted_ns = trace.now_ns();
            }
            inflight.push(q);
        }
        if inflight.is_empty() {
            if done_stalled.is_empty()
                && (upstream_done || (ctx.closing.load(Ordering::SeqCst) && rx.is_empty()))
            {
                return;
            }
            if !done_stalled.is_empty() {
                // Nothing to step; wait for decode to drain.
                std::thread::sleep(Duration::from_millis(1));
            }
            continue;
        }
        // One denoising step for every inflight session (same engine
        // semantics as the monolithic loop, panics included).
        let mut i = 0;
        let mut crashed = false;
        while i < inflight.len() {
            let item = &mut inflight[i];
            if expired(config.job_timeout, item.enqueued_at) {
                let item = inflight.swap_remove(i);
                if trace.is_enabled() {
                    trace.event_at(
                        "job_timeout",
                        "server",
                        track,
                        trace.now_ns(),
                        vec![("seed", Json::U64(item.job.seed))],
                    );
                }
                let _ = item.reply.send(Err(FlashPsError::JobTimeout));
                continue;
            }
            let chaos_panic = config.chaos_panic_seed == Some(item.job.seed) && item.attempt == 0;
            let step_result = {
                let _step_span = trace.start("step", "gpu", track, item.trace_root);
                let session = &mut item.session;
                let template_id = item.job.template_id;
                catch_unwind(AssertUnwindSafe(|| {
                    assert!(!chaos_panic, "injected worker panic (chaos hook)");
                    match system.template(template_id) {
                        Ok((_, cache)) => system
                            .pipeline()
                            .step(session, Some(cache))
                            .map_err(FlashPsError::from),
                        Err(e) => Err(e),
                    }
                }))
            };
            let step_result = match step_result {
                Ok(r) => r,
                Err(_panic) => {
                    crashed = true;
                    break;
                }
            };
            if let Err(e) = step_result {
                let item = inflight.swap_remove(i);
                let _ = item.reply.send(Err(e));
                continue;
            }
            if inflight[i].session.is_done() {
                let item = inflight.swap_remove(i);
                if trace.is_enabled() {
                    trace.span_at(
                        "denoise",
                        "stage",
                        track,
                        item.admitted_ns,
                        trace.now_ns(),
                        item.trace_root,
                        Vec::new(),
                    );
                }
                let id = item.id;
                match decode_tx.try_send(item) {
                    Ok(()) => edge_event(&trace, "stage_enqueue", 1, id),
                    Err(TrySendError::Full(item)) => done_stalled.push(item),
                    Err(TrySendError::Disconnected(item)) => {
                        let _ = item.reply.send(Err(FlashPsError::ServerClosed));
                    }
                }
                continue;
            }
            i += 1;
        }
        if crashed {
            if trace.is_enabled() {
                trace.event_at(
                    "worker_panic",
                    "server",
                    track,
                    trace.now_ns(),
                    vec![("lost_batch", Json::U64(inflight.len() as u64))],
                );
            }
            // Stalled sessions died with the engine too: rebuild them.
            inflight.append(&mut done_stalled);
            requeue_batch(&mut inflight, ctx, &trace, track);
        }
    }
}

/// Staged mode, stage 3: VAE decode + postprocess. Pulls finished
/// sessions from the shared decode queue (MPMC) and resolves tickets
/// through the same [`resolve_finish`] tail the monolithic loop uses.
/// Exits on disconnection, i.e. once the whole denoise pool drained.
fn decode_loop(ctx: &WorkerCtx, rx: &Receiver<Inflight>) {
    let system = &*ctx.system;
    let config = &ctx.config;
    let trace = config.trace.clone();
    let track = Track::new(6, ctx.own as u32);
    loop {
        let item = match rx.recv_timeout(IDLE_POLL) {
            Ok(i) => i,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        edge_event(&trace, "stage_dequeue", 1, item.id);
        if expired(config.job_timeout, item.enqueued_at) {
            if trace.is_enabled() {
                trace.event_at(
                    "job_timeout",
                    "server",
                    track,
                    trace.now_ns(),
                    vec![("seed", Json::U64(item.job.seed))],
                );
            }
            let _ = item.reply.send(Err(FlashPsError::JobTimeout));
            continue;
        }
        resolve_finish(system, item, &trace, track);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::FlashPsConfig;
    use fps_diffusion::{Image, ModelConfig};

    fn server(workers: usize, max_batch: usize) -> ThreadedServer {
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        for id in 0..3u64 {
            let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), id);
            sys.register_template(id, &img).unwrap();
        }
        ThreadedServer::start(
            sys,
            ServerConfig {
                workers,
                max_batch,
                ..ServerConfig::default()
            },
        )
    }

    fn job(template: u64, seed: u64) -> EditJob {
        EditJob {
            template_id: template,
            masked_idx: vec![1, 2, 5, 6],
            prompt: "edit".into(),
            seed,
            guidance: None,
        }
    }

    #[test]
    fn serves_a_single_job() {
        let server = server(1, 2);
        let ticket = server.submit(job(0, 1)).unwrap();
        let result = ticket.wait().unwrap();
        assert!(result.output.image.data().iter().all(|v| v.is_finite()));
        assert!(result.speedup_vs_full > 1.0);
        assert_eq!(result.rung, None, "no ladder without an overload plane");
        server.shutdown();
    }

    #[test]
    fn zero_workers_auto_sizes_from_kernel_pool() {
        // `workers: 0` delegates sizing to the shared compute pool, and
        // the named service threads still serve jobs correctly.
        let server = server(0, 2);
        assert_eq!(
            server.handles.len(),
            fps_tensor::pool::global().threads(),
            "worker count should match the kernel pool's lanes"
        );
        let ticket = server.submit(job(0, 1)).unwrap();
        assert!(ticket.wait().is_ok());
        server.shutdown();
    }

    #[test]
    fn serves_many_jobs_concurrently() {
        let server = server(2, 3);
        let tickets: Vec<Ticket> = (0..10)
            .map(|i| server.submit(job(i % 3, i)).unwrap())
            .collect();
        for t in tickets {
            let r = t.wait().unwrap();
            assert!(r.mask_ratio > 0.0);
        }
        server.shutdown();
    }

    #[test]
    fn results_match_direct_edits() {
        // Continuous batching must not change outputs: the server's
        // result equals the synchronous API's, whatever the
        // interleaving.
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        let direct = sys.edit_tokens(0, &[1, 2, 5, 6], "edit", 42).unwrap();
        let server = ThreadedServer::start(
            sys,
            ServerConfig {
                workers: 2,
                max_batch: 4,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..4).map(|_| server.submit(job(0, 42)).unwrap()).collect();
        for t in tickets {
            let served = t.wait().unwrap();
            assert_eq!(served.output.image, direct.output.image);
        }
        server.shutdown();
    }

    #[test]
    fn guided_jobs_serve_and_differ_from_unguided() {
        let server = server(1, 2);
        let plain = server.submit(job(0, 1)).unwrap().wait().unwrap();
        let mut guided_job = job(0, 1);
        guided_job.guidance = Some(Guidance::cfg(5.0));
        let guided = server.submit(guided_job).unwrap().wait().unwrap();
        assert_ne!(plain.output.image, guided.output.image);
        assert_eq!(guided.output.flops, 2 * plain.output.flops);
        server.shutdown();
    }

    #[test]
    fn unknown_template_errors_through_ticket() {
        let server = server(1, 2);
        let ticket = server.submit(job(99, 1)).unwrap();
        assert!(matches!(
            ticket.wait(),
            Err(FlashPsError::UnknownTemplate { template_id: 99 })
        ));
        server.shutdown();
    }

    #[test]
    fn worker_panic_mid_batch_requeues_and_serves() {
        // The chaos hook panics the worker on the poisoned job's first
        // attempt, killing the whole inflight batch. Every ticket must
        // still resolve: the batch is requeued and served on retry.
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        for id in 0..3u64 {
            let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), id);
            sys.register_template(id, &img).unwrap();
        }
        let server = ThreadedServer::start(
            sys,
            ServerConfig {
                workers: 1,
                max_batch: 4,
                chaos_panic_seed: Some(7777),
                ..ServerConfig::default()
            },
        );
        // Fill the batch, with the poisoned job in the middle.
        let tickets = vec![
            server.submit(job(0, 1)).unwrap(),
            server.submit(job(1, 7777)).unwrap(),
            server.submit(job(2, 2)).unwrap(),
        ];
        for t in tickets {
            let r = t.wait().expect("requeued after worker panic");
            assert!(r.output.image.data().iter().all(|v| v.is_finite()));
        }
        server.shutdown();
    }

    #[test]
    fn panic_retry_budget_exhausts_explicitly() {
        // A job whose every attempt panics must resolve to
        // WorkerPanicked, not hang. max_job_attempts = 1 means the
        // first panic already exhausts the budget.
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        let server = ThreadedServer::start(
            sys,
            ServerConfig {
                workers: 1,
                max_batch: 2,
                max_job_attempts: 1,
                chaos_panic_seed: Some(13),
                ..ServerConfig::default()
            },
        );
        let ticket = server.submit(job(0, 13)).unwrap();
        assert!(matches!(ticket.wait(), Err(FlashPsError::WorkerPanicked)));
        // The worker survives for later jobs.
        let ok = server.submit(job(0, 1)).unwrap();
        assert!(ok.wait().is_ok());
        server.shutdown();
    }

    #[test]
    fn expired_jobs_resolve_to_timeout() {
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        let server = ThreadedServer::start(
            sys,
            ServerConfig {
                workers: 1,
                max_batch: 1,
                job_timeout: Some(std::time::Duration::ZERO),
                ..ServerConfig::default()
            },
        );
        // A zero deadline is already expired at admission.
        let ticket = server.submit(job(0, 1)).unwrap();
        assert!(matches!(ticket.wait(), Err(FlashPsError::JobTimeout)));
        server.shutdown();
    }

    #[test]
    fn requeue_drops_expired_jobs_with_timeout() {
        // Satellite: a job whose deadline passes while it is inflight
        // must not re-enter the queue after a worker panic — it
        // resolves to JobTimeout at requeue time, with no extra batch
        // slot burned.
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        let sink = TraceSink::recording(Clock::Wall);
        let server = ThreadedServer::start(
            sys,
            ServerConfig {
                workers: 1,
                max_batch: 2,
                chaos_panic_seed: Some(55),
                // Generous enough to pass the admission check, tight
                // enough to have expired by the time the injected
                // panic triggers the requeue.
                job_timeout: Some(Duration::from_millis(1)),
                trace: sink.clone(),
                ..ServerConfig::default()
            },
        );
        let poisoned = server.submit(job(0, 55)).unwrap();
        assert!(matches!(poisoned.wait(), Err(FlashPsError::JobTimeout)));
        while server.queue_depth() > 0 {
            std::thread::yield_now();
        }
        server.shutdown();
        let trace = sink.drain().unwrap();
        assert!(
            trace.events.iter().any(|e| e.name == "job_timeout"),
            "the requeue-time drop must be observable in the trace"
        );
    }

    #[test]
    fn drop_with_queued_jobs_drains_gracefully() {
        // Dropping the server with a backlog must neither hang nor
        // leave tickets dangling: workers drain the queue first.
        let server = server(2, 2);
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| server.submit(job(i % 3, i)).unwrap())
            .collect();
        drop(server);
        for t in tickets {
            assert!(t.wait().is_ok(), "queued job must be served, not lost");
        }
    }

    #[test]
    fn queue_cap_sheds_with_overloaded() {
        // One slow worker, a cap of 4, and a burst of 50 instant
        // submits: the burst outruns service, so submits beyond the
        // cap must shed with Overloaded — and every accepted ticket
        // must still resolve successfully.
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        let server = ThreadedServer::start(
            sys,
            ServerConfig {
                workers: 1,
                max_batch: 1,
                max_queue_depth: Some(4),
                ..ServerConfig::default()
            },
        );
        let mut tickets = Vec::new();
        let mut shed = 0u32;
        for i in 0..50u64 {
            match server.submit(job(0, i)) {
                Ok(t) => tickets.push(t),
                Err(FlashPsError::Overloaded) => shed += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
            assert!(server.queue_depth() <= 4, "depth may never exceed the cap");
        }
        assert!(shed > 0, "the burst must overflow the cap");
        assert!(!tickets.is_empty(), "the cap admits up to its depth");
        for t in tickets {
            assert!(t.wait().is_ok(), "admitted jobs are served normally");
        }
        // Depth drains back to zero: the server accepts again.
        while server.queue_depth() > 0 {
            std::thread::yield_now();
        }
        assert!(server.submit(job(0, 999)).unwrap().wait().is_ok());
        server.shutdown();
    }

    #[test]
    fn uncapped_queue_never_sheds() {
        let server = server(1, 1);
        let tickets: Vec<Ticket> = (0..20)
            .map(|i| server.submit(job(i % 3, i)).expect("no cap, no shed"))
            .collect();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        server.shutdown();
    }

    #[test]
    fn depth_survives_panic_requeues() {
        // A panic requeue re-registers the job's ledger slot: the slot
        // is released exactly once, when the ticket resolves.
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        let server = ThreadedServer::start(
            sys,
            ServerConfig {
                workers: 1,
                max_batch: 2,
                chaos_panic_seed: Some(31),
                max_queue_depth: Some(8),
                ..ServerConfig::default()
            },
        );
        let poisoned = server.submit(job(0, 31)).unwrap();
        let clean = server.submit(job(0, 1)).unwrap();
        assert!(poisoned.wait().is_ok(), "requeued after the panic");
        assert!(clean.wait().is_ok());
        while server.queue_depth() > 0 {
            std::thread::yield_now();
        }
        assert_eq!(server.queue_depth(), 0, "slots released exactly once");
        server.shutdown();
    }

    #[test]
    fn paused_server_queues_then_serves_on_resume() {
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        let server = ThreadedServer::start(
            sys,
            ServerConfig {
                workers: 2,
                max_batch: 2,
                start_paused: true,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..4).map(|i| server.submit(job(0, i)).unwrap()).collect();
        // Paused workers admit nothing: the backlog is fully visible.
        assert_eq!(server.queue_depth(), 4);
        server.resume();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        server.shutdown();
    }

    #[test]
    fn wall_clock_tracing_captures_the_request_path() {
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        let sink = TraceSink::recording(Clock::Wall);
        let server = ThreadedServer::start(
            sys,
            ServerConfig {
                workers: 2,
                max_batch: 2,
                trace: sink.clone(),
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..4).map(|i| server.submit(job(0, i)).unwrap()).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        server.shutdown();
        let trace = sink.drain().unwrap();
        assert_eq!(trace.clock, Clock::Wall);
        assert_eq!(trace.spans_named("request").count(), 4);
        assert_eq!(trace.spans_named("queue").count(), 4);
        assert_eq!(trace.spans_named("denoise").count(), 4);
        assert_eq!(trace.spans_named("vae_decode").count(), 4);
        assert!(trace.spans_named("step").count() >= 4 * cfg.steps);
        // Children link to their root and nest inside its window.
        for root in trace.spans_named("request") {
            let kids: Vec<_> = trace.spans.iter().filter(|s| s.parent == root.id).collect();
            assert!(!kids.is_empty());
            for k in kids {
                assert!(k.start_ns >= root.start_ns && k.end_ns <= root.end_ns);
            }
        }
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    #[should_panic(expected = "wall-clock")]
    fn virtual_sink_is_rejected() {
        let cfg = ModelConfig::tiny();
        let sys = FlashPs::new(FlashPsConfig::new(cfg)).unwrap();
        let _ = ThreadedServer::start(
            sys,
            ServerConfig {
                trace: TraceSink::recording(Clock::Virtual),
                ..ServerConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "wall-clock execution plane")]
    fn virtual_plane_is_rejected() {
        let cfg = ModelConfig::tiny();
        let sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let plane = ControlPlane::new(
            Box::new(LeastLoadedRouter) as Box<dyn Router + Send>,
            TimeSource::virtual_clock(),
            cfg.steps,
        );
        let _ = ThreadedServer::start_with_plane(sys, ServerConfig::default(), plane);
    }

    fn staged_server(
        workers: usize,
        max_batch: usize,
        staged: StagedServerConfig,
    ) -> ThreadedServer {
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        for id in 0..3u64 {
            let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), id);
            sys.register_template(id, &img).unwrap();
        }
        ThreadedServer::start_staged(
            sys,
            ServerConfig {
                workers,
                max_batch,
                ..ServerConfig::default()
            },
            staged,
        )
    }

    #[test]
    fn staged_results_match_direct_edits() {
        // Disaggregation must not change outputs: encode → denoise →
        // decode over bounded queues produces the same bytes as the
        // synchronous API (and therefore as the monolithic server).
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        let direct = sys.edit_tokens(0, &[1, 2, 5, 6], "edit", 42).unwrap();
        let server = ThreadedServer::start_staged(
            sys,
            ServerConfig {
                workers: 2,
                max_batch: 4,
                ..ServerConfig::default()
            },
            StagedServerConfig::default(),
        );
        let tickets: Vec<Ticket> = (0..4).map(|_| server.submit(job(0, 42)).unwrap()).collect();
        for t in tickets {
            let served = t.wait().unwrap();
            assert_eq!(served.output.image, direct.output.image);
        }
        server.shutdown();
    }

    #[test]
    fn staged_serves_many_jobs_across_pools() {
        let server = staged_server(2, 3, StagedServerConfig::default());
        let tickets: Vec<Ticket> = (0..12)
            .map(|i| server.submit(job(i % 3, i)).unwrap())
            .collect();
        for t in tickets {
            let r = t.wait().unwrap();
            assert!(r.mask_ratio > 0.0);
        }
        server.shutdown();
    }

    #[test]
    fn staged_backpressure_with_tiny_queues_loses_nothing() {
        // Queue capacity 1 everywhere: every edge backpressures, and
        // every ticket must still resolve (conservation, wall-clock
        // edition).
        let server = staged_server(
            1,
            2,
            StagedServerConfig {
                encode_workers: 2,
                decode_workers: 1,
                stage_queue_capacity: 1,
            },
        );
        let tickets: Vec<Ticket> = (0..10)
            .map(|i| server.submit(job(i % 3, i)).unwrap())
            .collect();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        server.shutdown();
    }

    #[test]
    fn staged_expired_jobs_drop_at_stage_boundaries() {
        // A zero deadline expires at the first boundary it crosses:
        // the ticket resolves to JobTimeout and no batch slot is ever
        // occupied.
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        let server = ThreadedServer::start_staged(
            sys,
            ServerConfig {
                workers: 1,
                max_batch: 1,
                job_timeout: Some(std::time::Duration::ZERO),
                ..ServerConfig::default()
            },
            StagedServerConfig::default(),
        );
        let ticket = server.submit(job(0, 1)).unwrap();
        assert!(matches!(ticket.wait(), Err(FlashPsError::JobTimeout)));
        server.shutdown();
    }

    #[test]
    fn staged_panic_requeues_through_encode_pool() {
        // A denoise panic kills the built sessions; the requeue path
        // re-enters through the encode pool (sessions must be rebuilt)
        // and every ticket still resolves.
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        for id in 0..3u64 {
            let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), id);
            sys.register_template(id, &img).unwrap();
        }
        let server = ThreadedServer::start_staged(
            sys,
            ServerConfig {
                workers: 1,
                max_batch: 4,
                chaos_panic_seed: Some(7777),
                ..ServerConfig::default()
            },
            StagedServerConfig::default(),
        );
        let tickets = vec![
            server.submit(job(0, 1)).unwrap(),
            server.submit(job(1, 7777)).unwrap(),
            server.submit(job(2, 2)).unwrap(),
        ];
        for t in tickets {
            let r = t.wait().expect("requeued after worker panic");
            assert!(r.output.image.data().iter().all(|v| v.is_finite()));
        }
        server.shutdown();
    }

    #[test]
    fn staged_drop_with_queued_jobs_drains_gracefully() {
        let server = staged_server(2, 2, StagedServerConfig::default());
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| server.submit(job(i % 3, i)).unwrap())
            .collect();
        drop(server);
        for t in tickets {
            assert!(t.wait().is_ok(), "queued job must be served, not lost");
        }
    }

    #[test]
    fn staged_tracing_captures_stage_path_and_edges() {
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        let sink = TraceSink::recording(Clock::Wall);
        let server = ThreadedServer::start_staged(
            sys,
            ServerConfig {
                workers: 1,
                max_batch: 2,
                trace: sink.clone(),
                ..ServerConfig::default()
            },
            StagedServerConfig::default(),
        );
        let tickets: Vec<Ticket> = (0..4).map(|i| server.submit(job(0, i)).unwrap()).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        server.shutdown();
        let trace = sink.drain().unwrap();
        assert_eq!(trace.spans_named("request").count(), 4);
        assert_eq!(trace.spans_named("queue").count(), 4);
        assert_eq!(trace.spans_named("text_encode").count(), 4);
        assert_eq!(trace.spans_named("denoise").count(), 4);
        assert_eq!(trace.spans_named("vae_decode").count(), 4);
        // Each request crosses both edges exactly once.
        for name in ["stage_enqueue", "stage_dequeue"] {
            assert_eq!(
                trace.events.iter().filter(|e| e.name == name).count(),
                8,
                "{name} events should cover both edges for all four jobs"
            );
        }
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn shutdown_then_submit_fails() {
        let s = server(1, 1);
        let system_alive = {
            let ticket = s.submit(job(0, 1)).unwrap();
            ticket.wait().is_ok()
        };
        assert!(system_alive);
        // After drop, the struct is gone; emulate by explicit
        // shutdown on a fresh server and checking drop path runs.
        let s2 = server(1, 1);
        s2.shutdown();
    }
}
