//! The bounded inter-stage queue.
//!
//! Every edge of a [`StageGraph`](crate::StageGraph) is one of these:
//! a FIFO with a hard capacity (a full queue backpressures the
//! upstream stage instead of growing without bound), drop-on-deadline
//! at the head (a request whose SLO already expired is turned away at
//! the stage boundary rather than burning a batch slot), and
//! first-class accounting. The conservation contract mirrors the
//! fleet simulator's: every enqueued request is dequeued, dropped, or
//! still resident — never lost, never duplicated — and
//! [`StageQueue::assert_conserved`] checks it on demand (the
//! simulator calls it at end of run; the proptests after every
//! operation).
//!
//! Each boundary crossing is observable: enqueues and dequeues emit
//! `stage_enqueue` / `stage_dequeue` trace events on the edge's own
//! track, and each completed residency emits a `stage_wait` span
//! covering enqueue → dequeue, so `fps_trace::bubble_in_window` can
//! attribute a stall to a specific edge. Tracing is passive: with a
//! disabled sink the queue's observable behaviour is byte-identical.

use std::collections::VecDeque;

use fps_json::Json;
use fps_metrics::{Histogram, StageQueueStats};
use fps_simtime::SimTime;
use fps_trace::{TraceSink, Track};

/// One resident request.
#[derive(Debug, Clone, Copy)]
struct Entry {
    seq: u64,
    enqueued_at: SimTime,
    deadline: SimTime,
}

/// What [`StageQueue::pop`] found at the head.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popped {
    /// A live request and its queue wait in seconds.
    Item {
        /// Request sequence number.
        seq: u64,
        /// Enqueue → dequeue wait, seconds.
        wait_secs: f64,
    },
    /// The head's deadline had already passed; it was dropped and its
    /// slot freed. Callers keep popping until they get an `Item` or
    /// the queue is empty.
    Expired {
        /// Request sequence number.
        seq: u64,
    },
}

/// A bounded FIFO between two stages.
#[derive(Debug)]
pub struct StageQueue {
    /// Edge label ("text-encode→denoise"), for reports and panics.
    label: String,
    capacity: usize,
    items: VecDeque<Entry>,
    // Accounting: `enqueued == dequeued + dropped_deadline + len()`
    // at every instant.
    enqueued: u64,
    dequeued: u64,
    dropped_deadline: u64,
    /// Enqueue attempts refused because the queue was full (the
    /// backpressure signal; the request was *not* accepted, so it
    /// does not enter the conservation sum).
    rejected_full: u64,
    max_depth: u64,
    wait_hist: Histogram,
    trace: TraceSink,
    track: Track,
}

impl StageQueue {
    /// A queue of `capacity` slots whose wait histogram spans
    /// `[0, hist_hi_secs]`. Boundary events land on `track` of
    /// `trace`; pass [`TraceSink::disabled`] for an untraced queue.
    pub fn new(
        label: impl Into<String>,
        capacity: usize,
        hist_hi_secs: f64,
        trace: TraceSink,
        track: Track,
    ) -> Self {
        Self {
            label: label.into(),
            capacity: capacity.max(1),
            items: VecDeque::new(),
            enqueued: 0,
            dequeued: 0,
            dropped_deadline: 0,
            rejected_full: 0,
            max_depth: 0,
            wait_hist: Histogram::new(0.0, hist_hi_secs.max(1.0), 512)
                .expect("valid histogram geometry"),
            trace,
            track,
        }
    }

    /// Offers `seq` to the queue. Returns `false` (and counts a
    /// backpressure rejection) when the queue is full — the caller
    /// must hold the request upstream and retry, or shed it.
    pub fn try_enqueue(&mut self, now: SimTime, seq: u64, deadline: SimTime) -> bool {
        if self.items.len() >= self.capacity {
            self.rejected_full += 1;
            return false;
        }
        self.items.push_back(Entry {
            seq,
            enqueued_at: now,
            deadline,
        });
        self.enqueued += 1;
        self.max_depth = self.max_depth.max(self.items.len() as u64);
        if self.trace.is_enabled() {
            self.trace.event_at(
                "stage_enqueue",
                "stage_edge",
                self.track,
                now.as_nanos(),
                vec![
                    ("seq", Json::U64(seq)),
                    ("depth", Json::U64(self.items.len() as u64)),
                ],
            );
        }
        true
    }

    /// Pops the head. An expired head (deadline before `now`) is
    /// dropped and reported as [`Popped::Expired`]; a live head is
    /// dequeued with its wait recorded.
    pub fn pop(&mut self, now: SimTime) -> Option<Popped> {
        let entry = self.items.pop_front()?;
        if entry.deadline < now {
            self.dropped_deadline += 1;
            if self.trace.is_enabled() {
                self.trace.event_at(
                    "stage_deadline_drop",
                    "stage_edge",
                    self.track,
                    now.as_nanos(),
                    vec![("seq", Json::U64(entry.seq))],
                );
            }
            return Some(Popped::Expired { seq: entry.seq });
        }
        let wait_secs = now.since(entry.enqueued_at).as_secs_f64();
        self.dequeued += 1;
        self.wait_hist.record(wait_secs);
        if self.trace.is_enabled() {
            self.trace.event_at(
                "stage_dequeue",
                "stage_edge",
                self.track,
                now.as_nanos(),
                vec![
                    ("seq", Json::U64(entry.seq)),
                    ("depth", Json::U64(self.items.len() as u64)),
                ],
            );
            self.trace.span_at(
                "stage_wait",
                "stage_edge",
                self.track,
                entry.enqueued_at.as_nanos(),
                now.as_nanos(),
                0,
                vec![("seq", Json::U64(entry.seq))],
            );
        }
        Some(Popped::Item {
            seq: entry.seq,
            wait_secs,
        })
    }

    /// Pops until a live item surfaces, draining expired heads into
    /// `expired`. Returns the live item, if any.
    pub fn pop_live(&mut self, now: SimTime, expired: &mut Vec<u64>) -> Option<(u64, f64)> {
        while let Some(p) = self.pop(now) {
            match p {
                Popped::Item { seq, wait_secs } => return Some((seq, wait_secs)),
                Popped::Expired { seq } => expired.push(seq),
            }
        }
        None
    }

    /// Residents right now.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity (the backpressure condition).
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Edge label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Total accepted enqueues.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Live dequeues.
    pub fn dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Head drops whose deadline had passed.
    pub fn dropped_deadline(&self) -> u64 {
        self.dropped_deadline
    }

    /// Enqueue attempts refused at capacity.
    pub fn rejected_full(&self) -> u64 {
        self.rejected_full
    }

    /// Peak depth observed.
    pub fn max_depth(&self) -> u64 {
        self.max_depth
    }

    /// Queue-wait summary for reports (pooled, never averaged — the
    /// histogram rides along).
    pub fn stats(&self) -> StageQueueStats {
        StageQueueStats::from_hist(
            self.label.clone(),
            self.enqueued,
            self.max_depth,
            self.wait_hist.clone(),
        )
    }

    /// Conservation check: every accepted request is dequeued,
    /// dropped, or still resident.
    ///
    /// # Panics
    ///
    /// Panics when the ledger does not balance — a queue bug, never a
    /// workload property.
    pub fn assert_conserved(&self) {
        assert_eq!(
            self.enqueued,
            self.dequeued + self.dropped_deadline + self.items.len() as u64,
            "stage queue '{}' lost or duplicated requests",
            self.label
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_trace::Clock;
    use proptest::prelude::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_nanos((secs * 1e9) as u64)
    }

    fn q(capacity: usize) -> StageQueue {
        StageQueue::new(
            "text-encode\u{2192}denoise",
            capacity,
            60.0,
            TraceSink::disabled(),
            Track::new(3, 0),
        )
    }

    #[test]
    fn fifo_order_and_wait_accounting() {
        let mut q = q(4);
        assert!(q.try_enqueue(t(0.0), 1, t(100.0)));
        assert!(q.try_enqueue(t(1.0), 2, t(100.0)));
        assert_eq!(
            q.pop(t(3.0)),
            Some(Popped::Item {
                seq: 1,
                wait_secs: 3.0
            })
        );
        assert_eq!(
            q.pop(t(3.0)),
            Some(Popped::Item {
                seq: 2,
                wait_secs: 2.0
            })
        );
        assert_eq!(q.pop(t(3.0)), None);
        q.assert_conserved();
        let s = q.stats();
        assert_eq!(s.entered, 2);
        assert_eq!(s.max_depth, 2);
        assert!(s.queue_wait_p95_secs > 0.0);
    }

    #[test]
    fn full_queue_backpressures_without_accepting() {
        let mut q = q(2);
        assert!(q.try_enqueue(t(0.0), 1, t(100.0)));
        assert!(q.try_enqueue(t(0.0), 2, t(100.0)));
        assert!(q.is_full());
        assert!(!q.try_enqueue(t(0.0), 3, t(100.0)), "third must bounce");
        assert_eq!(q.rejected_full(), 1);
        assert_eq!(q.enqueued(), 2, "a bounced request was never accepted");
        q.assert_conserved();
    }

    #[test]
    fn expired_heads_drop_and_free_the_slot() {
        let mut q = q(1);
        assert!(q.try_enqueue(t(0.0), 7, t(5.0)));
        assert!(q.is_full());
        // Past the deadline: the pop drops it and the slot frees.
        assert_eq!(q.pop(t(6.0)), Some(Popped::Expired { seq: 7 }));
        assert!(!q.is_full());
        assert!(q.try_enqueue(t(6.0), 8, t(100.0)), "slot was freed");
        assert_eq!(q.dropped_deadline(), 1);
        q.assert_conserved();
    }

    #[test]
    fn pop_live_drains_expired_runs() {
        let mut q = q(8);
        for seq in 0..3 {
            assert!(q.try_enqueue(t(0.0), seq, t(1.0)));
        }
        assert!(q.try_enqueue(t(0.0), 3, t(100.0)));
        let mut expired = Vec::new();
        let live = q.pop_live(t(2.0), &mut expired);
        assert_eq!(live, Some((3, 2.0)));
        assert_eq!(expired, vec![0, 1, 2]);
        q.assert_conserved();
    }

    #[test]
    fn boundary_events_and_wait_spans_are_emitted() {
        let sink = TraceSink::recording(Clock::Virtual);
        let mut q = StageQueue::new("e", 4, 60.0, sink.clone(), Track::new(3, 1));
        assert!(q.try_enqueue(t(1.0), 1, t(100.0)));
        assert!(q.try_enqueue(t(1.5), 2, t(0.5)));
        let _ = q.pop(t(2.0));
        let _ = q.pop(t(2.0));
        let trace = sink.drain().unwrap();
        assert_eq!(
            trace
                .events
                .iter()
                .filter(|e| e.name == "stage_enqueue")
                .count(),
            2
        );
        assert_eq!(
            trace
                .events
                .iter()
                .filter(|e| e.name == "stage_dequeue")
                .count(),
            1
        );
        assert_eq!(
            trace
                .events
                .iter()
                .filter(|e| e.name == "stage_deadline_drop")
                .count(),
            1
        );
        let wait: Vec<_> = trace.spans_named("stage_wait").collect();
        assert_eq!(wait.len(), 1);
        assert_eq!(wait[0].start_ns, t(1.0).as_nanos());
        assert_eq!(wait[0].end_ns, t(2.0).as_nanos());
    }

    #[test]
    fn tracing_is_passive() {
        // Same op sequence, sink on vs off: identical observable
        // behaviour and identical counters.
        let run = |trace: TraceSink| {
            let mut q = StageQueue::new("e", 2, 60.0, trace, Track::new(3, 0));
            let mut log = Vec::new();
            for i in 0..20u64 {
                let now = t(i as f64 * 0.5);
                log.push(Json::Bool(q.try_enqueue(now, i, t(i as f64 * 0.5 + 3.0))));
                if i % 3 == 0 {
                    log.push(match q.pop(now) {
                        Some(Popped::Item { seq, .. }) => Json::U64(seq),
                        Some(Popped::Expired { seq }) => Json::U64(seq + 1000),
                        None => Json::Null,
                    });
                }
            }
            q.assert_conserved();
            format!(
                "{:?}|{}|{}|{}|{}",
                log,
                q.enqueued(),
                q.dequeued(),
                q.dropped_deadline(),
                q.rejected_full()
            )
        };
        let off = run(TraceSink::disabled());
        let on = run(TraceSink::recording(Clock::Virtual));
        assert_eq!(off, on, "tracing changed queue behaviour");
    }

    proptest! {
        // Conservation under arbitrary interleavings: random
        // enqueue/pop sequences with random deadlines (so backpressure
        // bounces, deadline drops, and live dequeues all interleave)
        // never lose or duplicate a request.
        #[test]
        fn conservation_under_random_interleavings(
            seed in 0u64..5000,
            capacity in 1usize..6,
            ops in 10usize..120,
        ) {
            let mut q = StageQueue::new(
                "prop", capacity, 60.0, TraceSink::disabled(), Track::new(3, 0),
            );
            let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let mut seq = 0u64;
            let mut accepted = std::collections::HashSet::new();
            let mut resolved = std::collections::HashSet::new();
            for step in 0..ops {
                let now = t(step as f64 * 0.25);
                if next() % 3 != 0 {
                    // Short deadlines force drop-on-deadline paths.
                    let deadline = t(step as f64 * 0.25 + (next() % 4) as f64 * 0.3);
                    if q.try_enqueue(now, seq, deadline) {
                        prop_assert!(accepted.insert(seq), "seq accepted twice");
                    }
                    seq += 1;
                } else {
                    match q.pop(now) {
                        Some(Popped::Item { seq, .. }) | Some(Popped::Expired { seq }) => {
                            prop_assert!(
                                accepted.contains(&seq),
                                "popped a request never accepted"
                            );
                            prop_assert!(resolved.insert(seq), "seq resolved twice");
                        }
                        None => {}
                    }
                }
                q.assert_conserved();
                prop_assert!(q.len() <= capacity, "bound violated");
            }
            // Drain: everything accepted resolves exactly once.
            let drain_at = t(1e6);
            while let Some(p) = q.pop(drain_at) {
                let (Popped::Item { seq, .. } | Popped::Expired { seq }) = p;
                prop_assert!(resolved.insert(seq), "seq resolved twice in drain");
            }
            q.assert_conserved();
            prop_assert_eq!(resolved.len() as u64, q.dequeued() + q.dropped_deadline());
            prop_assert_eq!(accepted.len() as u64, q.enqueued());
            prop_assert_eq!(resolved.len(), accepted.len(), "lost requests");
        }
    }
}
