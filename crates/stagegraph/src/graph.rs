//! The typed stage DAG.
//!
//! An edit request flows through five stages: CPU preprocessing
//! (decode, resize, mask rasterize), GPU text encoding, GPU iterative
//! denoising, GPU VAE decoding, and CPU postprocessing (encode,
//! paste-back). A [`StageGraph`] names which of those stages run as
//! independent pools, how large each pool is, and how deep the bounded
//! queue feeding each stage may grow. Validation pins the graph to the
//! pipeline's data dependencies — stages must appear in pipeline
//! order, exactly once each, with denoise always present — so a
//! mis-assembled graph fails at construction, not mid-run.
//!
//! Each stage also names its rung on the degradation ladder
//! ([`StageAction`]): under pressure the graph sheds at the entry
//! (encode) stage, cuts steps at denoise, and downscales at decode.
//! Which action fires is decided per stage by that stage's own
//! `fps_serving::ControlPlane` — the graph only declares the mapping.

use fps_json::{Json, ToJson};

/// The pipeline stages a graph may disaggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageKind {
    /// CPU: image decode, resize, mask rasterization.
    Preprocess,
    /// GPU: prompt → text embeddings (the graph's admission gate).
    TextEncode,
    /// GPU: iterative denoising — the only multi-step stage, batched
    /// continuously at step boundaries.
    Denoise,
    /// GPU: latent → pixels.
    VaeDecode,
    /// CPU: pixel paste-back and image encode.
    Postprocess,
}

impl StageKind {
    /// Every stage, in pipeline order.
    pub const ALL: [StageKind; 5] = [
        StageKind::Preprocess,
        StageKind::TextEncode,
        StageKind::Denoise,
        StageKind::VaeDecode,
        StageKind::Postprocess,
    ];

    /// Stable label, used for trace tracks, report rows, and metrics.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Preprocess => "preprocess",
            StageKind::TextEncode => "text-encode",
            StageKind::Denoise => "denoise",
            StageKind::VaeDecode => "vae-decode",
            StageKind::Postprocess => "postprocess",
        }
    }

    /// Whether the stage occupies a GPU (CPU stages are the cheap
    /// pools disaggregation moves off the accelerator's critical
    /// path).
    pub fn is_gpu(self) -> bool {
        matches!(
            self,
            StageKind::TextEncode | StageKind::Denoise | StageKind::VaeDecode
        )
    }

    /// Position in pipeline order (validation key).
    fn order(self) -> usize {
        match self {
            StageKind::Preprocess => 0,
            StageKind::TextEncode => 1,
            StageKind::Denoise => 2,
            StageKind::VaeDecode => 3,
            StageKind::Postprocess => 4,
        }
    }

    /// The stage's rung on the degradation ladder.
    pub fn action(self) -> StageAction {
        match self {
            StageKind::TextEncode => StageAction::Shed,
            StageKind::Denoise => StageAction::ReduceSteps,
            StageKind::VaeDecode => StageAction::Downscale,
            StageKind::Preprocess | StageKind::Postprocess => StageAction::None,
        }
    }
}

/// What a stage does when its control plane reports overload. Cheaper
/// actions sit earlier in the pipeline: work not yet started is shed
/// whole, work mid-flight only loses quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageAction {
    /// Turn the request away before any GPU work (encode).
    Shed,
    /// Serve with a reduced step schedule (denoise).
    ReduceSteps,
    /// Decode at reduced resolution (VAE).
    Downscale,
    /// No degradation lever (CPU stages).
    None,
}

impl StageAction {
    /// Stable label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            StageAction::Shed => "shed",
            StageAction::ReduceSteps => "reduce-steps",
            StageAction::Downscale => "downscale",
            StageAction::None => "none",
        }
    }
}

/// One stage's pool shape inside a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpec {
    /// Which pipeline stage this pool runs.
    pub kind: StageKind,
    /// Workers in the pool.
    pub workers: usize,
    /// Concurrent lanes per worker (the denoise stage's continuous
    /// batch size; 1 for single-request stages).
    pub lanes: usize,
    /// Bounded inter-stage queue capacity feeding this stage. A full
    /// queue backpressures the upstream stage (its worker holds the
    /// finished item and stalls) — except at the graph entry, where it
    /// sheds.
    pub queue_capacity: usize,
}

impl StageSpec {
    /// A pool of `workers` single-lane workers fed by a queue of
    /// `queue_capacity`.
    pub fn new(kind: StageKind, workers: usize, queue_capacity: usize) -> Self {
        Self {
            kind,
            workers,
            lanes: 1,
            queue_capacity,
        }
    }

    /// Sets the per-worker lane count (denoise batch size).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Total concurrent requests the pool serves.
    pub fn capacity(&self) -> usize {
        self.workers.max(1) * self.lanes.max(1)
    }
}

/// Why a stage list failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no stages.
    Empty,
    /// A stage appears more than once.
    Duplicate(StageKind),
    /// Stages are not in pipeline order.
    OutOfOrder {
        /// The stage found out of place.
        found: StageKind,
        /// The stage it incorrectly follows.
        after: StageKind,
    },
    /// No denoise stage — the pipeline's core is missing.
    MissingDenoise,
    /// A stage has zero workers or lanes or queue slots.
    ZeroCapacity(StageKind),
}

impl core::fmt::Display for GraphError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GraphError::Empty => write!(f, "stage graph has no stages"),
            GraphError::Duplicate(k) => write!(f, "stage {} appears twice", k.label()),
            GraphError::OutOfOrder { found, after } => write!(
                f,
                "stage {} cannot follow {} (pipeline order)",
                found.label(),
                after.label()
            ),
            GraphError::MissingDenoise => write!(f, "stage graph has no denoise stage"),
            GraphError::ZeroCapacity(k) => {
                write!(f, "stage {} has zero workers/lanes/queue", k.label())
            }
        }
    }
}

/// A validated linear stage DAG: edges connect consecutive stages.
///
/// (The pipeline's data dependencies are a chain, so "DAG" here is the
/// degenerate linear case — but edges, per-stage pools, and per-edge
/// queues are all first-class, which is what add-on branches will need
/// when SwiftDiffusion-style module workers join the graph.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageGraph {
    stages: Vec<StageSpec>,
}

impl StageGraph {
    /// Validates and builds a linear graph from `stages`.
    ///
    /// # Errors
    ///
    /// Rejects empty graphs, duplicate or out-of-order stages, missing
    /// denoise, and zero-capacity pools.
    pub fn linear(stages: Vec<StageSpec>) -> Result<Self, GraphError> {
        if stages.is_empty() {
            return Err(GraphError::Empty);
        }
        for w in stages.windows(2) {
            if w[1].kind == w[0].kind {
                return Err(GraphError::Duplicate(w[1].kind));
            }
            if w[1].kind.order() <= w[0].kind.order() {
                return Err(GraphError::OutOfOrder {
                    found: w[1].kind,
                    after: w[0].kind,
                });
            }
        }
        if !stages.iter().any(|s| s.kind == StageKind::Denoise) {
            return Err(GraphError::MissingDenoise);
        }
        for s in &stages {
            if s.workers == 0 || s.lanes == 0 || s.queue_capacity == 0 {
                return Err(GraphError::ZeroCapacity(s.kind));
            }
        }
        Ok(Self { stages })
    }

    /// The canonical five-stage graph: CPU pre/post around the three
    /// GPU stages, single-lane pools except the continuously batched
    /// denoise stage.
    pub fn full(
        cpu_workers: usize,
        gpu_workers: usize,
        denoise_lanes: usize,
        queue_capacity: usize,
    ) -> Self {
        Self::linear(vec![
            StageSpec::new(StageKind::Preprocess, cpu_workers, queue_capacity),
            StageSpec::new(StageKind::TextEncode, gpu_workers, queue_capacity),
            StageSpec::new(StageKind::Denoise, gpu_workers, queue_capacity)
                .with_lanes(denoise_lanes),
            StageSpec::new(StageKind::VaeDecode, gpu_workers, queue_capacity),
            StageSpec::new(StageKind::Postprocess, cpu_workers, queue_capacity),
        ])
        .expect("canonical graph is valid by construction")
    }

    /// Stages in pipeline order.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the graph has no stages (never true post-validation).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Index of the denoise stage.
    pub fn denoise_ix(&self) -> usize {
        self.stages
            .iter()
            .position(|s| s.kind == StageKind::Denoise)
            .expect("validated graphs contain denoise")
    }

    /// The graph's inter-stage edges as `(from, to)` stage indices, in
    /// pipeline order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.stages.len().saturating_sub(1)).map(|i| (i, i + 1))
    }

    /// Human-readable label of edge `(from, to)`.
    pub fn edge_label(&self, from: usize, to: usize) -> String {
        format!(
            "{}\u{2192}{}",
            self.stages[from].kind.label(),
            self.stages[to].kind.label()
        )
    }
}

impl ToJson for StageGraph {
    fn to_json(&self) -> Json {
        Json::Array(
            self.stages
                .iter()
                .map(|s| {
                    Json::object()
                        .with("stage", s.kind.label())
                        .with("workers", s.workers as u64)
                        .with("lanes", s.lanes as u64)
                        .with("queue_capacity", s.queue_capacity as u64)
                        .with("action", s.kind.action().label())
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_graph_validates_and_orders() {
        let g = StageGraph::full(4, 1, 4, 8);
        assert_eq!(g.len(), 5);
        assert_eq!(g.denoise_ix(), 2);
        assert_eq!(g.edges().count(), 4);
        assert_eq!(g.edge_label(1, 2), "text-encode\u{2192}denoise");
        assert_eq!(g.stages()[2].capacity(), 4);
    }

    #[test]
    fn degradation_actions_follow_the_issue_mapping() {
        assert_eq!(StageKind::TextEncode.action(), StageAction::Shed);
        assert_eq!(StageKind::Denoise.action(), StageAction::ReduceSteps);
        assert_eq!(StageKind::VaeDecode.action(), StageAction::Downscale);
        assert_eq!(StageKind::Preprocess.action(), StageAction::None);
    }

    #[test]
    fn invalid_graphs_are_rejected() {
        assert_eq!(StageGraph::linear(vec![]), Err(GraphError::Empty));
        let dup = vec![
            StageSpec::new(StageKind::Denoise, 1, 1),
            StageSpec::new(StageKind::Denoise, 1, 1),
        ];
        assert_eq!(
            StageGraph::linear(dup),
            Err(GraphError::Duplicate(StageKind::Denoise))
        );
        let reversed = vec![
            StageSpec::new(StageKind::Denoise, 1, 1),
            StageSpec::new(StageKind::TextEncode, 1, 1),
        ];
        assert!(matches!(
            StageGraph::linear(reversed),
            Err(GraphError::OutOfOrder { .. })
        ));
        let no_denoise = vec![
            StageSpec::new(StageKind::Preprocess, 1, 1),
            StageSpec::new(StageKind::Postprocess, 1, 1),
        ];
        assert_eq!(
            StageGraph::linear(no_denoise),
            Err(GraphError::MissingDenoise)
        );
        let zero = vec![StageSpec::new(StageKind::Denoise, 0, 1)];
        assert_eq!(
            StageGraph::linear(zero),
            Err(GraphError::ZeroCapacity(StageKind::Denoise))
        );
    }

    #[test]
    fn denoise_only_graph_is_legal() {
        let g = StageGraph::linear(vec![StageSpec::new(StageKind::Denoise, 2, 4).with_lanes(3)])
            .unwrap();
        assert_eq!(g.denoise_ix(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.stages()[0].capacity(), 6);
    }

    #[test]
    fn serializes_shape_and_actions() {
        let j = StageGraph::full(2, 1, 4, 8).to_json();
        let arr = j.as_array().unwrap();
        assert_eq!(arr.len(), 5);
        assert_eq!(
            arr[1].get("action").and_then(Json::as_str),
            Some("shed"),
            "encode sheds"
        );
        assert_eq!(
            arr[2].get("action").and_then(Json::as_str),
            Some("reduce-steps")
        );
    }
}
