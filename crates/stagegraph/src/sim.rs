//! The virtual-time stage-graph simulator.
//!
//! One [`StageGraphSim`] run drives a seeded [`Trace`] through a
//! [`StageGraph`]: every stage owns a worker pool, a bounded entry
//! queue ([`StageQueue`]), and its own clock-generic
//! [`ControlPlane`] — the same policy type the cluster simulator, the
//! fleet simulator, and the threaded server consult. Degradation is
//! per-stage: admission sheds at the encode plane, the denoise plane's
//! ladder cuts steps, and the decode plane's ladder downscales output.
//!
//! The denoise stage runs *stage-level continuous batching*: each
//! denoise worker interleaves up to `lanes` sessions, advancing the
//! whole batch one step per tick and admitting newly queued requests
//! only at step boundaries (§4.3). Finished members hand off to the
//! decode queue; when that queue is full the member keeps its batch
//! slot (backpressure), and members whose deadline lapses at a tick
//! are dropped on the spot, freeing the slot.
//!
//! A monolithic arm ([`StageGraphConfig::monolithic`]) reuses the same
//! machinery with a denoise-only graph and *inline* CPU costs: session
//! setup (preprocess + text-encode) and teardown (VAE decode +
//! postprocess) block the worker between step ticks, exactly like the
//! single-pool threaded server. The GPU-bubble comparison between the
//! two arms is the paper's §4.3 disaggregation claim, generalized.
//!
//! Determinism matches the fleet simulator's bar: byte-identical
//! reports across reruns and across event schedulers, with an end-of-
//! run conservation assert (served + shed + expired = submitted) plus
//! a per-queue conservation check on every edge.
//!
//! [`Trace`]: fps_workload::Trace

use fps_json::{Json, ToJson};
use fps_metrics::{
    Autoscaler, AutoscalerConfig, Histogram, RungServed, ScaleDecision, ShardSignal, SloReport,
    StageQueueStats,
};
use fps_overload::Rung;
use fps_serving::cost::{BatchItem, CpuCosts};
use fps_serving::overload::rung_steps;
use fps_serving::{
    Assessment, ControlPlane, CostModel, EngineKind, GpuSpec, LeastLoadedRouter, OverloadConfig,
    OverloadState, TimeSource, TraceSink, Track,
};
use fps_simtime::{
    CalendarQueue, EventHandler, EventQueue, EventScheduler, SimDuration, SimTime, Simulation,
};
use fps_trace::Clock;
use fps_workload::Trace;

use crate::graph::{StageGraph, StageKind, StageSpec};
use crate::queue::StageQueue;

/// Text encoding modeled as this fraction of one batch-1 denoising
/// step (the CLIP tower is small next to the UNet).
const TEXT_ENCODE_STEP_FRACTION: f64 = 0.4;
/// VAE decode modeled as this multiple of one batch-1 denoising step.
const VAE_DECODE_STEP_FRACTION: f64 = 1.2;
/// Service-time factor for a downscaled (half-resolution) decode.
const DOWNSCALE_FACTOR: f64 = 0.25;

/// Stage-graph run parameters.
#[derive(Debug, Clone)]
pub struct StageGraphConfig {
    /// The stage topology and pool shapes.
    pub graph: StageGraph,
    /// SLO deadline, seconds from arrival.
    pub deadline_secs: f64,
    /// Typical mask ratio of the offered load (sizes admission
    /// estimates, as everywhere else).
    pub mean_mask_ratio: f64,
    /// Let the per-stage ladders degrade (step-reduce, downscale).
    /// Off pins every plane at premium quality; admission still sheds.
    pub allow_degradation: bool,
    /// Fold CPU pre/post and encode/decode into the denoise workers
    /// (the monolithic arm). Requires a denoise-only graph.
    pub inline_cpu: bool,
    /// CPU-side costs (preprocess, postprocess, per-edge handoff).
    /// Scale these up to model a CPU-heavy workload.
    pub cpu: CpuCosts,
    /// Per-stage pool autoscaling from windowed queue-wait signals;
    /// `None` freezes every pool (byte-identical to the pre-scaler
    /// simulator — no tick events are even scheduled).
    pub autoscaler: Option<AutoscalerConfig>,
    /// Seconds between autoscaler observation windows.
    pub scale_interval_secs: f64,
    /// Trace sink for stage spans and queue boundary events. Must be
    /// virtual-clock (or disabled): this is a virtual-time plane.
    pub trace: TraceSink,
}

impl StageGraphConfig {
    /// A disaggregated run over `graph`.
    pub fn staged(graph: StageGraph) -> Self {
        Self {
            graph,
            deadline_secs: 30.0,
            mean_mask_ratio: 0.11,
            allow_degradation: true,
            inline_cpu: false,
            cpu: CpuCosts::default(),
            autoscaler: None,
            scale_interval_secs: 10.0,
            trace: TraceSink::disabled(),
        }
    }

    /// The monolithic comparison arm: `workers` single-pool workers,
    /// each interleaving `lanes` sessions, with CPU work inline.
    pub fn monolithic(workers: usize, lanes: usize, queue_capacity: usize) -> Self {
        let graph = StageGraph::linear(vec![StageSpec::new(
            StageKind::Denoise,
            workers,
            queue_capacity,
        )
        .with_lanes(lanes)])
        .expect("denoise-only graph is valid");
        Self {
            inline_cpu: true,
            ..Self::staged(graph)
        }
    }
}

/// Per-stage accounting of one run.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage label.
    pub stage: &'static str,
    /// Requests that completed this stage's service.
    pub served_through: u64,
    /// Requests dropped at this stage because their deadline lapsed.
    pub expired: u64,
    /// Worker-seconds of actual service (excludes backpressure holds
    /// and, on the monolithic arm, inline CPU blocks).
    pub busy_secs: f64,
    /// `busy_secs / (workers × window)` — pool utilization.
    pub utilization: f64,
    /// Entry-queue stats (depth, pooled wait percentiles).
    pub queue: StageQueueStats,
    /// Backpressure bounces the entry queue refused.
    pub rejected_full: u64,
}

/// Starvation of one inter-stage edge: the fraction of the run window
/// the downstream pool sat idle. High values mean the edge (or the
/// stages above it) could not feed the pool.
#[derive(Debug, Clone)]
pub struct EdgeReport {
    /// "from→to" label.
    pub label: String,
    /// Requests handed across the edge.
    pub handoffs: u64,
    /// Peak queue depth on the edge.
    pub max_depth: u64,
    /// Idle fraction of the downstream pool over the run window.
    pub bubble_fraction: f64,
}

impl ToJson for EdgeReport {
    fn to_json(&self) -> Json {
        Json::object()
            .with("edge", self.label.as_str())
            .with("handoffs", self.handoffs)
            .with("max_depth", self.max_depth)
            .with("bubble_fraction", self.bubble_fraction)
    }
}

/// What one stage-graph run produced.
#[derive(Debug, Clone)]
pub struct StagedRunReport {
    /// Arm label ("staged" / "monolithic").
    pub label: String,
    /// SLO accounting, with per-stage queue stats attached and
    /// `bubble_fraction` set to the GPU (denoise-pool) bubble.
    pub slo: SloReport,
    /// Per-stage pools.
    pub stage_reports: Vec<StageReport>,
    /// Per-edge starvation.
    pub edges: Vec<EdgeReport>,
    /// Idle fraction of the denoise pool over the run window — the
    /// figure disaggregation exists to shrink.
    pub gpu_bubble_fraction: f64,
    /// Requests decoded at reduced resolution (decode-plane ladder).
    pub downscaled: u64,
    /// Scale-up actions across all stage pools.
    pub scale_ups: u64,
    /// Scale-down actions across all stage pools.
    pub scale_downs: u64,
    /// Per-stage pool sizes at the end of the run (graph order).
    pub final_workers: Vec<usize>,
    /// Virtual seconds from first arrival to last completion.
    pub makespan_secs: f64,
    /// Events the scheduler processed.
    pub events_processed: u64,
}

impl ToJson for StagedRunReport {
    fn to_json(&self) -> Json {
        Json::object()
            .with("label", self.label.as_str())
            .with("slo", self.slo.to_json())
            .with(
                "stages",
                Json::Array(
                    self.stage_reports
                        .iter()
                        .map(|s| {
                            Json::object()
                                .with("stage", s.stage)
                                .with("served_through", s.served_through)
                                .with("expired", s.expired)
                                .with("busy_secs", s.busy_secs)
                                .with("utilization", s.utilization)
                                .with("rejected_full", s.rejected_full)
                                .with("queue", s.queue.to_json())
                        })
                        .collect(),
                ),
            )
            .with("edges", self.edges.to_json())
            .with("gpu_bubble_fraction", self.gpu_bubble_fraction)
            .with("downscaled", self.downscaled)
            .with("scale_ups", self.scale_ups)
            .with("scale_downs", self.scale_downs)
            .with(
                "final_workers",
                Json::Array(
                    self.final_workers
                        .iter()
                        .map(|&w| Json::U64(w as u64))
                        .collect(),
                ),
            )
            .with("makespan_secs", self.makespan_secs)
            .with("events_processed", self.events_processed)
    }
}

/// Stage-graph events. Public so callers can plug in their own
/// [`EventScheduler`] via [`StageGraphSim::run_with_scheduler`].
#[derive(Debug, Clone, Copy)]
pub enum StageEv {
    /// Request `trace[i]` arrives at the graph entry.
    Arrival(usize),
    /// A non-denoise stage finished serving `seq`.
    StageDone {
        /// Stage index in the graph.
        stage: usize,
        /// Request sequence number (trace index).
        seq: u64,
    },
    /// Denoise worker `worker` completed one step interval.
    DenoiseTick {
        /// Worker index within the denoise pool.
        worker: usize,
    },
    /// Autoscaler observation window closes (scheduled only when the
    /// config carries an autoscaler).
    ScaleTick,
}

/// One accepted request's live state.
#[derive(Debug, Clone, Copy)]
struct Req {
    arrival: SimTime,
    deadline: SimTime,
    mask_ratio: f64,
    /// Steps remaining at the denoise stage (set at batch admission).
    remaining_steps: usize,
    rung: Option<Rung>,
    downscaled: bool,
}

/// One denoise worker's continuous batch.
#[derive(Debug, Default)]
struct DenoiseWorker {
    /// Sessions being stepped.
    members: Vec<u64>,
    /// Finished members blocked on a full downstream queue — they
    /// keep their batch slot until the queue drains.
    done_stalled: Vec<u64>,
    /// Whether a tick is scheduled.
    ticking: bool,
}

impl DenoiseWorker {
    fn occupied(&self) -> usize {
        self.members.len() + self.done_stalled.len()
    }
}

/// One stage's live state.
struct Stage {
    spec: StageSpec,
    plane: ControlPlane<LeastLoadedRouter>,
    queue: StageQueue,
    /// Occupied lanes (service plus backpressure holds); non-denoise.
    busy: usize,
    /// Finished-but-blocked requests holding lanes; non-denoise.
    stalled: std::collections::VecDeque<u64>,
    /// Denoise pool (empty for other stages).
    workers: Vec<DenoiseWorker>,
    /// Requests in this stage's queue or service.
    outstanding: usize,
    served_through: u64,
    expired: u64,
    busy_secs: f64,
    rung_counts: Vec<(&'static str, u64)>,
    downscaled: u64,
    /// Hysteretic pool scaler (None freezes the pool).
    scaler: Option<Autoscaler>,
    /// Queue waits of requests popped since the last scale tick.
    window_waits: Vec<f64>,
    /// `busy_secs` at the last scale tick, for windowed utilization.
    window_busy_mark: f64,
}

struct World<'a> {
    trace: &'a Trace,
    stages: Vec<Stage>,
    config: StageGraphConfig,
    cost: CostModel,
    engine: EngineKind,
    deadline: SimDuration,
    /// Index of the stage whose plane gates admission (first GPU
    /// stage, else stage 0).
    gate_ix: usize,
    denoise_ix: usize,
    requests: Vec<Req>,
    /// Accepted and not yet terminal.
    inflight: usize,
    submitted: u64,
    served: u64,
    served_within_deadline: u64,
    shed: u64,
    deadline_rejected: u64,
    latency_hist: Histogram,
    last_completion: SimTime,
}

impl World<'_> {
    fn bottleneck_capacity(&self) -> usize {
        self.stages[self.denoise_ix].spec.capacity()
    }

    /// Per-request service seconds at a stage (denoise excluded — its
    /// cost accrues per tick). The staged arm pays the disaggregation
    /// handoff on every non-entry stage.
    fn stage_service(&self, ix: usize, req: &Req) -> SimDuration {
        let kind = self.stages[ix].spec.kind;
        let one_step = self.cost.step_latency_full(1).as_secs_f64();
        let base = match kind {
            StageKind::Preprocess => self.config.cpu.preprocess.as_secs_f64(),
            StageKind::TextEncode => one_step * TEXT_ENCODE_STEP_FRACTION,
            StageKind::VaeDecode => {
                let d = one_step * VAE_DECODE_STEP_FRACTION;
                if req.downscaled {
                    d * DOWNSCALE_FACTOR
                } else {
                    d
                }
            }
            StageKind::Postprocess => self.config.cpu.postprocess.as_secs_f64(),
            StageKind::Denoise => unreachable!("denoise cost accrues per tick"),
        };
        let handoff = if ix > 0 {
            self.config.cpu.disagg_handoff.as_secs_f64()
        } else {
            0.0
        };
        SimDuration::from_secs_f64(base + handoff)
    }

    /// One step interval for a denoise batch.
    fn step_latency(&self, members: &[u64]) -> SimDuration {
        let items: Vec<BatchItem> = members
            .iter()
            .map(|&s| BatchItem {
                mask_ratio: self.requests[s as usize].mask_ratio,
            })
            .collect();
        self.engine.step_latency(&self.cost, &items)
    }

    /// Inline CPU seconds the monolithic arm pays on the worker for
    /// one session setup (preprocess + text-encode).
    fn inline_setup_secs(&self) -> f64 {
        self.config.cpu.preprocess.as_secs_f64()
            + self.cost.step_latency_full(1).as_secs_f64() * TEXT_ENCODE_STEP_FRACTION
    }

    /// Inline CPU seconds for one session teardown (decode + post).
    fn inline_teardown_secs(&self, req: &Req) -> f64 {
        let decode = self.cost.step_latency_full(1).as_secs_f64()
            * VAE_DECODE_STEP_FRACTION
            * if req.downscaled {
                DOWNSCALE_FACTOR
            } else {
                1.0
            };
        decode + self.config.cpu.postprocess.as_secs_f64()
    }

    fn emit_exec(&self, ix: usize, start: SimTime, end: SimTime, batch: usize) {
        if !self.config.trace.is_enabled() {
            return;
        }
        self.config.trace.span_at(
            "stage_exec",
            "stage",
            Track::new(4, ix as u32),
            start.as_nanos(),
            end.as_nanos(),
            0,
            vec![
                (
                    "stage",
                    Json::Str(self.stages[ix].spec.kind.label().to_string()),
                ),
                ("batch", Json::U64(batch as u64)),
            ],
        );
    }

    /// Terminal: the request completed the whole graph.
    fn complete(&mut self, seq: u64, at: SimTime) {
        let req = self.requests[seq as usize];
        self.inflight -= 1;
        self.served += 1;
        let e2e = at.since(req.arrival);
        if e2e <= self.deadline {
            self.served_within_deadline += 1;
        }
        self.latency_hist.record(e2e.as_secs_f64());
        self.last_completion = self.last_completion.max(at);
        if req.downscaled {
            // Downscales are counted on the decode stage when chosen;
            // nothing further here.
        }
        if let Some(r) = req.rung {
            let ix = self.denoise_ix;
            let label = r.label();
            match self.stages[ix]
                .rung_counts
                .iter_mut()
                .find(|(l, _)| *l == label)
            {
                Some((_, c)) => *c += 1,
                None => self.stages[ix].rung_counts.push((label, 1)),
            }
        }
    }

    /// Terminal: the request's deadline lapsed at stage `ix`.
    fn expire(&mut self, ix: usize, _seq: u64, at: SimTime) {
        self.stages[ix].expired += 1;
        self.deadline_rejected += 1;
        self.inflight -= 1;
        self.last_completion = self.last_completion.max(at);
    }

    /// Moves backpressure-stalled requests from stage `ix - 1` into
    /// stage `ix`'s queue while space lasts, freeing upstream lanes.
    /// Returns whether anything moved.
    fn relieve(&mut self, ix: usize, now: SimTime) -> bool {
        if ix == 0 {
            return false;
        }
        let mut moved = false;
        while !self.stages[ix].queue.is_full() {
            let Some(seq) = self.stages[ix - 1].stalled.pop_front() else {
                break;
            };
            let deadline = self.requests[seq as usize].deadline;
            let ok = self.stages[ix].queue.try_enqueue(now, seq, deadline);
            debug_assert!(ok, "space was checked");
            let up = &mut self.stages[ix - 1];
            up.busy -= 1;
            up.served_through += 1;
            up.outstanding -= 1;
            self.stages[ix].outstanding += 1;
            moved = true;
        }
        moved
    }

    /// Starts as much queued work as stage `ix` has lanes for, then
    /// pulls relieved upstream work through. Safe to call any time.
    fn pump<Q: EventScheduler<StageEv>>(&mut self, ix: usize, now: SimTime, queue: &mut Q) {
        if self.stages[ix].spec.kind == StageKind::Denoise {
            self.pump_denoise(ix, now, queue);
            return;
        }
        let capacity = self.stages[ix].spec.capacity();
        let mut popped_any = false;
        while self.stages[ix].busy < capacity {
            let mut expired = Vec::new();
            let live = self.stages[ix].queue.pop_live(now, &mut expired);
            for seq in expired {
                self.expire(ix, seq, now);
                self.stages[ix].outstanding -= 1;
                popped_any = true;
            }
            let Some((seq, wait)) = live else { break };
            popped_any = true;
            if self.stages[ix].scaler.is_some() {
                self.stages[ix].window_waits.push(wait);
            }
            // Decode consults its own plane at service start: under
            // pressure its ladder downscales the output.
            if self.stages[ix].spec.kind == StageKind::VaeDecode && self.config.allow_degradation {
                let outstanding = self.stages[ix].outstanding;
                let capacity = self.stages[ix].spec.capacity();
                let assessment =
                    self.stages[ix]
                        .plane
                        .assess(seq, now, outstanding, capacity, true);
                if let Assessment::Serve { rung: Some(r), .. } = assessment {
                    if matches!(
                        r,
                        Rung::TeaCacheHigh | Rung::TeaCacheLow | Rung::ReducedSteps
                    ) {
                        self.requests[seq as usize].downscaled = true;
                        self.stages[ix].downscaled += 1;
                    }
                }
            }
            let req = self.requests[seq as usize];
            let dur = self.stage_service(ix, &req);
            let finish = now + dur;
            self.stages[ix].busy += 1;
            self.stages[ix].busy_secs += dur.as_secs_f64();
            self.emit_exec(ix, now, finish, 1);
            queue.schedule_at(finish, StageEv::StageDone { stage: ix, seq });
        }
        if popped_any && self.relieve(ix, now) {
            // Upstream lanes freed: let the upstream stage refill, and
            // serve what just landed in our queue.
            self.pump(ix - 1, now, queue);
            self.pump(ix, now, queue);
        }
    }

    /// Admits queued requests into idle denoise workers (running
    /// workers admit at their own step boundaries).
    fn pump_denoise<Q: EventScheduler<StageEv>>(&mut self, ix: usize, now: SimTime, queue: &mut Q) {
        let lanes = self.stages[ix].spec.lanes.max(1);
        let workers = self.stages[ix].workers.len();
        let mut popped_any = false;
        for w in 0..workers {
            if self.stages[ix].workers[w].ticking {
                continue;
            }
            popped_any |= self.admit_denoise_members(ix, w, lanes, now);
            if !self.stages[ix].workers[w].members.is_empty() {
                self.schedule_tick(ix, w, now, queue);
            }
        }
        if popped_any && self.relieve(ix, now) {
            self.pump(ix - 1, now, queue);
            self.pump(ix, now, queue);
        }
    }

    /// Fills worker `w`'s batch from the denoise queue. Returns
    /// whether anything was popped (live or expired).
    fn admit_denoise_members(&mut self, ix: usize, w: usize, lanes: usize, now: SimTime) -> bool {
        let mut popped_any = false;
        while self.stages[ix].workers[w].occupied() < lanes {
            let mut expired = Vec::new();
            let live = self.stages[ix].queue.pop_live(now, &mut expired);
            for seq in expired {
                self.expire(ix, seq, now);
                self.stages[ix].outstanding -= 1;
                popped_any = true;
            }
            let Some((seq, wait)) = live else { break };
            popped_any = true;
            if self.stages[ix].scaler.is_some() {
                self.stages[ix].window_waits.push(wait);
            }
            // The denoise plane's ladder picks this dispatch's rung —
            // and with it the step schedule.
            let outstanding = self.stages[ix].outstanding;
            let capacity = self.stages[ix].spec.capacity();
            let assessment = self.stages[ix]
                .plane
                .assess(seq, now, outstanding, capacity, true);
            let (rung, steps) = match assessment {
                Assessment::Serve { rung, steps } => (rung, steps),
                Assessment::Shed(_) => unreachable!("already-admitted work is never shed"),
            };
            let req = &mut self.requests[seq as usize];
            req.rung = rung;
            req.remaining_steps = steps.max(1);
            self.stages[ix].workers[w].members.push(seq);
        }
        popped_any
    }

    /// Schedules worker `w`'s next step tick: one step interval for
    /// the current batch, plus — on the monolithic arm — the inline
    /// CPU block for members admitted right now.
    fn schedule_tick<Q: EventScheduler<StageEv>>(
        &mut self,
        ix: usize,
        w: usize,
        now: SimTime,
        queue: &mut Q,
    ) {
        let step = self.step_latency(&self.stages[ix].workers[w].members);
        let mut block = 0.0;
        if self.config.inline_cpu {
            // Newly admitted members pay session setup on the worker.
            let fresh = self.stages[ix].workers[w]
                .members
                .iter()
                .filter(|&&s| {
                    let r = &self.requests[s as usize];
                    r.remaining_steps == rung_steps_of(r, self.full_steps())
                })
                .count();
            block = fresh as f64 * self.inline_setup_secs();
        }
        let start = now + SimDuration::from_secs_f64(block);
        let end = start + step;
        self.stages[ix].busy_secs += step.as_secs_f64();
        self.emit_exec(ix, start, end, self.stages[ix].workers[w].members.len());
        self.stages[ix].workers[w].ticking = true;
        queue.schedule_at(end, StageEv::DenoiseTick { worker: w });
    }

    fn full_steps(&self) -> usize {
        self.cost.model.steps
    }
}

/// Steps a request serves at its assigned rung (used to recognize
/// freshly admitted members on the monolithic arm).
fn rung_steps_of(req: &Req, full_steps: usize) -> usize {
    match req.rung {
        Some(r) => rung_steps(r, full_steps),
        None => full_steps,
    }
}

impl<Q: EventScheduler<StageEv>> EventHandler<StageEv, Q> for World<'_> {
    fn handle(&mut self, now: SimTime, event: StageEv, queue: &mut Q) {
        match event {
            StageEv::Arrival(i) => {
                self.submitted += 1;
                let spec = &self.trace.requests[i];
                let backlog = self.inflight;
                let capacity = self.bottleneck_capacity();
                let gate = self.gate_ix;
                let assessment = self.stages[gate]
                    .plane
                    .assess(spec.id, now, backlog, capacity, false);
                if matches!(assessment, Assessment::Shed(_)) {
                    self.shed += 1;
                    return;
                }
                let seq = i as u64;
                self.requests[i] = Req {
                    arrival: now,
                    deadline: now + self.deadline,
                    mask_ratio: spec.mask_ratio,
                    remaining_steps: 0,
                    rung: None,
                    downscaled: false,
                };
                if !self.stages[0]
                    .queue
                    .try_enqueue(now, seq, now + self.deadline)
                {
                    // Entry queue full: the graph boundary sheds
                    // rather than backpressuring the outside world.
                    self.shed += 1;
                    return;
                }
                self.inflight += 1;
                self.stages[0].outstanding += 1;
                self.pump(0, now, queue);
            }
            StageEv::StageDone { stage, seq } => {
                let deadline = self.requests[seq as usize].deadline;
                if deadline < now {
                    // The deadline lapsed in service: drop at the
                    // boundary, free the lane.
                    self.stages[stage].busy -= 1;
                    self.stages[stage].outstanding -= 1;
                    self.expire(stage, seq, now);
                    self.pump(stage, now, queue);
                    return;
                }
                if stage + 1 == self.stages.len() {
                    let s = &mut self.stages[stage];
                    s.busy -= 1;
                    s.outstanding -= 1;
                    s.served_through += 1;
                    self.complete(seq, now);
                    self.pump(stage, now, queue);
                    return;
                }
                if self.stages[stage + 1].queue.try_enqueue(now, seq, deadline) {
                    let s = &mut self.stages[stage];
                    s.busy -= 1;
                    s.outstanding -= 1;
                    s.served_through += 1;
                    self.stages[stage + 1].outstanding += 1;
                    self.pump(stage + 1, now, queue);
                    self.pump(stage, now, queue);
                } else {
                    // Backpressure: hold the lane until downstream
                    // drains (relieve() will move us).
                    self.stages[stage].stalled.push_back(seq);
                }
            }
            StageEv::DenoiseTick { worker } => {
                let ix = self.denoise_ix;
                let lanes = self.stages[ix].spec.lanes.max(1);
                self.stages[ix].workers[worker].ticking = false;
                // The elapsed interval advanced every member one step.
                let members = std::mem::take(&mut self.stages[ix].workers[worker].members);
                let mut still = Vec::with_capacity(members.len());
                for seq in members {
                    let req = &mut self.requests[seq as usize];
                    req.remaining_steps -= 1;
                    let deadline = req.deadline;
                    if deadline < now {
                        // Deadline lapsed mid-batch: the drop frees
                        // the batch slot right here.
                        self.stages[ix].outstanding -= 1;
                        self.expire(ix, seq, now);
                        continue;
                    }
                    if self.requests[seq as usize].remaining_steps > 0 {
                        still.push(seq);
                        continue;
                    }
                    // Finished denoising.
                    if self.config.inline_cpu {
                        // Monolithic: teardown runs inline on this
                        // worker; completion lands after it.
                        let done_at = now
                            + SimDuration::from_secs_f64(
                                self.inline_teardown_secs(&self.requests[seq as usize]),
                            );
                        let s = &mut self.stages[ix];
                        s.outstanding -= 1;
                        s.served_through += 1;
                        self.complete(seq, done_at);
                    } else if self.stages[ix + 1].queue.try_enqueue(now, seq, deadline) {
                        let s = &mut self.stages[ix];
                        s.outstanding -= 1;
                        s.served_through += 1;
                        self.stages[ix + 1].outstanding += 1;
                    } else {
                        self.stages[ix].workers[worker].done_stalled.push(seq);
                    }
                }
                self.stages[ix].workers[worker].members = still;
                // Retry members stalled on a previously full queue.
                if !self.config.inline_cpu {
                    let stalled = std::mem::take(&mut self.stages[ix].workers[worker].done_stalled);
                    for seq in stalled {
                        let deadline = self.requests[seq as usize].deadline;
                        if self.stages[ix + 1].queue.try_enqueue(now, seq, deadline) {
                            let s = &mut self.stages[ix];
                            s.outstanding -= 1;
                            s.served_through += 1;
                            self.stages[ix + 1].outstanding += 1;
                        } else {
                            self.stages[ix].workers[worker].done_stalled.push(seq);
                        }
                    }
                }
                // Continuous batching: the step boundary is where new
                // requests join the running batch.
                self.admit_denoise_members(ix, worker, lanes, now);
                if !self.stages[ix].workers[worker].members.is_empty() {
                    self.schedule_tick(ix, worker, now, queue);
                }
                if ix + 1 < self.stages.len() {
                    self.pump(ix + 1, now, queue);
                }
                if self.relieve(ix, now) && ix > 0 {
                    self.pump(ix - 1, now, queue);
                }
                // Idle workers may now have queued work (e.g. freshly
                // relieved): admit it.
                self.pump(ix, now, queue);
            }
            StageEv::ScaleTick => {
                let interval = self.config.scale_interval_secs.max(0.001);
                for ix in 0..self.stages.len() {
                    let denoise = self.stages[ix].spec.kind == StageKind::Denoise;
                    let decision = {
                        let s = &mut self.stages[ix];
                        let Some(scaler) = s.scaler.as_mut() else {
                            continue;
                        };
                        s.window_waits
                            .sort_by(|a, b| a.partial_cmp(b).expect("finite waits"));
                        let p95 = if s.window_waits.is_empty() {
                            0.0
                        } else {
                            let n = s.window_waits.len();
                            let jx = ((n as f64 * 0.95).ceil() as usize).clamp(1, n);
                            s.window_waits[jx - 1]
                        };
                        let current = if denoise {
                            s.workers.len().max(1)
                        } else {
                            s.spec.workers.max(1)
                        };
                        let busy_delta = (s.busy_secs - s.window_busy_mark).max(0.0);
                        let utilization = (busy_delta
                            / (current as f64 * s.spec.lanes.max(1) as f64 * interval))
                            .min(1.0);
                        s.window_busy_mark = s.busy_secs;
                        s.window_waits.clear();
                        let signal = ShardSignal {
                            shed_rate: 0.0,
                            queue_wait_p95_secs: p95,
                            utilization,
                            cache_miss_rate: 0.0,
                        };
                        scaler.observe(current, &signal, now)
                    };
                    match decision {
                        ScaleDecision::Hold => {}
                        ScaleDecision::Up(n) => {
                            let s = &mut self.stages[ix];
                            s.spec.workers = n.max(1);
                            if denoise {
                                while s.workers.len() < n {
                                    s.workers.push(DenoiseWorker::default());
                                }
                            }
                            // New capacity may admit queued work now.
                            self.pump(ix, now, queue);
                        }
                        ScaleDecision::Down(n) => {
                            let s = &mut self.stages[ix];
                            if denoise {
                                // Drop only idle workers from the tail:
                                // running batches keep their worker.
                                while s.workers.len() > n.max(1) {
                                    let idle = s
                                        .workers
                                        .last()
                                        .is_some_and(|w| w.occupied() == 0 && !w.ticking);
                                    if !idle {
                                        break;
                                    }
                                    s.workers.pop();
                                }
                                s.spec.workers = s.workers.len().max(1);
                            } else {
                                // Busy lanes above the new capacity
                                // simply drain; admission stops first.
                                s.spec.workers = n.max(1);
                            }
                        }
                    }
                }
                if self.inflight > 0 || (self.submitted as usize) < self.trace.len() {
                    queue.schedule_after(SimDuration::from_secs_f64(interval), StageEv::ScaleTick);
                }
            }
        }
    }
}

/// Runs stage-graph simulations. The scheduler is pluggable
/// ([`StageGraphSim::run`] uses the calendar queue,
/// [`StageGraphSim::run_on_heap`] the binary heap) and both must
/// produce byte-identical reports.
pub struct StageGraphSim;

impl StageGraphSim {
    /// Runs `trace` under `config` on the calendar-queue scheduler.
    pub fn run(config: StageGraphConfig, trace: &Trace) -> StagedRunReport {
        Self::run_with_scheduler(config, trace, CalendarQueue::new())
    }

    /// Runs on the binary-heap scheduler (differential baseline).
    pub fn run_on_heap(config: StageGraphConfig, trace: &Trace) -> StagedRunReport {
        Self::run_with_scheduler(config, trace, EventQueue::new())
    }

    /// Runs on an explicit scheduler.
    ///
    /// # Panics
    ///
    /// Panics on a wall-clock trace sink (this is a virtual-time
    /// plane), on an `inline_cpu` config whose graph is not
    /// denoise-only, or when end-of-run conservation fails.
    pub fn run_with_scheduler<Q: EventScheduler<StageEv>>(
        config: StageGraphConfig,
        trace: &Trace,
        queue: Q,
    ) -> StagedRunReport {
        assert_ne!(
            config.trace.clock(),
            Some(Clock::Wall),
            "StageGraphSim is a virtual-time plane; use TraceSink::recording(Clock::Virtual)"
        );
        if config.inline_cpu {
            assert_eq!(
                config.graph.len(),
                1,
                "inline_cpu (the monolithic arm) requires a denoise-only graph"
            );
        }
        let cost = CostModel::new(GpuSpec::h800(), fps_diffusion::ModelConfig::paper_sdxl());
        let engine = EngineKind::FlashPs { kv: true };
        let deadline = SimDuration::from_secs_f64(config.deadline_secs);
        let full_steps = cost.model.steps;
        let hist_hi = (config.deadline_secs * 4.0).max(1.0);
        let denoise_ix = config.graph.denoise_ix();
        let gate_ix = config
            .graph
            .stages()
            .iter()
            .position(|s| s.kind.is_gpu())
            .unwrap_or(0);
        // Per-request service at the bottleneck, for admission sizing:
        // the denoise schedule plus, on the monolithic arm, the
        // inline CPU work that also occupies the worker.
        let one_step = engine
            .step_latency(
                &cost,
                &[BatchItem {
                    mask_ratio: config.mean_mask_ratio,
                }],
            )
            .as_secs_f64();
        let mut per_req_secs = one_step * full_steps as f64;
        if config.inline_cpu {
            per_req_secs += config.cpu.preprocess.as_secs_f64()
                + config.cpu.postprocess.as_secs_f64()
                + cost.step_latency_full(1).as_secs_f64()
                    * (TEXT_ENCODE_STEP_FRACTION + VAE_DECODE_STEP_FRACTION);
        }
        let stages: Vec<Stage> = config
            .graph
            .stages()
            .iter()
            .enumerate()
            .map(|(sx, spec)| {
                let mut overload_cfg = OverloadConfig::for_cluster(
                    &cost,
                    spec.workers,
                    spec.lanes,
                    config.mean_mask_ratio,
                    deadline,
                );
                // Size admission from the graph's bottleneck (the
                // denoise pool), not this stage's own pool: only the
                // gate plane sheds, and it sheds for the whole graph.
                let denoise_spec = config.graph.stages()[denoise_ix];
                overload_cfg.admission = fps_overload::AdmissionConfig::for_capacity(
                    denoise_spec.capacity(),
                    per_req_secs,
                    config.deadline_secs,
                );
                if !config.allow_degradation {
                    overload_cfg.ladder.enter = [f64::INFINITY; 4];
                }
                let state =
                    OverloadState::new(overload_cfg, &cost, spec.lanes, config.mean_mask_ratio);
                let plane =
                    ControlPlane::new(LeastLoadedRouter, TimeSource::virtual_clock(), full_steps)
                        .with_overload(Some(state))
                        .with_trace(config.trace.clone())
                        .with_control_track(Track::new(1, sx as u32));
                let workers = if spec.kind == StageKind::Denoise {
                    (0..spec.workers.max(1))
                        .map(|_| DenoiseWorker::default())
                        .collect()
                } else {
                    Vec::new()
                };
                Stage {
                    plane,
                    queue: StageQueue::new(
                        spec.kind.label(),
                        spec.queue_capacity,
                        hist_hi,
                        config.trace.clone(),
                        Track::new(3, sx as u32),
                    ),
                    busy: 0,
                    stalled: std::collections::VecDeque::new(),
                    workers,
                    outstanding: 0,
                    served_through: 0,
                    expired: 0,
                    busy_secs: 0.0,
                    rung_counts: Vec::new(),
                    downscaled: 0,
                    scaler: config.autoscaler.clone().map(Autoscaler::new),
                    window_waits: Vec::new(),
                    window_busy_mark: 0.0,
                    spec: *spec,
                }
            })
            .collect();
        let label = if config.inline_cpu {
            "monolithic"
        } else {
            "staged"
        };
        let deadline_secs = config.deadline_secs;
        let mut world = World {
            trace,
            stages,
            config,
            cost,
            engine,
            deadline,
            gate_ix,
            denoise_ix,
            requests: vec![
                Req {
                    arrival: SimTime::ZERO,
                    deadline: SimTime::ZERO,
                    mask_ratio: 0.0,
                    remaining_steps: 0,
                    rung: None,
                    downscaled: false,
                };
                trace.len()
            ],
            inflight: 0,
            submitted: 0,
            served: 0,
            served_within_deadline: 0,
            shed: 0,
            deadline_rejected: 0,
            latency_hist: Histogram::new(0.0, hist_hi, 512).expect("valid geometry"),
            last_completion: SimTime::ZERO,
        };
        let mut sim: Simulation<StageEv, Q> = Simulation::with_scheduler(queue);
        for (i, req) in trace.requests.iter().enumerate() {
            sim.queue_mut()
                .schedule_at(req.arrival(), StageEv::Arrival(i));
        }
        if world.config.autoscaler.is_some() && !trace.is_empty() {
            sim.queue_mut().schedule_after(
                SimDuration::from_secs_f64(world.config.scale_interval_secs.max(0.001)),
                StageEv::ScaleTick,
            );
        }
        sim.run(&mut world);
        // Conservation: every submitted request is served, shed, or
        // expired — queues must also balance individually.
        for s in &world.stages {
            s.queue.assert_conserved();
        }
        assert_eq!(world.inflight, 0, "requests still in flight at drain");
        assert_eq!(
            world.served + world.shed + world.deadline_rejected,
            world.submitted,
            "stage graph lost requests"
        );
        // Roll up.
        let makespan_secs = world.last_completion.as_secs_f64();
        let window_secs = makespan_secs.max(1e-9);
        let stage_reports: Vec<StageReport> = world
            .stages
            .iter()
            .map(|s| {
                let pool_secs = (s.spec.workers.max(1) as f64) * window_secs;
                StageReport {
                    stage: s.spec.kind.label(),
                    served_through: s.served_through,
                    expired: s.expired,
                    busy_secs: s.busy_secs,
                    utilization: (s.busy_secs / pool_secs).min(1.0),
                    queue: s.queue.stats(),
                    rejected_full: s.queue.rejected_full(),
                }
            })
            .collect();
        let edges: Vec<EdgeReport> = world
            .config
            .graph
            .edges()
            .map(|(from, to)| EdgeReport {
                label: world.config.graph.edge_label(from, to),
                handoffs: world.stages[to].queue.enqueued(),
                max_depth: world.stages[to].queue.max_depth(),
                bubble_fraction: 1.0 - stage_reports[to].utilization,
            })
            .collect();
        let gpu_bubble_fraction = 1.0 - stage_reports[world.denoise_ix].utilization;
        let rungs: Vec<RungServed> = world.stages[world.denoise_ix]
            .rung_counts
            .iter()
            .map(|&(label, served)| RungServed::new(label, served, None))
            .collect();
        let downscaled: u64 = world.stages.iter().map(|s| s.downscaled).sum();
        let slo = SloReport {
            label: label.to_string(),
            deadline_secs,
            submitted: world.submitted,
            served: world.served,
            served_within_deadline: world.served_within_deadline,
            shed: world.shed,
            deadline_rejected: world.deadline_rejected,
            other_rejected: 0,
            goodput_rps: world.served as f64 / window_secs,
            goodput_at_deadline_rps: world.served_within_deadline as f64 / window_secs,
            p95_latency_secs: world.latency_hist.percentile(0.95),
            mean_latency_secs: world.latency_hist.mean(),
            rungs,
            stages: stage_reports.iter().map(|s| s.queue.clone()).collect(),
            bubble_fraction: Some(gpu_bubble_fraction),
        };
        StagedRunReport {
            label: label.to_string(),
            slo,
            stage_reports,
            edges,
            gpu_bubble_fraction,
            downscaled,
            scale_ups: world
                .stages
                .iter()
                .filter_map(|s| s.scaler.as_ref())
                .map(Autoscaler::ups)
                .sum(),
            scale_downs: world
                .stages
                .iter()
                .filter_map(|s| s.scaler.as_ref())
                .map(Autoscaler::downs)
                .sum(),
            final_workers: world
                .stages
                .iter()
                .map(|s| {
                    if s.spec.kind == StageKind::Denoise {
                        s.workers.len().max(1)
                    } else {
                        s.spec.workers.max(1)
                    }
                })
                .collect(),
            makespan_secs,
            events_processed: sim.events_processed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_workload::{RatioDistribution, TraceConfig};

    fn small_trace(rps: f64, secs: f64, seed: u64) -> Trace {
        Trace::generate(&TraceConfig {
            rps,
            arrivals: fps_workload::trace::ArrivalProcess::Poisson,
            duration_secs: secs,
            ratio_dist: RatioDistribution::Uniform { lo: 0.05, hi: 0.3 },
            num_templates: 8,
            zipf_s: 0.9,
            seed,
        })
    }

    fn staged_config() -> StageGraphConfig {
        StageGraphConfig::staged(StageGraph::full(2, 1, 4, 8))
    }

    #[test]
    fn conservation_and_completion() {
        let trace = small_trace(0.4, 120.0, 11);
        let r = StageGraphSim::run(staged_config(), &trace);
        assert_eq!(r.slo.submitted, trace.len() as u64);
        assert_eq!(r.slo.lost(), 0);
        assert!(r.slo.served > 0, "nothing served");
        assert!(r.makespan_secs > 0.0);
        assert_eq!(r.stage_reports.len(), 5);
        assert_eq!(r.edges.len(), 4);
        // Every stage passed the same number of requests it completed.
        assert_eq!(r.stage_reports.last().unwrap().served_through, r.slo.served);
    }

    #[test]
    fn replays_are_byte_identical_on_both_schedulers() {
        let trace = small_trace(0.8, 90.0, 23);
        let a = StageGraphSim::run(staged_config(), &trace)
            .to_json()
            .to_string_compact();
        let b = StageGraphSim::run(staged_config(), &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a, b, "same scheduler, same bytes");
        let heap = StageGraphSim::run_on_heap(staged_config(), &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a, heap, "calendar and heap diverged");
    }

    #[test]
    fn monolithic_arm_conserves_and_reports_bubble() {
        let trace = small_trace(0.5, 120.0, 7);
        let r = StageGraphSim::run(StageGraphConfig::monolithic(1, 4, 8), &trace);
        assert_eq!(r.slo.lost(), 0);
        assert!(r.slo.served > 0);
        assert!(
            r.gpu_bubble_fraction > 0.0,
            "inline CPU must show as GPU bubble"
        );
        assert_eq!(r.label, "monolithic");
    }

    #[test]
    fn tracing_is_passive_and_attributes_edges() {
        let trace = small_trace(0.6, 60.0, 3);
        let untraced = StageGraphSim::run(staged_config(), &trace)
            .to_json()
            .to_string_compact();
        let sink = TraceSink::recording(Clock::Virtual);
        let mut cfg = staged_config();
        cfg.trace = sink.clone();
        let traced = StageGraphSim::run(cfg, &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(untraced, traced, "tracing changed outcomes");
        let t = sink.drain().unwrap();
        assert!(t.events.iter().any(|e| e.name == "stage_enqueue"));
        assert!(t.events.iter().any(|e| e.name == "stage_dequeue"));
        assert!(t.spans_named("stage_wait").next().is_some());
        assert!(t.spans_named("stage_exec").next().is_some());
    }

    #[test]
    fn saturating_burst_sheds_at_the_gate_and_reports_stage_stats() {
        // A burst far beyond the single denoise worker's capacity:
        // the encode plane must shed, queues must stay bounded, and
        // per-stage queue stats must surface on the SloReport.
        let trace = small_trace(20.0, 60.0, 5);
        let r = StageGraphSim::run(staged_config(), &trace);
        assert_eq!(r.slo.lost(), 0);
        assert!(r.slo.shed > 0, "gate never shed under saturation");
        assert_eq!(r.slo.stages.len(), 5);
        let denoise = r
            .slo
            .stages
            .iter()
            .find(|s| s.stage == "denoise")
            .expect("denoise stats");
        assert!(denoise.entered > 0);
    }

    #[test]
    fn wall_sink_is_rejected() {
        let result = std::panic::catch_unwind(|| {
            let trace = small_trace(0.1, 5.0, 1);
            let mut cfg = staged_config();
            cfg.trace = TraceSink::recording(Clock::Wall);
            StageGraphSim::run(cfg, &trace)
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_trace_is_empty_report() {
        let trace = small_trace(0.0001, 0.001, 1);
        let r = StageGraphSim::run(staged_config(), &trace);
        assert_eq!(r.slo.submitted, trace.len() as u64);
        assert_eq!(r.slo.lost(), 0);
    }

    #[test]
    fn autoscaler_grows_the_bottleneck_stage_and_replays_identically() {
        use fps_simtime::SimDuration;
        // Saturating load on a one-worker denoise pool: queue waits
        // blow past the threshold, and the scaler must grow the pool.
        let trace = small_trace(6.0, 180.0, 13);
        let mut cfg = staged_config();
        cfg.autoscaler = Some(AutoscalerConfig {
            min_workers: 1,
            max_workers: 4,
            up_ticks: 1,
            cooldown: SimDuration::from_secs_f64(10.0),
            ..Default::default()
        });
        let r = StageGraphSim::run(cfg.clone(), &trace);
        assert!(r.scale_ups > 0, "no stage pool ever scaled up");
        assert!(
            r.final_workers.iter().any(|&w| w > 1),
            "pools never grew: {:?}",
            r.final_workers
        );
        assert_eq!(r.slo.lost(), 0);
        // More denoise workers must serve more than the frozen pool.
        let frozen = StageGraphSim::run(staged_config(), &trace);
        assert!(
            r.slo.served > frozen.slo.served,
            "scaling served {} vs frozen {}",
            r.slo.served,
            frozen.slo.served
        );
        // Determinism holds with the scaler active.
        let a = StageGraphSim::run(cfg.clone(), &trace)
            .to_json()
            .to_string_compact();
        let heap = StageGraphSim::run_on_heap(cfg, &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a, heap, "scaled runs diverged across schedulers");
    }

    #[test]
    fn no_autoscaler_schedules_no_ticks() {
        let trace = small_trace(0.5, 60.0, 17);
        let r = StageGraphSim::run(staged_config(), &trace);
        assert_eq!(r.scale_ups, 0);
        assert_eq!(r.scale_downs, 0);
        // Pool sizes end exactly where the graph spec started them.
        assert_eq!(r.final_workers, vec![2, 1, 1, 1, 2]);
    }
}
