//! Micro-serving disaggregation of the edit pipeline.
//!
//! FlashPS §4.3 splits CPU pre/post-processing away from GPU
//! denoising to hide pipeline bubbles; LegoDiffusion generalizes that
//! fixed split into *micro-serving*: every pipeline stage is an
//! independently scaled pool. This crate is that substrate:
//!
//! - [`graph`] — the typed stage DAG ([`StageGraph`]): which stages
//!   run as pools, pool sizes, bounded-queue capacities, and each
//!   stage's rung on the degradation ladder (shed at encode,
//!   step-reduce at denoise, downscale at decode).
//! - [`queue`] — the bounded inter-stage queue ([`StageQueue`]):
//!   backpressure when full, drop-on-deadline at the head,
//!   conservation-checked accounting, and `stage_enqueue` /
//!   `stage_dequeue` boundary events plus `stage_wait` spans so
//!   bubble analysis can attribute a stall to a specific edge.
//! - [`sim`] — the virtual-time execution plane ([`StageGraphSim`]):
//!   each stage driven by its own clock-generic
//!   `fps_serving::ControlPlane`, denoise batched continuously at
//!   step boundaries, a monolithic arm for comparison, and
//!   byte-identical seeded replays on either event scheduler.
//!
//! The wall-clock execution plane lives in fps-core
//! (`ThreadedServer::start_staged`), built on the same graph shape
//! with real threads and bounded channels.

pub mod graph;
pub mod queue;
pub mod sim;

pub use graph::{GraphError, StageAction, StageGraph, StageKind, StageSpec};
pub use queue::{Popped, StageQueue};
pub use sim::{EdgeReport, StageEv, StageGraphConfig, StageGraphSim, StageReport, StagedRunReport};
