use fps_stagegraph::{StageGraph, StageGraphConfig, StageGraphSim};
use fps_stagegraph::{StageKind, StageSpec};
use fps_workload::{RatioDistribution, Trace, TraceConfig};

#[test]
fn denoise_done_stalled_drains() {
    // Denoise: 1 worker x 8 lanes; decode queue capacity 1 with a
    // single decode worker. A short burst fills all lanes; finishers
    // outpace the tiny decode queue, forcing done_stalled members.
    let graph = StageGraph::linear(vec![
        StageSpec::new(StageKind::Denoise, 1, 16).with_lanes(8),
        StageSpec::new(StageKind::VaeDecode, 1, 1),
    ])
    .unwrap();
    let mut cfg = StageGraphConfig::staged(graph);
    cfg.deadline_secs = 10_000.0;
    let trace = Trace::generate(&TraceConfig {
        rps: 8.0,
        arrivals: fps_workload::trace::ArrivalProcess::Poisson,
        duration_secs: 2.0,
        ratio_dist: RatioDistribution::Uniform { lo: 0.05, hi: 0.3 },
        num_templates: 4,
        zipf_s: 0.9,
        seed: 9,
    });
    let r = StageGraphSim::run(cfg, &trace);
    assert_eq!(r.slo.lost(), 0);
}
