//! Prompt and timestep embeddings.
//!
//! The text encoder of a real pipeline is replaced by a deterministic
//! hash-seeded embedding: a prompt maps to a fixed sequence of token
//! vectors that is stable across runs, distinct across prompts, and
//! smooth under no transformation (two different prompts are simply
//! different conditions — exactly how the quality benchmarks use them).

use fps_tensor::rng::{hash_bytes, DetRng};
use fps_tensor::Tensor;

use crate::config::ModelConfig;

/// Produces the `[prompt_tokens, hidden]` embedding of a prompt string.
///
/// The embedding is a pure function of `(prompt, cfg.weight_seed,
/// cfg.prompt_tokens, cfg.hidden)`.
pub fn embed_prompt(cfg: &ModelConfig, prompt: &str) -> Tensor {
    let seed = hash_bytes(prompt.as_bytes(), cfg.weight_seed ^ 0x5052_4F4D_5054);
    let mut rng = DetRng::new(seed);
    // Scale down so prompt tokens have comparable magnitude to
    // normalized image tokens.
    Tensor::randn([cfg.prompt_tokens, cfg.hidden], &mut rng).scale(0.5)
}

/// Produces the sinusoidal `[hidden]` embedding of a denoising timestep.
///
/// Standard transformer positional encoding applied to the continuous
/// timestep value `t ∈ [0, 1]` (1 = pure noise, 0 = clean).
pub fn embed_timestep(cfg: &ModelConfig, t: f32) -> Tensor {
    let h = cfg.hidden;
    let mut data = vec![0.0f32; h];
    let half = h / 2;
    for i in 0..half {
        // Frequencies spanning ~4 decades, as in standard DDPM code.
        let freq = (10_000.0f32).powf(-(i as f32) / half.max(1) as f32);
        let angle = t * 1000.0 * freq;
        data[i] = angle.sin();
        data[half + i] = angle.cos();
    }
    // Odd hidden sizes leave the final slot at zero, which is harmless.
    Tensor::from_vec(data, [h]).expect("length matches by construction")
}

/// Pools a prompt embedding and a timestep embedding into the single
/// conditioning vector `[hidden]` consumed by AdaLN modulation.
pub fn pool_condition(prompt_emb: &Tensor, t_emb: &Tensor) -> Tensor {
    let tokens = prompt_emb.dims()[0];
    let h = prompt_emb.dims()[1];
    let mut pooled = vec![0.0f32; h];
    for tok in 0..tokens {
        for (p, &v) in pooled
            .iter_mut()
            .zip(prompt_emb.data()[tok * h..(tok + 1) * h].iter())
        {
            *p += v;
        }
    }
    let inv = 1.0 / tokens.max(1) as f32;
    for (p, &t) in pooled.iter_mut().zip(t_emb.data().iter()) {
        *p = *p * inv + t;
    }
    Tensor::from_vec(pooled, [h]).expect("length matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_embedding_is_deterministic_and_distinct() {
        let cfg = ModelConfig::tiny();
        let a = embed_prompt(&cfg, "a red hat");
        let b = embed_prompt(&cfg, "a red hat");
        let c = embed_prompt(&cfg, "a blue hat");
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c).unwrap() > 0.1);
        assert_eq!(a.dims(), &[cfg.prompt_tokens, cfg.hidden]);
    }

    #[test]
    fn timestep_embedding_varies_smoothly() {
        let cfg = ModelConfig::tiny();
        let e0 = embed_timestep(&cfg, 0.500);
        let e1 = embed_timestep(&cfg, 0.501);
        let e9 = embed_timestep(&cfg, 0.9);
        let near = e0.max_abs_diff(&e1).unwrap();
        let far = e0.max_abs_diff(&e9).unwrap();
        assert!(near < far, "near={near} far={far}");
        assert!(e0.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn timestep_embedding_bounded() {
        let cfg = ModelConfig::flux_like();
        for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let e = embed_timestep(&cfg, t);
            assert!(e.data().iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn pooled_condition_mixes_both_inputs() {
        let cfg = ModelConfig::tiny();
        let p = embed_prompt(&cfg, "x");
        let t1 = embed_timestep(&cfg, 0.1);
        let t2 = embed_timestep(&cfg, 0.9);
        let c1 = pool_condition(&p, &t1);
        let c2 = pool_condition(&p, &t2);
        assert!(c1.max_abs_diff(&c2).unwrap() > 1e-3);
        let p2 = embed_prompt(&cfg, "y");
        let c3 = pool_condition(&p2, &t1);
        assert!(c1.max_abs_diff(&c3).unwrap() > 1e-3);
    }
}
