//! Activation caches for mask-aware image editing.
//!
//! A [`TemplateCache`] holds, for one image template, the activations
//! captured during a *priming* inference: for every denoising step and
//! every transformer block, the full-length block output `Y` (and
//! optionally the attention keys/values `K`, `V` for the Fig. 7
//! alternative). A subsequent edit request with any mask can then
//! replenish its unmasked rows from the cache.
//!
//! The numeric substrate keeps caches in memory; `fps-maskcache` layers
//! the hierarchical HBM/host/disk placement, sizing, and load-latency
//! modelling on top of the byte counts reported here.

use fps_tensor::Tensor;

use crate::error::DiffusionError;
use crate::Result;

/// Magic prefix of the serialized cache format.
const CACHE_MAGIC: &[u8; 4] = b"FPSC";
/// Serialization format version. Version 2 added the optional per-step
/// UNet scaffold output that the sparse compute path replenishes
/// uncomputed conv pixels from.
const CACHE_VERSION: u8 = 2;

/// Cached activations of one transformer block at one denoising step.
#[derive(Debug, Clone)]
pub struct BlockCache {
    /// Full-length block output `[L, H]` (the `Y` matrix of Fig. 5).
    pub y: Tensor,
    /// Full-length attention keys `[L, H]`, present only when the cache
    /// was primed for the K/V variant.
    pub k: Option<Tensor>,
    /// Full-length attention values `[L, H]`, paired with `k`.
    pub v: Option<Tensor>,
}

impl BlockCache {
    /// Bytes of the Y-variant payload.
    pub fn bytes_y(&self) -> u64 {
        self.y.numel() as u64 * 4
    }

    /// Bytes of the K/V-variant payload (2× the Y payload per the
    /// paper), or 0 when K/V were not captured.
    pub fn bytes_kv(&self) -> u64 {
        match (&self.k, &self.v) {
            (Some(k), Some(v)) => (k.numel() + v.numel()) as u64 * 4,
            _ => 0,
        }
    }
}

/// Cached activations of every block at one denoising step.
#[derive(Debug, Clone, Default)]
pub struct StepCache {
    /// Per-block caches, indexed by block position in the model.
    pub blocks: Vec<BlockCache>,
    /// UNet conv-scaffold output `[L, C]` on the template latent at
    /// this step (`None` for DiT models, which have no scaffold). The
    /// sparse compute path reuses these rows for every grid pixel
    /// outside the mask's dilation instead of convolving the full grid.
    pub scaffold: Option<Tensor>,
}

/// All cached activations for one image template.
#[derive(Debug, Clone)]
pub struct TemplateCache {
    /// Identifier of the template this cache belongs to.
    pub template_id: u64,
    /// Token length the activations were captured at.
    pub tokens: usize,
    /// Hidden dimension the activations were captured at.
    pub hidden: usize,
    steps: Vec<StepCache>,
}

impl TemplateCache {
    /// Creates an empty cache shell for a template.
    pub fn new(template_id: u64, tokens: usize, hidden: usize) -> Self {
        Self {
            template_id,
            tokens,
            hidden,
            steps: Vec::new(),
        }
    }

    /// Appends the cache of the next denoising step.
    pub fn push_step(&mut self, step: StepCache) {
        self.steps.push(step);
    }

    /// Number of denoising steps captured.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Looks up the cache for `(step, block)`.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::CacheMiss`] when the entry is absent.
    pub fn get(&self, step: usize, block: usize) -> Result<&BlockCache> {
        self.steps
            .get(step)
            .and_then(|s| s.blocks.get(block))
            .ok_or(DiffusionError::CacheMiss { step, block })
    }

    /// The template's scaffold output at `step`, when one was captured
    /// (UNet models primed since format version 2).
    pub fn step_scaffold(&self, step: usize) -> Option<&Tensor> {
        self.steps.get(step).and_then(|s| s.scaffold.as_ref())
    }

    /// Total bytes of the Y-variant cache across all steps and blocks.
    pub fn bytes_y(&self) -> u64 {
        self.steps
            .iter()
            .flat_map(|s| s.blocks.iter())
            .map(BlockCache::bytes_y)
            .sum()
    }

    /// Total bytes of the K/V-variant cache across all steps and blocks.
    pub fn bytes_kv(&self) -> u64 {
        self.steps
            .iter()
            .flat_map(|s| s.blocks.iter())
            .map(BlockCache::bytes_kv)
            .sum()
    }

    /// Serializes the cache to a compact binary blob (magic, version,
    /// header, then little-endian `f32` tensor payloads) — the format
    /// spilled caches take on disk or in the hierarchical store's
    /// payload path.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.bytes_y() as usize + self.bytes_kv() as usize);
        out.extend_from_slice(CACHE_MAGIC);
        out.push(CACHE_VERSION);
        out.extend_from_slice(&self.template_id.to_le_bytes());
        out.extend_from_slice(&(self.tokens as u64).to_le_bytes());
        out.extend_from_slice(&(self.hidden as u64).to_le_bytes());
        out.extend_from_slice(&(self.steps.len() as u32).to_le_bytes());
        for step in &self.steps {
            out.extend_from_slice(&(step.blocks.len() as u32).to_le_bytes());
            out.push(u8::from(step.scaffold.is_some()));
            if let Some(sc) = &step.scaffold {
                write_tensor(&mut out, sc);
            }
            for b in &step.blocks {
                out.push(u8::from(b.k.is_some() && b.v.is_some()));
                write_tensor(&mut out, &b.y);
                if let (Some(k), Some(v)) = (&b.k, &b.v) {
                    write_tensor(&mut out, k);
                    write_tensor(&mut out, v);
                }
            }
        }
        out
    }

    /// Deserializes a cache previously produced by
    /// [`TemplateCache::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidConfig`] for truncated,
    /// corrupt, or version-mismatched input.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let mut r = Reader { data, pos: 0 };
        let magic = r.take(4)?;
        if magic != CACHE_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = r.take(1)?[0];
        if version != CACHE_VERSION {
            return Err(corrupt("unsupported version"));
        }
        let template_id = r.u64()?;
        let tokens = r.u64()? as usize;
        let hidden = r.u64()? as usize;
        let n_steps = r.u32()? as usize;
        let mut cache = Self::new(template_id, tokens, hidden);
        for _ in 0..n_steps {
            let n_blocks = r.u32()? as usize;
            let mut step = StepCache::default();
            if r.take(1)?[0] != 0 {
                step.scaffold = Some(read_tensor(&mut r)?);
            }
            for _ in 0..n_blocks {
                let has_kv = r.take(1)?[0] != 0;
                let y = read_tensor(&mut r)?;
                let (k, v) = if has_kv {
                    (Some(read_tensor(&mut r)?), Some(read_tensor(&mut r)?))
                } else {
                    (None, None)
                };
                step.blocks.push(BlockCache { y, k, v });
            }
            cache.push_step(step);
        }
        if r.pos != r.data.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(cache)
    }

    /// Whether K/V activations were captured for every block.
    pub fn has_kv(&self) -> bool {
        !self.steps.is_empty()
            && self
                .steps
                .iter()
                .flat_map(|s| s.blocks.iter())
                .all(|b| b.k.is_some() && b.v.is_some())
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(corrupt("truncated"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

fn corrupt(reason: &str) -> DiffusionError {
    DiffusionError::InvalidConfig {
        reason: format!("corrupt cache blob: {reason}"),
    }
}

fn write_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.extend_from_slice(&(t.dims().len() as u32).to_le_bytes());
    for &d in t.dims() {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_tensor(r: &mut Reader<'_>) -> Result<Tensor> {
    let rank = r.u32()? as usize;
    if rank > 8 {
        return Err(corrupt("implausible rank"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(r.u64()? as usize);
    }
    let numel: usize = dims.iter().product();
    if numel > (1 << 30) {
        return Err(corrupt("implausible tensor size"));
    }
    let raw = r.take(numel * 4)?;
    let data: Vec<f32> = raw
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    Tensor::from_vec(data, dims).map_err(DiffusionError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(l: usize, h: usize, kv: bool) -> BlockCache {
        BlockCache {
            y: Tensor::zeros([l, h]),
            k: kv.then(|| Tensor::zeros([l, h])),
            v: kv.then(|| Tensor::zeros([l, h])),
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        let mut cache = TemplateCache::new(1, 4, 8);
        cache.push_step(StepCache {
            blocks: vec![block(4, 8, false); 2],
            scaffold: None,
        });
        assert!(cache.get(0, 1).is_ok());
        assert_eq!(
            cache.get(0, 2).unwrap_err(),
            DiffusionError::CacheMiss { step: 0, block: 2 }
        );
        assert_eq!(
            cache.get(1, 0).unwrap_err(),
            DiffusionError::CacheMiss { step: 1, block: 0 }
        );
    }

    #[test]
    fn byte_accounting() {
        let mut cache = TemplateCache::new(1, 4, 8);
        cache.push_step(StepCache {
            blocks: vec![block(4, 8, true); 3],
            scaffold: None,
        });
        cache.push_step(StepCache {
            blocks: vec![block(4, 8, true); 3],
            scaffold: None,
        });
        // Y: 2 steps × 3 blocks × 4×8 floats × 4 bytes.
        assert_eq!(cache.bytes_y(), 2 * 3 * 4 * 8 * 4);
        // K/V doubles it, matching the paper's 2× claim.
        assert_eq!(cache.bytes_kv(), 2 * cache.bytes_y());
        assert!(cache.has_kv());
    }

    #[test]
    fn serialization_round_trips() {
        let mut cache = TemplateCache::new(42, 4, 8);
        let mut rng = fps_tensor::rng::DetRng::new(1);
        for _ in 0..3 {
            let blocks = (0..2)
                .map(|i| BlockCache {
                    y: Tensor::randn([4, 8], &mut rng),
                    k: (i == 0).then(|| Tensor::randn([4, 8], &mut rng)),
                    v: (i == 0).then(|| Tensor::randn([4, 8], &mut rng)),
                })
                .collect();
            cache.push_step(StepCache {
                blocks,
                scaffold: None,
            });
        }
        let bytes = cache.to_bytes();
        let back = TemplateCache::from_bytes(&bytes).unwrap();
        assert_eq!(back.template_id, 42);
        assert_eq!(back.tokens, 4);
        assert_eq!(back.hidden, 8);
        assert_eq!(back.num_steps(), 3);
        for s in 0..3 {
            for b in 0..2 {
                let a = cache.get(s, b).unwrap();
                let z = back.get(s, b).unwrap();
                assert_eq!(a.y, z.y);
                assert_eq!(a.k, z.k);
                assert_eq!(a.v, z.v);
            }
        }
    }

    #[test]
    fn deserialization_rejects_corrupt_blobs() {
        let mut cache = TemplateCache::new(1, 2, 2);
        cache.push_step(StepCache {
            blocks: vec![block(2, 2, false)],
            scaffold: None,
        });
        let good = cache.to_bytes();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(TemplateCache::from_bytes(&bad).is_err());
        // Bad version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(TemplateCache::from_bytes(&bad).is_err());
        // Truncation at every prefix length must error, never panic.
        for cut in [0, 3, 5, 12, good.len() / 2, good.len() - 1] {
            assert!(
                TemplateCache::from_bytes(&good[..cut]).is_err(),
                "cut {cut}"
            );
        }
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(TemplateCache::from_bytes(&bad).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        #[test]
        fn prop_serialization_round_trips(
            steps in 0usize..4,
            blocks in 1usize..4,
            l in 1usize..6,
            h in 1usize..6,
            kv in proptest::bool::ANY,
            seed in 0u64..1000,
        ) {
            let mut rng = fps_tensor::rng::DetRng::new(seed);
            let mut cache = TemplateCache::new(seed, l, h);
            for _ in 0..steps {
                let bs = (0..blocks)
                    .map(|_| BlockCache {
                        y: Tensor::randn([l, h], &mut rng),
                        k: kv.then(|| Tensor::randn([l, h], &mut rng)),
                        v: kv.then(|| Tensor::randn([l, h], &mut rng)),
                    })
                    .collect();
                cache.push_step(StepCache {
                    blocks: bs,
                    scaffold: None,
                });
            }
            let back = TemplateCache::from_bytes(&cache.to_bytes()).expect("round trip");
            proptest::prop_assert_eq!(back.num_steps(), steps);
            proptest::prop_assert_eq!(back.bytes_y(), cache.bytes_y());
            proptest::prop_assert_eq!(back.bytes_kv(), cache.bytes_kv());
            for s in 0..steps {
                for b in 0..blocks {
                    proptest::prop_assert_eq!(
                        &cache.get(s, b).expect("entry").y,
                        &back.get(s, b).expect("entry").y
                    );
                }
            }
        }
    }

    #[test]
    fn has_kv_requires_every_block() {
        let mut cache = TemplateCache::new(1, 4, 8);
        cache.push_step(StepCache {
            blocks: vec![block(4, 8, true), block(4, 8, false)],
            scaffold: None,
        });
        assert!(!cache.has_kv());
        assert_eq!(cache.num_steps(), 1);
        let empty = TemplateCache::new(2, 4, 8);
        assert!(!empty.has_kv());
    }
}
