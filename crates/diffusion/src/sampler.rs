//! Deterministic DDIM-style sampler with inpainting support.
//!
//! The sampler follows the standard latent-diffusion recipe: a linear
//! beta schedule defines cumulative signal fractions `ᾱ(t)`; inference
//! visits a decreasing subset of timesteps; each step predicts noise,
//! reconstructs `x₀`, and steps to the next timestep deterministically
//! (DDIM with η = 0). Image *editing* adds the inpainting blend: after
//! every step, latents at unmasked positions are overwritten with the
//! appropriately re-noised template latent, so only masked tokens are
//! actually generated — the mechanism behind every strategy this crate
//! serves.

use fps_tensor::ops::scatter_rows_into;
use fps_tensor::Tensor;

use crate::error::DiffusionError;
use crate::Result;

/// Number of training timesteps the beta schedule is defined over.
const TRAIN_STEPS: usize = 1000;

/// Linear beta schedule endpoints (the SD/DDPM defaults).
const BETA_START: f64 = 1e-4;
const BETA_END: f64 = 0.02;

/// Dynamic-thresholding bound on reconstructed `x₀`.
const X0_CLAMP: f32 = 3.0;

/// The inference-time noise schedule: one entry per denoising step, in
/// execution order (high noise → low noise).
#[derive(Debug, Clone)]
pub struct NoiseSchedule {
    /// Cumulative signal fraction `ᾱ` at each visited timestep.
    abar: Vec<f32>,
    /// Normalized timestep in `[0, 1]` (1 = pure noise) fed to the
    /// timestep embedding.
    t_norm: Vec<f32>,
}

impl NoiseSchedule {
    /// Builds a schedule visiting `steps` evenly spaced timesteps.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidConfig`] for `steps == 0`.
    pub fn new(steps: usize) -> Result<Self> {
        if steps == 0 {
            return Err(DiffusionError::InvalidConfig {
                reason: "sampler needs at least one step".into(),
            });
        }
        // Cumulative ᾱ over the full training schedule.
        let mut abar_train = Vec::with_capacity(TRAIN_STEPS);
        let mut acc = 1.0f64;
        for i in 0..TRAIN_STEPS {
            let beta = BETA_START + (BETA_END - BETA_START) * i as f64 / (TRAIN_STEPS - 1) as f64;
            acc *= 1.0 - beta;
            abar_train.push(acc);
        }
        // Visit `steps` timesteps from high to low noise.
        let mut abar = Vec::with_capacity(steps);
        let mut t_norm = Vec::with_capacity(steps);
        for k in 0..steps {
            let frac = 1.0 - k as f64 / steps as f64; // (0, 1], descending
            let ti = ((frac * TRAIN_STEPS as f64) as usize).clamp(1, TRAIN_STEPS) - 1;
            abar.push(abar_train[ti] as f32);
            t_norm.push(frac as f32);
        }
        Ok(Self { abar, t_norm })
    }

    /// Number of denoising steps.
    pub fn steps(&self) -> usize {
        self.abar.len()
    }

    /// `ᾱ` at step `k` (execution order).
    pub fn abar(&self, k: usize) -> f32 {
        self.abar[k]
    }

    /// `ᾱ` *after* step `k` completes (1.0 after the final step, i.e. a
    /// clean latent).
    pub fn abar_next(&self, k: usize) -> f32 {
        self.abar.get(k + 1).copied().unwrap_or(1.0)
    }

    /// Normalized timestep fed to the embedding at step `k`.
    pub fn t_norm(&self, k: usize) -> f32 {
        self.t_norm[k]
    }
}

/// Diffuses a clean latent to noise level `ᾱ`:
/// `x = sqrt(ᾱ)·z₀ + sqrt(1-ᾱ)·ε`.
///
/// # Errors
///
/// Returns a shape error when `z0` and `noise` disagree.
pub fn noise_to_level(z0: &Tensor, noise: &Tensor, abar: f32) -> Result<Tensor> {
    Ok(z0
        .scale(abar.sqrt())
        .add(&noise.scale((1.0 - abar).max(0.0).sqrt()))?)
}

/// One deterministic DDIM update: given `x_t` at `ᾱ_t` and the
/// predicted noise, steps to `ᾱ_next`.
///
/// The reconstructed `x₀` is clamped to `±3` (dynamic thresholding), as
/// production pipelines do to keep untrained/extreme predictions from
/// destabilizing the trajectory.
///
/// # Errors
///
/// Returns a shape error when `x_t` and `eps` disagree.
pub fn ddim_step(x_t: &Tensor, eps: &Tensor, abar_t: f32, abar_next: f32) -> Result<Tensor> {
    let sa = abar_t.sqrt().max(1e-4);
    let sn = (1.0 - abar_t).max(0.0).sqrt();
    let x0 = x_t
        .sub(&eps.scale(sn))?
        .scale(1.0 / sa)
        .map(|v| v.clamp(-X0_CLAMP, X0_CLAMP));
    Ok(x0
        .scale(abar_next.sqrt())
        .add(&eps.scale((1.0 - abar_next).max(0.0).sqrt()))?)
}

/// The inpainting blend: overwrites *unmasked* rows of `x` with the
/// template latent re-noised to level `ᾱ`, leaving masked rows (listed
/// in `masked_idx`) untouched.
///
/// # Errors
///
/// Returns a shape error when operands disagree or indices are out of
/// bounds.
pub fn inpaint_blend(
    x: &mut Tensor,
    template_latent: &Tensor,
    fixed_noise: &Tensor,
    abar: f32,
    masked_idx: &[usize],
) -> Result<()> {
    let renoised = noise_to_level(template_latent, fixed_noise, abar)?;
    let total = x.dims()[0];
    let masked: std::collections::HashSet<usize> = masked_idx.iter().copied().collect();
    let unmasked: Vec<usize> = (0..total).filter(|i| !masked.contains(i)).collect();
    let rows = fps_tensor::ops::gather_rows(&renoised, &unmasked)?;
    scatter_rows_into(x, &rows, &unmasked)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_tensor::rng::DetRng;

    #[test]
    fn schedule_is_monotone() {
        let s = NoiseSchedule::new(10).unwrap();
        assert_eq!(s.steps(), 10);
        for k in 1..10 {
            assert!(s.abar(k) > s.abar(k - 1), "ᾱ must increase as noise falls");
            assert!(s.t_norm(k) < s.t_norm(k - 1));
        }
        assert!(s.abar(0) < 0.05, "first step is near pure noise");
        assert!(s.abar_next(9) == 1.0);
        assert!(NoiseSchedule::new(0).is_err());
    }

    #[test]
    fn noise_to_level_endpoints() {
        let mut rng = DetRng::new(1);
        let z = Tensor::randn([4, 2], &mut rng);
        let n = Tensor::randn([4, 2], &mut rng);
        let clean = noise_to_level(&z, &n, 1.0).unwrap();
        assert!(clean.max_abs_diff(&z).unwrap() < 1e-6);
        let noisy = noise_to_level(&z, &n, 0.0).unwrap();
        assert!(noisy.max_abs_diff(&n).unwrap() < 1e-6);
    }

    #[test]
    fn ddim_with_true_noise_recovers_clean_latent() {
        // If the model predicted the exact noise, stepping to ᾱ = 1
        // reconstructs z0.
        let mut rng = DetRng::new(2);
        let z0 = Tensor::randn([6, 3], &mut rng).scale(0.5);
        let eps = Tensor::randn([6, 3], &mut rng);
        let x_t = noise_to_level(&z0, &eps, 0.3).unwrap();
        let x_clean = ddim_step(&x_t, &eps, 0.3, 1.0).unwrap();
        assert!(x_clean.max_abs_diff(&z0).unwrap() < 1e-4);
    }

    #[test]
    fn ddim_clamps_x0() {
        // Extreme predictions are clamped, keeping trajectories bounded.
        let x_t = Tensor::full([1, 1], 100.0);
        let eps = Tensor::zeros([1, 1]);
        let out = ddim_step(&x_t, &eps, 0.01, 1.0).unwrap();
        assert!(out.data()[0].abs() <= X0_CLAMP + 1e-5);
    }

    #[test]
    fn blend_preserves_masked_rows_and_overwrites_unmasked() {
        let mut rng = DetRng::new(3);
        let template = Tensor::randn([5, 2], &mut rng);
        let noise = Tensor::randn([5, 2], &mut rng);
        let mut x = Tensor::full([5, 2], 42.0);
        inpaint_blend(&mut x, &template, &noise, 0.5, &[1, 3]).unwrap();
        // Masked rows untouched.
        assert!(x.row(1).unwrap().iter().all(|&v| v == 42.0));
        assert!(x.row(3).unwrap().iter().all(|&v| v == 42.0));
        // Unmasked rows equal the re-noised template.
        let expected = noise_to_level(&template, &noise, 0.5).unwrap();
        for tok in [0usize, 2, 4] {
            assert_eq!(x.row(tok).unwrap(), expected.row(tok).unwrap());
        }
    }

    #[test]
    fn full_denoise_loop_is_bounded() {
        // Run a complete loop with an arbitrary (not-noise-predicting)
        // function standing in for the model; the trajectory must stay
        // finite thanks to clamping.
        let s = NoiseSchedule::new(8).unwrap();
        let mut rng = DetRng::new(4);
        let mut x = Tensor::randn([10, 4], &mut rng);
        for k in 0..s.steps() {
            let eps = x.map(|v| (v * 1.3).sin());
            x = ddim_step(&x, &eps, s.abar(k), s.abar_next(k)).unwrap();
        }
        assert!(x.data().iter().all(|v| v.is_finite()));
        assert!(x.norm() < 1e3);
    }
}
