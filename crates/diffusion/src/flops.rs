//! Analytic FLOP accounting (Table 1 of the paper).
//!
//! These formulas drive both the Table 1 verification bench and the
//! serving cost models in `fps-serving`. They count multiply-add pairs
//! as 2 FLOPs and cover the three computation families Table 1 analyzes:
//! linear projections (`XW`), feed-forward (`(XW₁)W₂`), and attention
//! score/value products (`QKᵀ`, `AV`).

use crate::config::{Architecture, ModelConfig};

/// Fraction of a UNet model's per-step compute spent in transformer
/// blocks (paper §2.1 footnote: ~82% for SDXL-class UNets). The
/// remainder is convolutional scaffolding that mask-aware computation
/// does not touch.
pub const UNET_TRANSFORMER_FRACTION: f64 = 0.82;

/// FLOPs of one transformer block computing `q_tokens` query rows
/// against `kv_tokens` key/value rows, with the K/V projections
/// evaluated over `kv_proj_tokens` rows, for batch size 1.
///
/// The three token counts distinguish the computation modes of §3.1:
///
/// - full computation: `(L, L, L)`;
/// - FlashPS Y-variant: `(mL, L, L)` — masked queries attend over
///   full-length keys/values recomputed from the replenished rows
///   (the paper's LLM-decoding analogy);
/// - FlashPS K/V-variant: `(mL, L, mL)` — full-length K/V come from
///   the cache, only masked rows are refreshed;
/// - FISEdit-style masked-only: `(mL, mL, mL)`.
///
/// Covers self-attention (QKV projections, scores, values, output
/// projection), cross-attention over `prompt_tokens`, and the
/// feed-forward network. Normalizations and activations are counted at
/// a small linear term.
pub fn block_flops(
    cfg: &ModelConfig,
    q_tokens: usize,
    kv_tokens: usize,
    kv_proj_tokens: usize,
) -> u64 {
    let h = cfg.hidden as u64;
    let p = cfg.prompt_tokens as u64;
    let q = q_tokens as u64;
    let kv = kv_tokens as u64;
    let ffn = cfg.ffn_mult as u64;

    // Self-attention.
    let q_proj = 2 * q * h * h;
    let kv_proj = 2 * 2 * (kv_proj_tokens as u64) * h * h;
    let scores = 2 * q * kv * h;
    let values = 2 * q * kv * h;
    let out_proj = 2 * q * h * h;
    // Cross-attention to the prompt (query side only scales with q).
    let x_q = 2 * q * h * h;
    let x_kv = 2 * 2 * p * h * h;
    let x_scores = 2 * q * p * h;
    let x_values = 2 * q * p * h;
    let x_out = 2 * q * h * h;
    // Feed-forward: two linear layers through the expanded dimension.
    let ff = 2 * 2 * q * h * (ffn * h);
    // Token-wise norms/activations, small but non-zero.
    let pointwise = 10 * q * h;

    q_proj
        + kv_proj
        + scores
        + values
        + out_proj
        + x_q
        + x_kv
        + x_scores
        + x_values
        + x_out
        + ff
        + pointwise
}

/// Rounds a mask ratio to a masked-token count, clamped to `[1, L]` so a
/// non-empty edit always computes at least one token.
pub fn masked_tokens(cfg: &ModelConfig, mask_ratio: f64) -> usize {
    let l = cfg.tokens();
    ((mask_ratio.clamp(0.0, 1.0) * l as f64).round() as usize).clamp(1, l)
}

/// Applies the UNet convolutional-scaffold overhead: transformer FLOPs
/// are ~82% of a UNet's step, so total = transformer / 0.82. DiT models
/// are pure transformer stacks.
fn apply_arch_overhead(cfg: &ModelConfig, transformer_flops: u64) -> u64 {
    match cfg.arch {
        Architecture::UNet => (transformer_flops as f64 / UNET_TRANSFORMER_FRACTION) as u64,
        Architecture::Dit => transformer_flops,
    }
}

/// FLOPs of one full (mask-agnostic) denoising step for a batch.
pub fn step_flops_full(cfg: &ModelConfig, batch: usize) -> u64 {
    let l = cfg.tokens();
    let per_item = cfg.blocks as u64 * block_flops(cfg, l, l, l);
    apply_arch_overhead(cfg, per_item) * batch as u64
}

/// FLOPs of one mask-aware step with the Y-caching variant: masked
/// queries attend over full-length keys/values recomputed from the
/// cache-replenished rows.
pub fn step_flops_masked_y(cfg: &ModelConfig, batch: usize, mask_ratio: f64) -> u64 {
    let ml = masked_tokens(cfg, mask_ratio);
    let l = cfg.tokens();
    let per_item = cfg.blocks as u64 * block_flops(cfg, ml, l, l);
    apply_arch_overhead(cfg, per_item) * batch as u64
}

/// FLOPs of one mask-aware step with the K/V-caching variant: masked
/// queries attend over full-length *cached* keys/values, so only the
/// masked rows' K/V are recomputed (the 10% latency saving of §3.1).
pub fn step_flops_masked_kv(cfg: &ModelConfig, batch: usize, mask_ratio: f64) -> u64 {
    let ml = masked_tokens(cfg, mask_ratio);
    let per_item = cfg.blocks as u64 * block_flops(cfg, ml, cfg.tokens(), ml);
    apply_arch_overhead(cfg, per_item) * batch as u64
}

/// FLOPs of one FISEdit-style masked-only step: masked tokens attend
/// only among themselves, with no cache at all.
pub fn step_flops_masked_only(cfg: &ModelConfig, batch: usize, mask_ratio: f64) -> u64 {
    let ml = masked_tokens(cfg, mask_ratio);
    let per_item = cfg.blocks as u64 * block_flops(cfg, ml, ml, ml);
    apply_arch_overhead(cfg, per_item) * batch as u64
}

/// FLOPs of one step under a mixed plan: blocks with `use_cache[i]`
/// run the mask-aware variant (`kv` selects Y or K/V caching); other
/// blocks compute all tokens.
pub fn step_flops_plan(
    cfg: &ModelConfig,
    batch: usize,
    mask_ratio: f64,
    use_cache: &[bool],
    kv: bool,
) -> u64 {
    let l = cfg.tokens();
    let ml = masked_tokens(cfg, mask_ratio);
    let cached = if kv {
        block_flops(cfg, ml, l, ml)
    } else {
        block_flops(cfg, ml, l, l)
    };
    let full = block_flops(cfg, l, l, l);
    let per_item: u64 = use_cache
        .iter()
        .map(|&c| if c { cached } else { full })
        .sum();
    apply_arch_overhead(cfg, per_item) * batch as u64
}

/// FLOPs of one mask-sparse GEMM (`[m×k] · [k×n]` with only the
/// mask's rows computed): the dense multiply-add cost of the active
/// rows, the gather/scatter traffic that moves them in and out of the
/// packed operand (`active · (k + n)` element copies, counted as one
/// op each), plus the template replenishment of the inactive rows
/// (`(m − active) · n` copies) — so the estimate, like the kernel, has
/// a small output-sized floor instead of vanishing at ratio 0.
///
/// This is the estimator the kernel benchmark checks measured sparse
/// wall time against: across the mask-ratio sweep, measured time must
/// track `sparse_gemm_flops(r) / sparse_gemm_flops(1.0)` within 2×.
pub fn sparse_gemm_flops(m: usize, k: usize, n: usize, mask_ratio: f64) -> u64 {
    let active = ((mask_ratio.clamp(0.0, 1.0) * m as f64).round() as usize).min(m) as u64;
    let inactive = m as u64 - active;
    2 * active * k as u64 * n as u64 + active * (k as u64 + n as u64) + inactive * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_step_is_linear_in_batch() {
        let cfg = ModelConfig::sdxl_like();
        assert_eq!(step_flops_full(&cfg, 4), 4 * step_flops_full(&cfg, 1));
    }

    #[test]
    fn masked_flops_scale_roughly_with_ratio() {
        // Table 1: per-operator speedup is 1/m for query-side ops. The
        // Y-variant step keeps the full-length K/V projection (the
        // price of full attention context), so its cost is m of the
        // query-side work plus that constant.
        let cfg = ModelConfig::flux_like();
        let full = step_flops_full(&cfg, 1) as f64;
        for m in [0.1, 0.2, 0.5] {
            let masked = step_flops_masked_y(&cfg, 1, m) as f64;
            let frac = masked / full;
            assert!(frac < m * 1.3 + 0.3, "m={m}: frac={frac}");
            assert!(frac > m * 0.5, "m={m}: frac={frac}");
            // Masked-only drops the K/V constant too and is cheaper.
            assert!(step_flops_masked_only(&cfg, 1, m) < masked as u64);
        }
    }

    #[test]
    fn kv_variant_costs_less_than_y_variant() {
        // §3.1: caching K/V removes the full-length K/V recompute,
        // cutting latency ~10% at m = 0.2 (for 2× the cache bytes).
        let cfg = ModelConfig::flux_like();
        for m in [0.1, 0.3, 0.6] {
            assert!(
                step_flops_masked_kv(&cfg, 1, m) < step_flops_masked_y(&cfg, 1, m),
                "m={m}"
            );
        }
        // The saving is modest (order 10%), not dramatic.
        let y = step_flops_masked_y(&cfg, 1, 0.2) as f64;
        let kv = step_flops_masked_kv(&cfg, 1, 0.2) as f64;
        let saving = 1.0 - kv / y;
        assert!(saving > 0.02 && saving < 0.5, "saving {saving}");
    }

    #[test]
    fn sparse_gemm_flops_scale_with_ratio() {
        let (m, k, n) = (256, 64, 256);
        let dense = 2 * (m * k * n) as u64;
        let full = sparse_gemm_flops(m, k, n, 1.0);
        // Full mask is dense compute plus the gather/scatter traffic —
        // no inactive rows, so no template term.
        assert_eq!(full, dense + (m * (k + n)) as u64);
        let mut prev = 0;
        for r in [0.05, 0.10, 0.25, 0.50] {
            let f = sparse_gemm_flops(m, k, n, r);
            assert!(f > prev, "monotone in ratio");
            let frac = f as f64 / full as f64;
            assert!((frac - r).abs() < 0.02, "r={r}: frac={frac}");
            prev = f;
        }
        // Ratio 0 leaves the output-sized template-copy floor.
        assert_eq!(sparse_gemm_flops(m, k, n, 0.0), (m * n) as u64);
        // Degenerate ratios clamp instead of panicking.
        assert_eq!(sparse_gemm_flops(m, k, n, -3.0), (m * n) as u64);
        assert_eq!(sparse_gemm_flops(m, k, n, 7.0), full);
        assert_eq!(sparse_gemm_flops(0, k, n, 0.5), 0);
    }

    #[test]
    fn mask_ratio_one_matches_full_transformer_cost() {
        let cfg = ModelConfig::flux_like();
        // At m = 1 every token is masked; the Y variant degenerates to a
        // full computation.
        assert_eq!(step_flops_masked_y(&cfg, 1, 1.0), step_flops_full(&cfg, 1));
    }

    #[test]
    fn plan_interpolates_between_extremes() {
        let cfg = ModelConfig::sdxl_like();
        let all_cached = vec![true; cfg.blocks];
        let none_cached = vec![false; cfg.blocks];
        let m = 0.2;
        assert_eq!(
            step_flops_plan(&cfg, 1, m, &all_cached, false),
            step_flops_masked_y(&cfg, 1, m)
        );
        assert_eq!(
            step_flops_plan(&cfg, 1, m, &all_cached, true),
            step_flops_masked_kv(&cfg, 1, m)
        );
        assert_eq!(
            step_flops_plan(&cfg, 1, m, &none_cached, false),
            step_flops_full(&cfg, 1)
        );
        let mut mixed = vec![false; cfg.blocks];
        mixed[0] = true;
        let v = step_flops_plan(&cfg, 1, m, &mixed, false);
        assert!(v < step_flops_full(&cfg, 1));
        assert!(v > step_flops_masked_y(&cfg, 1, m));
    }

    #[test]
    fn unet_overhead_applied() {
        let mut cfg = ModelConfig::flux_like();
        let dit = step_flops_full(&cfg, 1);
        cfg.arch = Architecture::UNet;
        let unet = step_flops_full(&cfg, 1);
        assert!(unet > dit);
        let ratio = unet as f64 / dit as f64;
        assert!((ratio - 1.0 / UNET_TRANSFORMER_FRACTION).abs() < 0.01);
    }

    #[test]
    fn masked_tokens_clamps() {
        let cfg = ModelConfig::tiny();
        assert_eq!(masked_tokens(&cfg, 0.0), 1);
        assert_eq!(masked_tokens(&cfg, 1.0), cfg.tokens());
        assert_eq!(masked_tokens(&cfg, 2.0), cfg.tokens());
        assert_eq!(masked_tokens(&cfg, 0.5), cfg.tokens() / 2);
    }

    #[test]
    fn paper_sdxl_step_flops_are_tflop_scale() {
        // Sanity: the paper cites 676 TFLOPs for a 50-step SDXL
        // generation, i.e. ~13.5 TFLOPs per step. Our analytic config
        // should land within a small factor of that.
        let cfg = ModelConfig::paper_sdxl();
        let tflops = step_flops_full(&cfg, 1) as f64 / 1e12;
        assert!(tflops > 2.0 && tflops < 60.0, "got {tflops} TFLOPs");
    }
}
