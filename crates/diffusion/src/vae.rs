//! Patch VAE: a linear encoder/decoder between pixel space and latent
//! tokens.
//!
//! Real latent diffusion models use a convolutional VAE; this substrate
//! uses a linear orthonormal patch projection instead. Each
//! `patch × patch` pixel block maps to one latent token of
//! `latent_channels` values via a matrix with orthonormal rows, so
//! `decode(encode(x))` is an exact orthogonal projection — the unmasked
//! region of a template survives an encode/decode round trip with low
//! distortion, which is the property the editing experiments rely on.

use fps_tensor::rng::DetRng;
use fps_tensor::{pool, scratch, Tensor};

use crate::config::ModelConfig;
use crate::error::DiffusionError;
use crate::image::Image;
use crate::Result;

/// Linear patch encoder/decoder derived deterministically from the model
/// config.
#[derive(Debug, Clone)]
pub struct PatchVae {
    /// `[latent_channels, patch * patch * 3]`, orthonormal rows.
    enc: Tensor,
    patch: usize,
    latent_h: usize,
    latent_w: usize,
    latent_channels: usize,
}

impl PatchVae {
    /// Builds the VAE for a model config.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidConfig`] when the latent channel
    /// count exceeds the patch dimensionality (orthonormal rows would
    /// not exist).
    pub fn new(cfg: &ModelConfig) -> Result<Self> {
        let p = cfg.patch * cfg.patch * 3;
        let c = cfg.latent_channels;
        if c > p {
            return Err(DiffusionError::InvalidConfig {
                reason: format!("latent_channels ({c}) exceeds patch dimensionality ({p})"),
            });
        }
        let mut rng = DetRng::new(cfg.weight_seed ^ 0x7AE0_11AE);
        let enc = orthonormal_rows(c, p, &mut rng)?;
        Ok(Self {
            enc,
            patch: cfg.patch,
            latent_h: cfg.latent_h,
            latent_w: cfg.latent_w,
            latent_channels: c,
        })
    }

    /// Encodes an image into latent tokens of shape
    /// `[latent_h * latent_w, latent_channels]`, row-major over the
    /// latent grid.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::ImageShapeMismatch`] when the image
    /// does not match the model's pixel dimensions.
    pub fn encode(&self, img: &Image) -> Result<Tensor> {
        let (ph, pw) = (self.latent_h * self.patch, self.latent_w * self.patch);
        if img.height() != ph || img.width() != pw {
            return Err(DiffusionError::ImageShapeMismatch {
                expected: (ph, pw),
                actual: (img.height(), img.width()),
            });
        }
        let l = self.latent_h * self.latent_w;
        let mut out = scratch::take(l * self.latent_channels);
        let pdim = self.patch * self.patch * 3;
        // Parallel over latent tokens; each token's projection is
        // independent and its reduction order matches the serial loop,
        // so the result is bitwise identical on every compute path.
        pool::for_each_row_chunk(
            &mut out,
            l,
            self.latent_channels,
            2 * pdim * self.latent_channels,
            pool::KernelClass::Gemm,
            |r0, chunk| {
                let mut patch_buf = scratch::take(pdim);
                for (i, orow) in chunk.chunks_exact_mut(self.latent_channels).enumerate() {
                    let tok = r0 + i;
                    self.read_patch(
                        img,
                        tok / self.latent_w,
                        tok % self.latent_w,
                        &mut patch_buf,
                    );
                    for (c, o) in orow.iter_mut().enumerate() {
                        let erow = &self.enc.data()[c * pdim..(c + 1) * pdim];
                        *o = erow
                            .iter()
                            .zip(patch_buf.iter())
                            .map(|(&e, &x)| e * x)
                            .sum();
                    }
                }
                scratch::give(patch_buf);
            },
        );
        Ok(Tensor::from_vec(out, [l, self.latent_channels])?)
    }

    /// Decodes latent tokens back to an image (transpose of the
    /// encoder).
    ///
    /// # Errors
    ///
    /// Returns an error when the latent token count or channel width
    /// disagrees with the config.
    pub fn decode(&self, latent: &Tensor) -> Result<Image> {
        let l = self.latent_h * self.latent_w;
        if latent.rank() != 2 || latent.dims()[0] != l || latent.dims()[1] != self.latent_channels {
            return Err(DiffusionError::InvalidConfig {
                reason: format!(
                    "latent shape {:?} does not match [{l}, {}]",
                    latent.dims(),
                    self.latent_channels
                ),
            });
        }
        let pdim = self.patch * self.patch * 3;
        let mut img = Image::zeros(self.latent_h * self.patch, self.latent_w * self.patch);
        // Accumulate all token patches into a flat `[l, pdim]` buffer in
        // parallel (pixels of different tokens interleave in the image,
        // so the image itself is written serially afterwards).
        let mut patches = scratch::take(l * pdim);
        pool::for_each_row_chunk(
            &mut patches,
            l,
            pdim,
            2 * pdim * self.latent_channels,
            pool::KernelClass::Gemm,
            |r0, chunk| {
                for (i, pbuf) in chunk.chunks_exact_mut(pdim).enumerate() {
                    let tok = r0 + i;
                    let trow = &latent.data()
                        [tok * self.latent_channels..(tok + 1) * self.latent_channels];
                    for (c, &tv) in trow.iter().enumerate() {
                        let erow = &self.enc.data()[c * pdim..(c + 1) * pdim];
                        for (pb, &e) in pbuf.iter_mut().zip(erow.iter()) {
                            *pb += tv * e;
                        }
                    }
                }
            },
        );
        for tok in 0..l {
            self.write_patch(
                &mut img,
                tok / self.latent_w,
                tok % self.latent_w,
                &patches[tok * pdim..(tok + 1) * pdim],
            );
        }
        scratch::give(patches);
        Ok(img)
    }

    fn read_patch(&self, img: &Image, ty: usize, tx: usize, buf: &mut [f32]) {
        let mut k = 0;
        for dy in 0..self.patch {
            for dx in 0..self.patch {
                let px = img
                    .pixel(ty * self.patch + dy, tx * self.patch + dx)
                    .unwrap_or([0.0; 3]);
                buf[k..k + 3].copy_from_slice(&px);
                k += 3;
            }
        }
    }

    fn write_patch(&self, img: &mut Image, ty: usize, tx: usize, buf: &[f32]) {
        let mut k = 0;
        for dy in 0..self.patch {
            for dx in 0..self.patch {
                img.set_pixel(
                    ty * self.patch + dy,
                    tx * self.patch + dx,
                    [buf[k], buf[k + 1], buf[k + 2]],
                );
                k += 3;
            }
        }
    }
}

/// Builds a `[rows, cols]` matrix with orthonormal rows via Gram-Schmidt
/// on random Gaussian vectors.
fn orthonormal_rows(rows: usize, cols: usize, rng: &mut DetRng) -> Result<Tensor> {
    let mut basis: Vec<Vec<f32>> = Vec::with_capacity(rows);
    let mut attempts = 0;
    while basis.len() < rows {
        attempts += 1;
        if attempts > rows * 20 {
            return Err(DiffusionError::InvalidConfig {
                reason: "failed to build an orthonormal basis".into(),
            });
        }
        let mut v: Vec<f32> = (0..cols).map(|_| rng.normal()).collect();
        for b in &basis {
            let dot: f32 = v.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
            for (vi, &bi) in v.iter_mut().zip(b.iter()) {
                *vi -= dot * bi;
            }
        }
        let norm: f32 = v.iter().map(|&x| x * x).sum::<f32>().sqrt();
        if norm < 1e-4 {
            continue; // Degenerate draw; retry.
        }
        for vi in &mut v {
            *vi /= norm;
        }
        basis.push(v);
    }
    let data: Vec<f32> = basis.into_iter().flatten().collect();
    Ok(Tensor::from_vec(data, [rows, cols])?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_rows_are_orthonormal() {
        let cfg = ModelConfig::tiny();
        let vae = PatchVae::new(&cfg).unwrap();
        let e = &vae.enc;
        let c = cfg.latent_channels;
        let pdim = cfg.patch * cfg.patch * 3;
        for i in 0..c {
            for j in 0..c {
                let dot: f32 = (0..pdim)
                    .map(|k| e.data()[i * pdim + k] * e.data()[j * pdim + k])
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-4, "rows {i},{j}: {dot}");
            }
        }
    }

    #[test]
    fn encode_decode_is_projection() {
        // decode(encode(x)) is idempotent: applying it twice equals
        // applying it once (orthogonal projection).
        let cfg = ModelConfig::sd21_like();
        let vae = PatchVae::new(&cfg).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 3);
        let once = vae.decode(&vae.encode(&img).unwrap()).unwrap();
        let twice = vae.decode(&vae.encode(&once).unwrap()).unwrap();
        assert!(once.mse(&twice).unwrap() < 1e-8);
    }

    #[test]
    fn latent_shape_matches_config() {
        let cfg = ModelConfig::tiny();
        let vae = PatchVae::new(&cfg).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 1);
        let z = vae.encode(&img).unwrap();
        assert_eq!(z.dims(), &[cfg.tokens(), cfg.latent_channels]);
    }

    #[test]
    fn rejects_wrong_image_and_latent_shapes() {
        let cfg = ModelConfig::tiny();
        let vae = PatchVae::new(&cfg).unwrap();
        let img = Image::zeros(3, 3);
        assert!(vae.encode(&img).is_err());
        let bad = Tensor::zeros([cfg.tokens(), cfg.latent_channels + 1]);
        assert!(vae.decode(&bad).is_err());
    }

    #[test]
    fn rejects_overfull_latent_channels() {
        let mut cfg = ModelConfig::tiny();
        cfg.latent_channels = cfg.patch * cfg.patch * 3 + 1;
        assert!(PatchVae::new(&cfg).is_err());
    }

    #[test]
    fn encode_is_spatially_local() {
        // Changing a pixel inside one patch only changes that patch's
        // token — the locality that lets pixel masks map to token masks.
        let cfg = ModelConfig::tiny();
        let vae = PatchVae::new(&cfg).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 5);
        let mut edited = img.clone();
        edited.set_pixel(0, 0, [1.0, 0.0, 1.0]);
        let za = vae.encode(&img).unwrap();
        let zb = vae.encode(&edited).unwrap();
        for tok in 0..cfg.tokens() {
            let differs = za
                .row(tok)
                .unwrap()
                .iter()
                .zip(zb.row(tok).unwrap().iter())
                .any(|(&a, &b)| (a - b).abs() > 1e-7);
            if tok == 0 {
                assert!(differs, "token 0 should change");
            } else {
                assert!(!differs, "token {tok} should not change");
            }
        }
    }
}
