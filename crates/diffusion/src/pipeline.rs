//! End-to-end image editing pipeline: encode → denoise (under a serving
//! strategy) → decode.

use fps_tensor::ops::sparse::SparsePlan;
use fps_tensor::rng::{hash_bytes, DetRng};
use fps_tensor::Tensor;
use fps_trace::{Clock, TraceSink, Track};

use crate::cache::TemplateCache;
use crate::config::{Architecture, ModelConfig};
use crate::embedding::embed_prompt;
use crate::error::DiffusionError;
use crate::flops;
use crate::image::Image;
use crate::model::{DiffusionModel, StepPlan};
use crate::sampler::{ddim_step, inpaint_blend, noise_to_level, NoiseSchedule};
use crate::vae::PatchVae;
use crate::Result;

/// The serving strategies the paper evaluates, expressed as compute
/// plans over the same model.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Full-image regeneration at every step (the Diffusers baseline).
    FullRecompute,
    /// FlashPS mask-aware editing: blocks with `use_cache[i] == true`
    /// compute masked tokens only and replenish unmasked rows from the
    /// template cache; others compute in full. `kv` selects the Fig. 7
    /// cached-K/V variant for the cached blocks.
    MaskAware {
        /// Algorithm 1's per-block decision (length = model blocks).
        use_cache: Vec<bool>,
        /// Use the cached-K/V attention variant instead of cached-Y.
        kv: bool,
    },
    /// FISEdit-style sparse editing: masked tokens only, every block, no
    /// cache and hence no cross-region attention.
    MaskedOnly,
    /// TeaCache-style step skipping: reuse the previous step's noise
    /// prediction while the accumulated timestep-embedding drift stays
    /// below `threshold`.
    StepSkip {
        /// Relative-drift accumulation threshold; larger skips more
        /// steps (faster, lower fidelity).
        threshold: f32,
    },
    /// Generate the masked region with no template context at all and
    /// paste it back (the distorted rightmost example of Fig. 1).
    NaiveDisregard,
}

impl Strategy {
    /// Short human-readable label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Self::FullRecompute => "diffusers",
            Self::MaskAware { kv: false, .. } => "flashps",
            Self::MaskAware { kv: true, .. } => "flashps-kv",
            Self::MaskedOnly => "fisedit",
            Self::StepSkip { .. } => "teacache",
            Self::NaiveDisregard => "naive",
        }
    }
}

/// Classifier-free guidance configuration.
///
/// Production pipelines run two conditioning passes per step — one on
/// the prompt, one on a negative prompt — and extrapolate:
/// `eps = eps_neg + scale · (eps_cond − eps_neg)`. Guidance doubles the
/// per-step compute, which the FLOP accounting reflects.
#[derive(Debug, Clone, PartialEq)]
pub struct Guidance {
    /// Guidance scale (> 1 amplifies the prompt; 1.0 disables).
    pub scale: f32,
    /// Negative prompt (often empty).
    pub negative_prompt: String,
}

impl Guidance {
    /// Standard guidance at the given scale with an empty negative
    /// prompt.
    pub fn cfg(scale: f32) -> Self {
        Self {
            scale,
            negative_prompt: String::new(),
        }
    }
}

/// Result of one edit, with compute accounting.
#[derive(Debug, Clone)]
pub struct EditOutput {
    /// The edited image.
    pub image: Image,
    /// The final clean latent.
    pub latent: Tensor,
    /// Denoising steps that executed model computation.
    pub steps_computed: usize,
    /// Denoising steps skipped by step-skipping strategies.
    pub steps_skipped: usize,
    /// Total transformer FLOPs spent (per the Table 1 accounting).
    pub flops: u64,
}

/// An in-flight incremental edit: per-request denoising state that a
/// serving system advances one step at a time.
#[derive(Debug, Clone)]
pub struct EditSession {
    template: Image,
    z_template: Tensor,
    template_noise: Tensor,
    prompt_emb: Tensor,
    masked_idx: Vec<usize>,
    /// The mask-derived token plan, built once at `begin` and reused by
    /// every denoising step (grid-aware for UNet models so the sparse
    /// compute path can dilate the conv mask).
    plan: std::sync::Arc<SparsePlan>,
    strategy: Strategy,
    /// Negative-prompt embedding and scale when guidance is active.
    guidance: Option<(Tensor, f32)>,
    x: Tensor,
    step: usize,
    total_steps: usize,
    steps_computed: usize,
    steps_skipped: usize,
    flops: u64,
    // TeaCache state.
    prev_eps: Option<Tensor>,
    last_computed_t: Option<f32>,
    drift_acc: f32,
}

impl EditSession {
    /// Whether every denoising step has executed.
    pub fn is_done(&self) -> bool {
        self.step >= self.total_steps
    }

    /// Steps executed so far.
    pub fn step_index(&self) -> usize {
        self.step
    }

    /// Total steps of the schedule.
    pub fn total_steps(&self) -> usize {
        self.total_steps
    }

    /// Steps still to run.
    pub fn steps_left(&self) -> usize {
        self.total_steps - self.step
    }

    /// The session's mask ratio (masked tokens / total tokens).
    pub fn mask_ratio(&self) -> f64 {
        if self.z_template.dims()[0] == 0 {
            return 0.0;
        }
        self.masked_idx.len() as f64 / self.z_template.dims()[0] as f64
    }

    /// The serving strategy of this session.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The session's mask-derived sparse compute plan.
    pub fn sparse_plan(&self) -> &SparsePlan {
        &self.plan
    }

    /// Which pipeline stage this session is at: [`begin`] already ran
    /// (encode is never observable on a live session), so the session
    /// is denoising until its last step executes, then ready for
    /// decode. Stage-graph executors use this to place a session in
    /// the right pool.
    ///
    /// [`begin`]: EditPipeline::begin
    pub fn stage(&self) -> PipelineStage {
        if self.is_done() {
            PipelineStage::Decode
        } else {
            PipelineStage::Denoise
        }
    }
}

/// The disaggregation split points of [`EditPipeline`]: the session
/// API's three seams, each independently schedulable by a stage-graph
/// executor. [`EditPipeline::begin`] / [`EditPipeline::begin_guided`]
/// are the whole of [`PipelineStage::Encode`] (prompt embedding +
/// latent setup), [`EditPipeline::step`] advances
/// [`PipelineStage::Denoise`] one step at a time, and
/// [`EditPipeline::finish`] is [`PipelineStage::Decode`] (VAE +
/// paste-back). Outputs are a function of the session state alone, so
/// *where* each seam runs — one thread, one pool per stage, one
/// machine per stage — never changes the bytes produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// Session setup: prompt embedding, template latents, noise init.
    Encode,
    /// Iterative denoising under the serving strategy.
    Denoise,
    /// VAE decode and inpaint paste-back.
    Decode,
}

impl PipelineStage {
    /// Short label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::Encode => "encode",
            Self::Denoise => "denoise",
            Self::Decode => "decode",
        }
    }
}

/// The editing pipeline: model + VAE + schedule.
#[derive(Debug, Clone)]
pub struct EditPipeline {
    model: DiffusionModel,
    vae: PatchVae,
    schedule: NoiseSchedule,
    /// Wall-clock trace sink for pipeline stages (session setup, each
    /// denoising step, VAE decode). Meant for direct single-threaded
    /// API use; multi-worker servers keep their own per-worker spans.
    trace: TraceSink,
    trace_track: Track,
}

impl EditPipeline {
    /// Builds the pipeline for a model config.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidConfig`] for inconsistent
    /// configs.
    pub fn new(cfg: &ModelConfig) -> Result<Self> {
        Ok(Self {
            model: DiffusionModel::new(cfg)?,
            vae: PatchVae::new(cfg)?,
            schedule: NoiseSchedule::new(cfg.steps)?,
            trace: TraceSink::disabled(),
            trace_track: Track::default(),
        })
    }

    /// Attaches a wall-clock trace sink; `begin`/`step`/`finish` emit
    /// `pipeline`-category spans on `track`.
    ///
    /// # Panics
    ///
    /// Panics on a virtual-clock sink: the pipeline does real compute
    /// and timestamps with real time.
    pub fn set_trace_sink(&mut self, sink: TraceSink, track: Track) {
        assert_ne!(
            sink.clock(),
            Some(Clock::Virtual),
            "EditPipeline stages run on the wall clock; use \
             TraceSink::recording(Clock::Wall)"
        );
        sink.name_track(track, "pipeline");
        self.trace = sink;
        self.trace_track = track;
    }

    /// Enables (or disables) per-kernel tracing: every tensor kernel
    /// invocation (`matmul`, `softmax_rows`, `conv3x3`, …) emits a
    /// `kernel`-category span into this pipeline's trace sink on the
    /// pipeline's track. Off by default — kernel spans are high-volume
    /// and cost one timestamp pair per op.
    ///
    /// The kernel observer is process-global (the tensor crate knows
    /// nothing about traces), so enable it on one pipeline at a time;
    /// disabling clears the global observer.
    pub fn trace_kernels(&self, enabled: bool) {
        if !enabled {
            fps_tensor::ktrace::set_observer(None);
            return;
        }
        let sink = self.trace.clone();
        let track = self.trace_track;
        fps_tensor::ktrace::set_observer(Some(std::sync::Arc::new(
            move |ev: &fps_tensor::ktrace::KernelEvent| {
                let s = sink.instant_ns(ev.start);
                let e = sink.instant_ns(ev.end);
                let mut args = vec![("path", fps_json::Json::Str(ev.path.to_string()))];
                if let Some(r) = ev.mask_ratio {
                    args.push(("mask_ratio", fps_json::Json::F64(f64::from(r))));
                }
                sink.span_at(ev.name, "kernel", track, s, e, 0, args);
            },
        )));
    }

    /// Returns the model config.
    pub fn config(&self) -> &ModelConfig {
        self.model.config()
    }

    /// Returns the underlying denoiser (for probes and analyses).
    pub fn model(&self) -> &DiffusionModel {
        &self.model
    }

    /// Returns the VAE.
    pub fn vae(&self) -> &PatchVae {
        &self.vae
    }

    /// Returns the noise schedule.
    pub fn schedule(&self) -> &NoiseSchedule {
        &self.schedule
    }

    /// The fixed per-template noise shared by priming and every edit of
    /// the template — what makes cached activations consistent across
    /// requests.
    fn template_noise(&self, template_id: u64) -> Tensor {
        let cfg = self.model.config();
        let seed = hash_bytes(&template_id.to_le_bytes(), cfg.weight_seed ^ 0x7E3D);
        Tensor::randn([cfg.tokens(), cfg.latent_channels], &mut DetRng::new(seed))
    }

    /// Primes the activation cache for a template: runs the full model
    /// at every denoising step on the re-noised template latent and
    /// captures per-block activations (§2.2 "reusability of the
    /// templates" — in production the first inference on a template
    /// plays this role).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from a template that does not match the
    /// model's pixel dimensions.
    pub fn prime(
        &self,
        template: &Image,
        template_id: u64,
        capture_kv: bool,
    ) -> Result<TemplateCache> {
        let cfg = self.model.config();
        let z = self.vae.encode(template)?;
        let noise = self.template_noise(template_id);
        let prompt = embed_prompt(cfg, ""); // Priming is unconditional.
        let mut cache = TemplateCache::new(template_id, cfg.tokens(), cfg.hidden);
        for k in 0..self.schedule.steps() {
            let x = noise_to_level(&z, &noise, self.schedule.abar(k))?;
            let (_, step) =
                self.model
                    .predict_full(&x, self.schedule.t_norm(k), &prompt, capture_kv)?;
            cache.push_step(step);
        }
        Ok(cache)
    }

    /// Edits a template: generates the masked tokens under `strategy`
    /// while preserving unmasked content.
    ///
    /// `masked_idx` lists the latent-token indices to regenerate;
    /// `seed` drives the per-request initial noise; `cache` must be the
    /// template's primed cache for the mask-aware strategies and may be
    /// `None` otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidPlan`] for strategy/plan
    /// mismatches, [`DiffusionError::CacheMiss`] when a mask-aware
    /// strategy lacks cache entries, and propagates shape errors.
    /// Edits a template: generates the masked tokens under `strategy`
    /// while preserving unmasked content.
    ///
    /// Convenience wrapper over [`EditPipeline::begin`] /
    /// [`EditPipeline::step`] / [`EditPipeline::finish`], running every
    /// denoising step back-to-back. Serving systems that interleave
    /// requests (continuous batching) drive the session API directly.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidPlan`] for strategy/plan
    /// mismatches, [`DiffusionError::CacheMiss`] when a mask-aware
    /// strategy lacks cache entries, and propagates shape errors.
    #[allow(clippy::too_many_arguments)]
    pub fn edit(
        &self,
        template: &Image,
        template_id: u64,
        masked_idx: &[usize],
        prompt: &str,
        seed: u64,
        strategy: &Strategy,
        cache: Option<&TemplateCache>,
    ) -> Result<EditOutput> {
        let mut session = self.begin(
            template,
            template_id,
            masked_idx,
            prompt,
            seed,
            strategy.clone(),
        )?;
        while !session.is_done() {
            self.step(&mut session, cache)?;
        }
        self.finish(session)
    }

    /// Starts an incremental editing session (one denoising step at a
    /// time) — the primitive continuous batching schedules around
    /// (§4.3: "new requests can join the batch in just one step").
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::MaskLengthMismatch`] for out-of-range
    /// mask tokens and [`DiffusionError::InvalidPlan`] for malformed
    /// mask-aware plans.
    pub fn begin(
        &self,
        template: &Image,
        template_id: u64,
        masked_idx: &[usize],
        prompt: &str,
        seed: u64,
        strategy: Strategy,
    ) -> Result<EditSession> {
        self.begin_guided(
            template,
            template_id,
            masked_idx,
            prompt,
            seed,
            strategy,
            None,
        )
    }

    /// [`EditPipeline::begin`] with optional classifier-free guidance.
    ///
    /// # Errors
    ///
    /// As [`EditPipeline::begin`].
    #[allow(clippy::too_many_arguments)]
    pub fn begin_guided(
        &self,
        template: &Image,
        template_id: u64,
        masked_idx: &[usize],
        prompt: &str,
        seed: u64,
        strategy: Strategy,
        guidance: Option<Guidance>,
    ) -> Result<EditSession> {
        let mut span = self
            .trace
            .start("pipeline_begin", "pipeline", self.trace_track, 0);
        span.arg("template", template_id);
        let cfg = self.model.config().clone();
        if let Some(&bad) = masked_idx.iter().find(|&&i| i >= cfg.tokens()) {
            return Err(DiffusionError::MaskLengthMismatch {
                expected: cfg.tokens(),
                actual: bad + 1,
            });
        }
        if let Strategy::MaskAware { use_cache, .. } = &strategy {
            if use_cache.len() != cfg.blocks {
                return Err(DiffusionError::InvalidPlan {
                    reason: format!(
                        "use_cache has {} entries for {} blocks",
                        use_cache.len(),
                        cfg.blocks
                    ),
                });
            }
        }
        let z_template = self.vae.encode(template)?;
        let template_noise = self.template_noise(template_id);
        let prompt_emb = embed_prompt(&cfg, prompt);
        let req_seed = hash_bytes(prompt.as_bytes(), seed ^ 0xED17);
        let req_noise = Tensor::randn(
            [cfg.tokens(), cfg.latent_channels],
            &mut DetRng::new(req_seed),
        );

        // Initial latent: re-noised template, masked rows replaced with
        // request noise (naive disregard starts from pure noise with no
        // template at all).
        let x = if matches!(strategy, Strategy::NaiveDisregard) {
            req_noise
        } else {
            let mut x = noise_to_level(&z_template, &template_noise, self.schedule.abar(0))?;
            let fresh = fps_tensor::ops::gather_rows(&req_noise, masked_idx)?;
            fps_tensor::ops::scatter_rows_into(&mut x, &fresh, masked_idx)?;
            x
        };
        let guidance = guidance
            .filter(|g| (g.scale - 1.0).abs() > 1e-6)
            .map(|g| (embed_prompt(&cfg, &g.negative_prompt), g.scale));
        // One mask-derived plan per edit, shared by every step. UNet
        // models get the grid-aware plan (conv dilation sets included).
        let plan = match cfg.arch {
            Architecture::UNet => SparsePlan::for_grid(cfg.latent_h, cfg.latent_w, masked_idx)?,
            Architecture::Dit => SparsePlan::from_mask(cfg.tokens(), masked_idx)?,
        };
        Ok(EditSession {
            template: template.clone(),
            z_template,
            template_noise,
            prompt_emb,
            masked_idx: masked_idx.to_vec(),
            plan: std::sync::Arc::new(plan),
            strategy,
            guidance,
            x,
            step: 0,
            total_steps: self.schedule.steps(),
            steps_computed: 0,
            steps_skipped: 0,
            flops: 0,
            prev_eps: None,
            last_computed_t: None,
            drift_acc: 0.0,
        })
    }

    /// Executes one denoising step of a session. No-op on a finished
    /// session.
    ///
    /// `cache` must be the template's primed cache for mask-aware
    /// strategies (the worker fetches it from the cache engine).
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::CacheMiss`] when a mask-aware strategy
    /// lacks cache entries, and propagates shape errors.
    pub fn step(&self, s: &mut EditSession, cache: Option<&TemplateCache>) -> Result<()> {
        if s.is_done() {
            return Ok(());
        }
        let mut span = self
            .trace
            .start("pipeline_step", "pipeline", self.trace_track, 0);
        span.arg("step", s.step as u64);
        let cfg = self.model.config().clone();
        let k = s.step;
        let t = self.schedule.t_norm(k);
        let mask_ratio = s.masked_idx.len() as f64 / cfg.tokens() as f64;
        // Classifier-free guidance runs the denoiser once per pass and
        // combines linearly: eps = (1-scale)·eps_neg + scale·eps_cond.
        let passes: Vec<(Tensor, f32)> = match &s.guidance {
            None => vec![(s.prompt_emb.clone(), 1.0)],
            Some((neg, scale)) => vec![(neg.clone(), 1.0 - *scale), (s.prompt_emb.clone(), *scale)],
        };
        let n_passes = passes.len() as u64;
        // TeaCache's skip decision applies to the whole (guided) step.
        let skip = if let Strategy::StepSkip { threshold } = &s.strategy {
            // The drift indicator is the accumulated normalized
            // timestep distance since the last computed step — a
            // faithful simplification of "Timestep Embedding Tells"
            // (the embedding is a smooth function of t, so its drift is
            // monotone in |Δt|).
            let drift = match s.last_computed_t {
                Some(prev) => (prev - t).abs(),
                None => f32::INFINITY,
            };
            s.drift_acc = if drift.is_finite() {
                s.drift_acc + drift
            } else {
                f32::INFINITY
            };
            s.drift_acc < *threshold && s.prev_eps.is_some()
        } else {
            false
        };

        let eps = if skip {
            s.steps_skipped += 1;
            s.prev_eps.clone().expect("skip requires a previous eps")
        } else {
            let mut acc: Option<Tensor> = None;
            for (emb, weight) in &passes {
                let eps_pass = match &s.strategy {
                    Strategy::FullRecompute | Strategy::StepSkip { .. } => {
                        self.model.predict_full(&s.x, t, emb, false)?.0
                    }
                    Strategy::MaskAware { use_cache, kv } => {
                        let plan = if *kv {
                            StepPlan {
                                modes: use_cache
                                    .iter()
                                    .map(|&c| {
                                        if c {
                                            crate::model::BlockMode::CachedKv
                                        } else {
                                            crate::model::BlockMode::Full
                                        }
                                    })
                                    .collect(),
                            }
                        } else {
                            StepPlan::from_use_cache(use_cache)
                        };
                        self.model
                            .predict_planned(&s.x, t, emb, &s.plan, &plan, cache, k)?
                    }
                    Strategy::MaskedOnly | Strategy::NaiveDisregard => self.model.predict_planned(
                        &s.x,
                        t,
                        emb,
                        &s.plan,
                        &StepPlan::masked_only(cfg.blocks),
                        None,
                        k,
                    )?,
                };
                match &mut acc {
                    None => acc = Some(eps_pass.scale(*weight)),
                    Some(a) => a.axpy(*weight, &eps_pass)?,
                }
                eps_pass.recycle();
            }
            // FLOP accounting per strategy, once per pass.
            let per_pass = match &s.strategy {
                Strategy::FullRecompute | Strategy::StepSkip { .. } => {
                    flops::step_flops_full(&cfg, 1)
                }
                Strategy::MaskAware { use_cache, kv } => {
                    flops::step_flops_plan(&cfg, 1, mask_ratio, use_cache, *kv)
                }
                Strategy::MaskedOnly | Strategy::NaiveDisregard => {
                    flops::step_flops_masked_only(&cfg, 1, mask_ratio)
                }
            };
            s.flops += per_pass * n_passes;
            s.steps_computed += 1;
            if matches!(s.strategy, Strategy::StepSkip { .. }) {
                s.last_computed_t = Some(t);
                s.drift_acc = 0.0;
            }
            acc.expect("at least one pass")
        };
        if matches!(s.strategy, Strategy::StepSkip { .. }) {
            s.prev_eps = Some(eps.clone());
        }
        let next = ddim_step(
            &s.x,
            &eps,
            self.schedule.abar(k),
            self.schedule.abar_next(k),
        )?;
        std::mem::replace(&mut s.x, next).recycle();
        eps.recycle();
        if !matches!(s.strategy, Strategy::NaiveDisregard) {
            inpaint_blend(
                &mut s.x,
                &s.z_template,
                &s.template_noise,
                self.schedule.abar_next(k),
                &s.masked_idx,
            )?;
        }
        s.step += 1;
        Ok(())
    }

    /// Decodes a completed session into the edit output.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidPlan`] when the session still
    /// has steps left; propagates decode shape errors.
    pub fn finish(&self, s: EditSession) -> Result<EditOutput> {
        let _span = self
            .trace
            .start("pipeline_decode", "pipeline", self.trace_track, 0);
        if !s.is_done() {
            return Err(DiffusionError::InvalidPlan {
                reason: format!(
                    "session finished early: step {} of {}",
                    s.step, s.total_steps
                ),
            });
        }
        let mut image = self.vae.decode(&s.x)?;
        if matches!(s.strategy, Strategy::NaiveDisregard) {
            // Paste the generated masked patches into the template —
            // the unmasked latent was never anchored to the template.
            image = self.paste_masked_patches(&s.template, &image, &s.masked_idx);
        }
        image.clamp();
        Ok(EditOutput {
            image,
            latent: s.x,
            steps_computed: s.steps_computed,
            steps_skipped: s.steps_skipped,
            flops: s.flops,
        })
    }

    /// Copies only the masked tokens' pixel patches from `generated`
    /// onto `template`.
    fn paste_masked_patches(
        &self,
        template: &Image,
        generated: &Image,
        masked_idx: &[usize],
    ) -> Image {
        let cfg = self.model.config();
        let mut out = template.clone();
        for &tok in masked_idx {
            let ty = tok / cfg.latent_w;
            let tx = tok % cfg.latent_w;
            for dy in 0..cfg.patch {
                for dx in 0..cfg.patch {
                    let (y, x) = (ty * cfg.patch + dy, tx * cfg.patch + dx);
                    if let Some(px) = generated.pixel(y, x) {
                        out.set_pixel(y, x, px);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ModelConfig, EditPipeline, Image, TemplateCache) {
        let cfg = ModelConfig::tiny();
        let pipe = EditPipeline::new(&cfg).unwrap();
        let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 42);
        let cache = pipe.prime(&template, 1, true).unwrap();
        (cfg, pipe, template, cache)
    }

    fn masked() -> Vec<usize> {
        vec![5, 6, 9, 10] // A 2×2 block in the 4×4 tiny latent grid.
    }

    #[test]
    fn session_stage_tracks_the_split_points() {
        let (cfg, pipe, template, cache) = setup();
        let strat = Strategy::MaskAware {
            use_cache: vec![true; cfg.blocks],
            kv: false,
        };
        let mut s = pipe
            .begin(&template, 1, &masked(), "a red box", 7, strat)
            .unwrap();
        assert_eq!(s.stage(), PipelineStage::Denoise);
        while !s.is_done() {
            pipe.step(&mut s, Some(&cache)).unwrap();
        }
        assert_eq!(s.stage(), PipelineStage::Decode);
        assert!(pipe.finish(s).is_ok());
        assert_eq!(PipelineStage::Encode.label(), "encode");
    }

    #[test]
    fn priming_captures_all_steps_and_blocks() {
        let (cfg, _, _, cache) = setup();
        assert_eq!(cache.num_steps(), cfg.steps);
        assert!(cache.get(cfg.steps - 1, cfg.blocks - 1).is_ok());
        assert!(cache.has_kv());
        assert!(cache.bytes_y() > 0);
    }

    #[test]
    fn edit_is_deterministic() {
        let (cfg, pipe, template, cache) = setup();
        let strat = Strategy::MaskAware {
            use_cache: vec![true; cfg.blocks],
            kv: false,
        };
        let a = pipe
            .edit(
                &template,
                1,
                &masked(),
                "a red box",
                7,
                &strat,
                Some(&cache),
            )
            .unwrap();
        let b = pipe
            .edit(
                &template,
                1,
                &masked(),
                "a red box",
                7,
                &strat,
                Some(&cache),
            )
            .unwrap();
        assert_eq!(a.image, b.image);
    }

    #[test]
    fn all_strategies_run_and_account_flops() {
        let (cfg, pipe, template, cache) = setup();
        let strategies = [
            Strategy::FullRecompute,
            Strategy::MaskAware {
                use_cache: vec![true; cfg.blocks],
                kv: false,
            },
            Strategy::MaskAware {
                use_cache: vec![true; cfg.blocks],
                kv: true,
            },
            Strategy::MaskedOnly,
            Strategy::StepSkip { threshold: 0.3 },
            Strategy::NaiveDisregard,
        ];
        let mut flops = Vec::new();
        for s in &strategies {
            let out = pipe
                .edit(&template, 1, &masked(), "p", 3, s, Some(&cache))
                .unwrap();
            assert_eq!(
                out.steps_computed + out.steps_skipped,
                cfg.steps,
                "{}",
                s.label()
            );
            assert!(out.flops > 0);
            assert!(out.image.data().iter().all(|v| v.is_finite()));
            flops.push((s.label(), out.flops));
        }
        // Mask-aware strategies must spend far fewer FLOPs than full
        // recompute at this 25% mask ratio.
        let full = flops[0].1;
        let flashps = flops[1].1;
        assert!(
            (flashps as f64) < full as f64 * 0.6,
            "flashps {flashps} vs full {full}"
        );
    }

    #[test]
    fn step_skip_skips_steps() {
        let (_, pipe, template, _) = setup();
        let out = pipe
            .edit(
                &template,
                1,
                &masked(),
                "p",
                3,
                &Strategy::StepSkip { threshold: 0.5 },
                None,
            )
            .unwrap();
        assert!(out.steps_skipped > 0, "threshold 0.5 should skip steps");
        let strict = pipe
            .edit(
                &template,
                1,
                &masked(),
                "p",
                3,
                &Strategy::StepSkip { threshold: 0.0 },
                None,
            )
            .unwrap();
        assert_eq!(strict.steps_skipped, 0, "threshold 0 never skips");
    }

    #[test]
    fn unmasked_pixels_track_the_template() {
        // After an inpainting edit, unmasked pixels must stay close to
        // the (VAE-projected) template.
        let (cfg, pipe, template, cache) = setup();
        let projected = pipe
            .vae()
            .decode(&pipe.vae().encode(&template).unwrap())
            .unwrap();
        let strat = Strategy::MaskAware {
            use_cache: vec![true; cfg.blocks],
            kv: false,
        };
        let out = pipe
            .edit(&template, 1, &masked(), "x", 9, &strat, Some(&cache))
            .unwrap();
        let m = masked();
        for tok in 0..cfg.tokens() {
            if m.contains(&tok) {
                continue;
            }
            let ty = tok / cfg.latent_w;
            let tx = tok % cfg.latent_w;
            for dy in 0..cfg.patch {
                for dx in 0..cfg.patch {
                    let a = out
                        .image
                        .pixel(ty * cfg.patch + dy, tx * cfg.patch + dx)
                        .unwrap();
                    let b = projected
                        .pixel(ty * cfg.patch + dy, tx * cfg.patch + dx)
                        .unwrap();
                    for c in 0..3 {
                        assert!(
                            (a[c] - b[c].clamp(0.0, 1.0)).abs() < 2e-2,
                            "unmasked pixel drifted: {} vs {}",
                            a[c],
                            b[c]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mask_aware_closer_to_full_than_masked_only() {
        // The quality ordering the paper reports (Table 2): FlashPS
        // tracks the Diffusers reference more closely than
        // FISEdit-style masked-only computation on the masked region.
        let (cfg, pipe, template, cache) = setup();
        let reference = pipe
            .edit(
                &template,
                1,
                &masked(),
                "edit",
                5,
                &Strategy::FullRecompute,
                None,
            )
            .unwrap();
        // FlashPS plan: half the blocks full (as the DP would choose
        // under load), half cached.
        let mut use_cache = vec![true; cfg.blocks];
        use_cache[0] = false;
        let flashps = pipe
            .edit(
                &template,
                1,
                &masked(),
                "edit",
                5,
                &Strategy::MaskAware {
                    use_cache,
                    kv: false,
                },
                Some(&cache),
            )
            .unwrap();
        let fisedit = pipe
            .edit(
                &template,
                1,
                &masked(),
                "edit",
                5,
                &Strategy::MaskedOnly,
                None,
            )
            .unwrap();
        let d_flash = flashps.image.mse(&reference.image).unwrap();
        let d_fis = fisedit.image.mse(&reference.image).unwrap();
        assert!(
            d_flash <= d_fis,
            "flashps MSE {d_flash} should not exceed fisedit MSE {d_fis}"
        );
    }

    #[test]
    fn validation_errors() {
        let (cfg, pipe, template, cache) = setup();
        // Out-of-range mask token.
        assert!(pipe
            .edit(
                &template,
                1,
                &[cfg.tokens()],
                "p",
                1,
                &Strategy::FullRecompute,
                None
            )
            .is_err());
        // Wrong use_cache length.
        assert!(pipe
            .edit(
                &template,
                1,
                &masked(),
                "p",
                1,
                &Strategy::MaskAware {
                    use_cache: vec![true; cfg.blocks + 2],
                    kv: false
                },
                Some(&cache)
            )
            .is_err());
        // Mask-aware without a cache.
        assert!(pipe
            .edit(
                &template,
                1,
                &masked(),
                "p",
                1,
                &Strategy::MaskAware {
                    use_cache: vec![true; cfg.blocks],
                    kv: false
                },
                None
            )
            .is_err());
    }

    #[test]
    fn guidance_changes_output_and_doubles_flops() {
        let (cfg, pipe, template, cache) = setup();
        let strat = Strategy::MaskAware {
            use_cache: vec![true; cfg.blocks],
            kv: false,
        };
        let run = |guidance: Option<Guidance>| {
            let mut session = pipe
                .begin_guided(
                    &template,
                    1,
                    &masked(),
                    "a red hat",
                    3,
                    strat.clone(),
                    guidance,
                )
                .unwrap();
            while !session.is_done() {
                pipe.step(&mut session, Some(&cache)).unwrap();
            }
            pipe.finish(session).unwrap()
        };
        let plain = run(None);
        let guided = run(Some(Guidance::cfg(4.0)));
        assert_ne!(plain.image, guided.image, "guidance must steer the output");
        assert_eq!(guided.flops, 2 * plain.flops, "two passes per step");
        // Scale 1.0 disables guidance entirely.
        let neutral = run(Some(Guidance::cfg(1.0)));
        assert_eq!(neutral.image, plain.image);
        assert_eq!(neutral.flops, plain.flops);
    }

    #[test]
    fn guided_teacache_still_skips() {
        let (_, pipe, template, _) = setup();
        let mut session = pipe
            .begin_guided(
                &template,
                1,
                &masked(),
                "p",
                3,
                Strategy::StepSkip { threshold: 0.5 },
                Some(Guidance::cfg(3.0)),
            )
            .unwrap();
        while !session.is_done() {
            pipe.step(&mut session, None).unwrap();
        }
        let out = pipe.finish(session).unwrap();
        assert!(out.steps_skipped > 0);
        assert!(out.image.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn session_api_matches_batch_edit() {
        // Driving the session step by step must reproduce edit()
        // exactly — the invariant continuous batching relies on.
        let (cfg, pipe, template, cache) = setup();
        let strat = Strategy::MaskAware {
            use_cache: vec![true; cfg.blocks],
            kv: false,
        };
        let direct = pipe
            .edit(&template, 1, &masked(), "p", 4, &strat, Some(&cache))
            .unwrap();
        let mut session = pipe.begin(&template, 1, &masked(), "p", 4, strat).unwrap();
        assert_eq!(session.total_steps(), cfg.steps);
        let mut steps = 0;
        while !session.is_done() {
            assert_eq!(session.step_index(), steps);
            pipe.step(&mut session, Some(&cache)).unwrap();
            steps += 1;
        }
        assert_eq!(steps, cfg.steps);
        assert_eq!(session.steps_left(), 0);
        let via_session = pipe.finish(session).unwrap();
        assert_eq!(via_session.image, direct.image);
        assert_eq!(via_session.flops, direct.flops);
    }

    #[test]
    fn session_rejects_early_finish_and_ignores_extra_steps() {
        let (cfg, pipe, template, _) = setup();
        let _ = cfg;
        let mut session = pipe
            .begin(&template, 1, &masked(), "p", 4, Strategy::FullRecompute)
            .unwrap();
        pipe.step(&mut session, None).unwrap();
        assert!(pipe.finish(session.clone()).is_err(), "early finish");
        while !session.is_done() {
            pipe.step(&mut session, None).unwrap();
        }
        // Extra steps are no-ops.
        let before = session.step_index();
        pipe.step(&mut session, None).unwrap();
        assert_eq!(session.step_index(), before);
        assert!((session.mask_ratio() - 0.25).abs() < 1e-9);
        assert!(pipe.finish(session).is_ok());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

        #[test]
        fn prop_edits_are_deterministic_and_finite(
            seed in 0u64..500,
            n_masked in 1usize..8,
            strategy_idx in 0usize..4,
        ) {
            let cfg = ModelConfig::tiny();
            let pipe = EditPipeline::new(&cfg).expect("pipeline");
            let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), seed);
            let cache = pipe.prime(&template, 1, false).expect("prime");
            let masked: Vec<usize> = (0..n_masked).map(|i| (i * 3) % cfg.tokens()).collect();
            let mut masked = masked;
            masked.sort_unstable();
            masked.dedup();
            let strategy = match strategy_idx {
                0 => Strategy::FullRecompute,
                1 => Strategy::MaskAware {
                    use_cache: vec![true; cfg.blocks],
                    kv: false,
                },
                2 => Strategy::MaskedOnly,
                _ => Strategy::StepSkip { threshold: 0.4 },
            };
            let run = || {
                pipe.edit(&template, 1, &masked, "p", seed, &strategy, Some(&cache))
                    .expect("edit")
            };
            let a = run();
            let b = run();
            proptest::prop_assert_eq!(&a.image, &b.image);
            proptest::prop_assert!(a.image.data().iter().all(|v| v.is_finite()));
            proptest::prop_assert_eq!(a.steps_computed + a.steps_skipped, cfg.steps);
        }
    }

    #[test]
    fn pipeline_stages_are_traced_on_the_wall_clock() {
        let (cfg, mut pipe, template, cache) = setup();
        let sink = TraceSink::recording(Clock::Wall);
        pipe.set_trace_sink(sink.clone(), Track::new(0, 0));
        let strat = Strategy::MaskAware {
            use_cache: vec![true; cfg.blocks],
            kv: false,
        };
        pipe.edit(&template, 1, &masked(), "p", 3, &strat, Some(&cache))
            .unwrap();
        let t = sink.drain().unwrap();
        assert_eq!(t.spans_named("pipeline_begin").count(), 1);
        assert_eq!(t.spans_named("pipeline_step").count(), cfg.steps);
        assert_eq!(t.spans_named("pipeline_decode").count(), 1);
    }

    #[test]
    #[should_panic(expected = "wall clock")]
    fn pipeline_rejects_virtual_sinks() {
        let (_, mut pipe, _, _) = setup();
        pipe.set_trace_sink(TraceSink::recording(Clock::Virtual), Track::new(0, 0));
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::FullRecompute.label(), "diffusers");
        assert_eq!(
            Strategy::MaskAware {
                use_cache: vec![],
                kv: true
            }
            .label(),
            "flashps-kv"
        );
        assert_eq!(Strategy::StepSkip { threshold: 0.1 }.label(), "teacache");
    }
}
