//! Transformer blocks with pluggable computation modes.
//!
//! A block is `x + SelfAttn(AdaLN(x))`, then `+ CrossAttn(LN(x),
//! prompt)`, then `+ FFN(AdaLN(x))` — the standard conditioned
//! transformer block of DiT-style diffusion models (UNet-style models in
//! this substrate use the same block; their convolutional scaffold is
//! carried analytically as an overhead factor in `flops`).
//!
//! Three forward paths exist, matching §3.1 of the paper:
//!
//! - [`TransformerBlock::forward_full`] computes every token and returns
//!   the `K`/`V`/`Y` activations so a priming run can populate the
//!   template cache (Fig. 5-top).
//! - [`TransformerBlock::forward_masked`] with
//!   [`MaskedContext::SelfOnly`] computes only masked tokens, attending
//!   only among masked tokens (Fig. 5-bottom, the Y-cache variant; also
//!   the FISEdit-style masked-only mode when no cache replenishes the
//!   output).
//! - [`TransformerBlock::forward_masked`] with
//!   [`MaskedContext::CachedKv`] lets masked queries attend over
//!   full-length cached keys/values (Fig. 7, the K/V-cache variant).

use fps_tensor::ops::sparse::SparsePlan;
use fps_tensor::ops::{
    ada_layer_norm, gelu, layer_norm, matmul, matmul_bt, matmul_gelu, mha_fused, modulate,
    scatter_rows_into, softmax_rows,
};
use fps_tensor::pool;
use fps_tensor::rng::DetRng;
use fps_tensor::Tensor;

use crate::config::ModelConfig;
use crate::error::DiffusionError;
use crate::Result;

/// Key/value context for a masked-token forward pass.
#[derive(Debug, Clone, Copy)]
pub enum MaskedContext<'a> {
    /// Masked queries attend only among masked tokens (the paper's main
    /// Y-cache design).
    SelfOnly,
    /// Masked queries attend over full-length cached K/V with the rows
    /// at `masked_idx` overwritten by freshly computed masked K/V.
    CachedKv {
        /// Cached keys `[L, H]` from the priming run.
        k: &'a Tensor,
        /// Cached values `[L, H]` from the priming run.
        v: &'a Tensor,
        /// Token indices (into `[0, L)`) of the masked rows.
        masked_idx: &'a [usize],
    },
}

/// Output of a full-token forward pass, including the activations a
/// priming run captures into the template cache.
#[derive(Debug, Clone)]
pub struct BlockFullOutput {
    /// Block output `Y` of shape `[L, H]`.
    pub y: Tensor,
    /// Self-attention keys `[L, H]` (pre-head-split layout).
    pub k: Tensor,
    /// Self-attention values `[L, H]`.
    pub v: Tensor,
}

/// One conditioned transformer block.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    heads: usize,
    // Self-attention projections, all `[H, H]`.
    wq: Tensor,
    wk: Tensor,
    wv: Tensor,
    wo: Tensor,
    // Cross-attention projections (queries from image tokens, keys and
    // values from prompt tokens), all `[H, H]`.
    cq: Tensor,
    ck: Tensor,
    cv: Tensor,
    co: Tensor,
    // Feed-forward `[H, F]` then `[F, H]`.
    w1: Tensor,
    w2: Tensor,
    // LayerNorm parameters, `[H]` each.
    ln1_g: Tensor,
    ln1_b: Tensor,
    ln2_g: Tensor,
    ln2_b: Tensor,
    ln3_g: Tensor,
    ln3_b: Tensor,
    // AdaLN conditioning: `[H, 4H]` mapping the pooled condition to
    // (scale1, shift1, scale2, shift2).
    ada: Tensor,
}

impl TransformerBlock {
    /// Builds a block with deterministic Xavier-initialized weights.
    pub fn new(cfg: &ModelConfig, rng: &mut DetRng) -> Self {
        let h = cfg.hidden;
        let f = cfg.hidden * cfg.ffn_mult;
        // Residual-branch output projections get a small gain so deep
        // stacks stay numerically tame and the map stays contractive —
        // trained denoisers behave contractively, and without this the
        // untrained substrate amplifies tiny perturbations chaotically,
        // drowning the systematic quality differences the experiments
        // measure (GPT-2-style init, stronger damping).
        const RESIDUAL_GAIN: f32 = 0.25;
        // Text conditioning perturbs content mildly in SD-class models
        // (cross-attention is a small fraction of each block's output);
        // keeping it weak also keeps unmasked activations prompt-
        // insensitive — the empirical property (Fig. 6-left) that lets
        // caches primed under one prompt serve requests with another.
        const CROSS_GAIN: f32 = 0.06;
        Self {
            heads: cfg.heads,
            wq: Tensor::xavier(h, h, rng),
            wk: Tensor::xavier(h, h, rng),
            wv: Tensor::xavier(h, h, rng),
            wo: Tensor::xavier(h, h, rng).scale(RESIDUAL_GAIN),
            cq: Tensor::xavier(h, h, rng),
            ck: Tensor::xavier(h, h, rng),
            cv: Tensor::xavier(h, h, rng),
            co: Tensor::xavier(h, h, rng).scale(CROSS_GAIN),
            w1: Tensor::xavier(h, f, rng),
            w2: Tensor::xavier(f, h, rng).scale(RESIDUAL_GAIN),
            ln1_g: Tensor::full([h], 1.0),
            ln1_b: Tensor::zeros([h]),
            ln2_g: Tensor::full([h], 1.0),
            ln2_b: Tensor::zeros([h]),
            ln3_g: Tensor::full([h], 1.0),
            ln3_b: Tensor::zeros([h]),
            ada: Tensor::xavier(h, 4 * h, rng).scale(0.1),
        }
    }

    /// Derives the AdaLN (scale1, shift1, scale2, shift2) vectors from
    /// the pooled condition.
    fn ada_params(&self, cond: &Tensor) -> Result<[Tensor; 4]> {
        let h = cond.numel();
        let row = matmul(&cond.clone().reshape([1, h])?, &self.ada)?;
        let d = row.data();
        let slice = |i: usize| Tensor::from_vec(d[i * h..(i + 1) * h].to_vec(), [h]);
        Ok([slice(0)?, slice(1)?, slice(2)?, slice(3)?])
    }

    /// Multi-head scaled-dot-product attention of `q` rows over `k`/`v`
    /// rows, before the output projection.
    ///
    /// On the default [`pool::ComputePath::Fused`] path this runs the
    /// fused per-head kernel (one score row at a time, no per-head
    /// column copies); the composed per-head loop below is the
    /// reference it must — and does, bitwise — agree with.
    fn mha(&self, q: &Tensor, k: &Tensor, v: &Tensor) -> Result<Tensor> {
        let (n, h) = (q.dims()[0], q.dims()[1]);
        let l = k.dims()[0];
        let dh = h / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        if pool::fused_enabled() {
            return Ok(mha_fused(q, k, v, self.heads, scale)?);
        }
        let mut out = Tensor::zeros([n, h]);
        for head in 0..self.heads {
            let qs = slice_cols(q, head * dh, dh)?;
            let ks = slice_cols(k, head * dh, dh)?;
            let vs = slice_cols(v, head * dh, dh)?;
            let scores = matmul_bt(&qs, &ks)?.scale(scale);
            let probs = softmax_rows(&scores)?;
            scores.recycle();
            let ctx = matmul(&probs, &vs)?;
            // Write the head's context back into its column slice.
            for row in 0..n {
                let src = ctx.row(row)?.to_vec();
                out.row_mut(row)?[head * dh..(head + 1) * dh].copy_from_slice(&src);
            }
            debug_assert_eq!(probs.dims(), &[n, l]);
            probs.recycle();
            ctx.recycle();
        }
        Ok(out)
    }

    /// AdaLN: `modulate(layer_norm(x), scale, shift)`, fused on the
    /// default path.
    fn adaln(
        &self,
        x: &Tensor,
        gamma: &Tensor,
        beta: &Tensor,
        scale: &Tensor,
        shift: &Tensor,
    ) -> Result<Tensor> {
        if pool::fused_enabled() {
            return Ok(ada_layer_norm(x, gamma, beta, scale, shift)?);
        }
        let ln = layer_norm(x, gamma, beta)?;
        let out = modulate(&ln, scale, shift)?;
        ln.recycle();
        Ok(out)
    }

    /// Feed-forward branch `W₂ · gelu(W₁ · xn)`, with the up-projection
    /// and GeLU fused on the default path.
    fn ffn(&self, xn: &Tensor) -> Result<Tensor> {
        let up = if pool::fused_enabled() {
            matmul_gelu(xn, &self.w1)?
        } else {
            let pre = matmul(xn, &self.w1)?;
            let up = gelu(&pre);
            pre.recycle();
            up
        };
        let out = matmul(&up, &self.w2)?;
        up.recycle();
        Ok(out)
    }

    /// Full-token forward pass; returns `Y` plus the `K`/`V`
    /// activations for cache priming.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors from malformed inputs.
    pub fn forward_full(
        &self,
        x: &Tensor,
        prompt: &Tensor,
        cond: &Tensor,
    ) -> Result<BlockFullOutput> {
        let [s1, b1, s2, b2] = self.ada_params(cond)?;
        // Self-attention branch. (`axpy(1.0, ·)` is bitwise `add`;
        // dead intermediates go back to the scratch pool.)
        let xn = self.adaln(x, &self.ln1_g, &self.ln1_b, &s1, &b1)?;
        let q = matmul(&xn, &self.wq)?;
        let k = matmul(&xn, &self.wk)?;
        let v = matmul(&xn, &self.wv)?;
        xn.recycle();
        let ctx = self.mha(&q, &k, &v)?;
        q.recycle();
        let attn = matmul(&ctx, &self.wo)?;
        ctx.recycle();
        let mut x = x.add(&attn)?;
        attn.recycle();
        // Cross-attention branch over the prompt tokens.
        let xn = layer_norm(&x, &self.ln2_g, &self.ln2_b)?;
        let cq = matmul(&xn, &self.cq)?;
        xn.recycle();
        let ck = matmul(prompt, &self.ck)?;
        let cv = matmul(prompt, &self.cv)?;
        let cctx = self.mha(&cq, &ck, &cv)?;
        cq.recycle();
        ck.recycle();
        cv.recycle();
        let cross = matmul(&cctx, &self.co)?;
        cctx.recycle();
        x.axpy(1.0, &cross)?;
        cross.recycle();
        // Feed-forward branch.
        let xn = self.adaln(&x, &self.ln3_g, &self.ln3_b, &s2, &b2)?;
        let ff = self.ffn(&xn)?;
        xn.recycle();
        x.axpy(1.0, &ff)?;
        ff.recycle();
        Ok(BlockFullOutput { y: x, k, v })
    }

    /// FlashPS Y-variant forward pass (Fig. 5-bottom): queries come
    /// from the masked rows only, but keys/values are recomputed over
    /// the *full* token matrix (whose unmasked rows were replenished
    /// from the cache by the previous block) — the paper's LLM-decoding
    /// analogy, where the new token's Q attends over everyone's K/V.
    /// Cross-attention and FFN run on masked rows only (token-wise,
    /// exact). The session's sparse plan supplies the masked row set.
    /// Returns the masked rows' block output.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward_masked_full_kv(
        &self,
        x_full: &Tensor,
        plan: &SparsePlan,
        prompt: &Tensor,
        cond: &Tensor,
    ) -> Result<Tensor> {
        let masked_idx = plan.active();
        let [s1, b1, s2, b2] = self.ada_params(cond)?;
        let xn_full = self.adaln(x_full, &self.ln1_g, &self.ln1_b, &s1, &b1)?;
        let xn_masked = fps_tensor::ops::gather_rows(&xn_full, masked_idx)?;
        let q = matmul(&xn_masked, &self.wq)?;
        xn_masked.recycle();
        let k = matmul(&xn_full, &self.wk)?;
        let v = matmul(&xn_full, &self.wv)?;
        xn_full.recycle();
        let ctx = self.mha(&q, &k, &v)?;
        q.recycle();
        k.recycle();
        v.recycle();
        let attn = matmul(&ctx, &self.wo)?;
        ctx.recycle();
        let xg = fps_tensor::ops::gather_rows(x_full, masked_idx)?;
        let mut x = xg.add(&attn)?;
        xg.recycle();
        attn.recycle();
        // Cross-attention and FFN are token-wise in the image tokens.
        let xn = layer_norm(&x, &self.ln2_g, &self.ln2_b)?;
        let cq = matmul(&xn, &self.cq)?;
        xn.recycle();
        let ck = matmul(prompt, &self.ck)?;
        let cv = matmul(prompt, &self.cv)?;
        let cctx = self.mha(&cq, &ck, &cv)?;
        cq.recycle();
        ck.recycle();
        cv.recycle();
        let cross = matmul(&cctx, &self.co)?;
        cctx.recycle();
        x.axpy(1.0, &cross)?;
        cross.recycle();
        let xn = self.adaln(&x, &self.ln3_g, &self.ln3_b, &s2, &b2)?;
        let ff = self.ffn(&xn)?;
        xn.recycle();
        x.axpy(1.0, &ff)?;
        ff.recycle();
        Ok(x)
    }

    /// Masked-token forward pass: computes only the `x_masked` rows.
    ///
    /// With [`MaskedContext::SelfOnly`] the masked queries attend only
    /// among themselves (FISEdit-style); with
    /// [`MaskedContext::CachedKv`] they attend over the cached
    /// full-length keys/values (with masked rows refreshed).
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidPlan`] when cached K/V shapes
    /// disagree with the masked row count, and propagates tensor shape
    /// errors.
    pub fn forward_masked(
        &self,
        x_masked: &Tensor,
        ctx: MaskedContext<'_>,
        prompt: &Tensor,
        cond: &Tensor,
    ) -> Result<Tensor> {
        let [s1, b1, s2, b2] = self.ada_params(cond)?;
        let xn = self.adaln(x_masked, &self.ln1_g, &self.ln1_b, &s1, &b1)?;
        let q = matmul(&xn, &self.wq)?;
        let attn = match ctx {
            MaskedContext::SelfOnly => {
                let k = matmul(&xn, &self.wk)?;
                let v = matmul(&xn, &self.wv)?;
                let attn = self.mha(&q, &k, &v)?;
                k.recycle();
                v.recycle();
                attn
            }
            MaskedContext::CachedKv { k, v, masked_idx } => {
                if masked_idx.len() != x_masked.dims()[0] {
                    return Err(DiffusionError::InvalidPlan {
                        reason: format!(
                            "cached-KV context has {} masked indices for {} rows",
                            masked_idx.len(),
                            x_masked.dims()[0]
                        ),
                    });
                }
                let k_fresh = matmul(&xn, &self.wk)?;
                let v_fresh = matmul(&xn, &self.wv)?;
                let mut k_full = k.clone();
                let mut v_full = v.clone();
                scatter_rows_into(&mut k_full, &k_fresh, masked_idx)?;
                scatter_rows_into(&mut v_full, &v_fresh, masked_idx)?;
                k_fresh.recycle();
                v_fresh.recycle();
                let attn = self.mha(&q, &k_full, &v_full)?;
                k_full.recycle();
                v_full.recycle();
                attn
            }
        };
        xn.recycle();
        q.recycle();
        let proj = matmul(&attn, &self.wo)?;
        attn.recycle();
        let mut x = x_masked.add(&proj)?;
        proj.recycle();
        // Cross-attention and FFN are token-wise in the image tokens, so
        // restricting them to masked rows is exact (not an
        // approximation), per §3.1.
        let xn = layer_norm(&x, &self.ln2_g, &self.ln2_b)?;
        let cq = matmul(&xn, &self.cq)?;
        xn.recycle();
        let ck = matmul(prompt, &self.ck)?;
        let cv = matmul(prompt, &self.cv)?;
        let cctx = self.mha(&cq, &ck, &cv)?;
        cq.recycle();
        ck.recycle();
        cv.recycle();
        let cross = matmul(&cctx, &self.co)?;
        cctx.recycle();
        x.axpy(1.0, &cross)?;
        cross.recycle();
        let xn = self.adaln(&x, &self.ln3_g, &self.ln3_b, &s2, &b2)?;
        let ff = self.ffn(&xn)?;
        xn.recycle();
        x.axpy(1.0, &ff)?;
        ff.recycle();
        Ok(x)
    }

    /// Returns the post-softmax self-attention probability matrix
    /// `[L, L]` averaged over heads — the quantity visualized in
    /// Fig. 6-right of the paper.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn attention_probs(&self, x: &Tensor, cond: &Tensor) -> Result<Tensor> {
        let [s1, b1, _, _] = self.ada_params(cond)?;
        let xn = modulate(&layer_norm(x, &self.ln1_g, &self.ln1_b)?, &s1, &b1)?;
        let q = matmul(&xn, &self.wq)?;
        let k = matmul(&xn, &self.wk)?;
        let l = x.dims()[0];
        let h = x.dims()[1];
        let dh = h / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut avg = Tensor::zeros([l, l]);
        for head in 0..self.heads {
            let qs = slice_cols(&q, head * dh, dh)?;
            let ks = slice_cols(&k, head * dh, dh)?;
            let probs = softmax_rows(&matmul_bt(&qs, &ks)?.scale(scale))?;
            avg.axpy(1.0 / self.heads as f32, &probs)?;
        }
        Ok(avg)
    }
}

/// Copies columns `[start, start + width)` of a rank-2 tensor.
fn slice_cols(x: &Tensor, start: usize, width: usize) -> Result<Tensor> {
    let (rows, cols) = (x.dims()[0], x.dims()[1]);
    debug_assert!(start + width <= cols);
    let mut out = Vec::with_capacity(rows * width);
    for r in 0..rows {
        out.extend_from_slice(&x.data()[r * cols + start..r * cols + start + width]);
    }
    Ok(Tensor::from_vec(out, [rows, width])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{embed_prompt, embed_timestep, pool_condition};
    use fps_tensor::ops::gather_rows;

    fn setup() -> (ModelConfig, TransformerBlock, Tensor, Tensor) {
        let cfg = ModelConfig::tiny();
        let mut rng = DetRng::new(cfg.weight_seed);
        let block = TransformerBlock::new(&cfg, &mut rng);
        let prompt = embed_prompt(&cfg, "test prompt");
        let cond = pool_condition(&prompt, &embed_timestep(&cfg, 0.5));
        (cfg, block, prompt, cond)
    }

    #[test]
    fn full_forward_shapes() {
        let (cfg, block, prompt, cond) = setup();
        let x = Tensor::randn([cfg.tokens(), cfg.hidden], &mut DetRng::new(1));
        let out = block.forward_full(&x, &prompt, &cond).unwrap();
        assert_eq!(out.y.dims(), &[cfg.tokens(), cfg.hidden]);
        assert_eq!(out.k.dims(), &[cfg.tokens(), cfg.hidden]);
        assert_eq!(out.v.dims(), &[cfg.tokens(), cfg.hidden]);
        assert!(out.y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_is_deterministic() {
        let (cfg, block, prompt, cond) = setup();
        let x = Tensor::randn([cfg.tokens(), cfg.hidden], &mut DetRng::new(2));
        let a = block.forward_full(&x, &prompt, &cond).unwrap();
        let b = block.forward_full(&x, &prompt, &cond).unwrap();
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn cross_attention_and_ffn_are_token_wise() {
        // Masked forward with cached-KV context over the *true* full
        // K/V must reproduce the full forward's masked rows exactly:
        // every op on the masked path is then identical to the full
        // path. This is the paper's core exactness claim for token-wise
        // ops plus KV-complete attention.
        let (cfg, block, prompt, cond) = setup();
        let x = Tensor::randn([cfg.tokens(), cfg.hidden], &mut DetRng::new(3));
        let full = block.forward_full(&x, &prompt, &cond).unwrap();
        let masked_idx: Vec<usize> = vec![1, 4, 10, 15];
        let xm = gather_rows(&x, &masked_idx).unwrap();
        let ym = block
            .forward_masked(
                &xm,
                MaskedContext::CachedKv {
                    k: &full.k,
                    v: &full.v,
                    masked_idx: &masked_idx,
                },
                &prompt,
                &cond,
            )
            .unwrap();
        let ym_ref = gather_rows(&full.y, &masked_idx).unwrap();
        assert!(
            ym.max_abs_diff(&ym_ref).unwrap() < 1e-4,
            "masked+true-KV must equal full rows"
        );
    }

    #[test]
    fn self_only_differs_from_full_context() {
        // Masked-only attention is the approximation; it should be
        // close-ish but not identical to the full computation.
        let (cfg, block, prompt, cond) = setup();
        let x = Tensor::randn([cfg.tokens(), cfg.hidden], &mut DetRng::new(4));
        let full = block.forward_full(&x, &prompt, &cond).unwrap();
        let masked_idx: Vec<usize> = vec![0, 5, 6];
        let xm = gather_rows(&x, &masked_idx).unwrap();
        let ym = block
            .forward_masked(&xm, MaskedContext::SelfOnly, &prompt, &cond)
            .unwrap();
        let ym_ref = gather_rows(&full.y, &masked_idx).unwrap();
        let diff = ym.max_abs_diff(&ym_ref).unwrap();
        assert!(diff > 1e-6, "restricting context must change something");
        assert!(ym.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cached_kv_validates_index_count() {
        let (cfg, block, prompt, cond) = setup();
        let x = Tensor::randn([cfg.tokens(), cfg.hidden], &mut DetRng::new(5));
        let full = block.forward_full(&x, &prompt, &cond).unwrap();
        let xm = gather_rows(&x, &[0, 1]).unwrap();
        let err = block
            .forward_masked(
                &xm,
                MaskedContext::CachedKv {
                    k: &full.k,
                    v: &full.v,
                    masked_idx: &[0],
                },
                &prompt,
                &cond,
            )
            .unwrap_err();
        assert!(matches!(err, DiffusionError::InvalidPlan { .. }));
    }

    #[test]
    fn attention_probs_are_row_stochastic() {
        let (cfg, block, prompt, cond) = setup();
        let _ = prompt;
        let x = Tensor::randn([cfg.tokens(), cfg.hidden], &mut DetRng::new(6));
        let probs = block.attention_probs(&x, &cond).unwrap();
        assert_eq!(probs.dims(), &[cfg.tokens(), cfg.tokens()]);
        for r in 0..cfg.tokens() {
            let sum: f32 = probs.row(r).unwrap().iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn condition_changes_output() {
        let (cfg, block, prompt, _) = setup();
        let x = Tensor::randn([cfg.tokens(), cfg.hidden], &mut DetRng::new(7));
        let c1 = pool_condition(&prompt, &embed_timestep(&cfg, 0.1));
        let c2 = pool_condition(&prompt, &embed_timestep(&cfg, 0.9));
        let y1 = block.forward_full(&x, &prompt, &c1).unwrap();
        let y2 = block.forward_full(&x, &prompt, &c2).unwrap();
        assert!(y1.y.max_abs_diff(&y2.y).unwrap() > 1e-5);
    }
}
