//! Error types for the diffusion substrate.

use core::fmt;
use fps_tensor::TensorError;

/// Errors produced by model construction and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffusionError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A model configuration is internally inconsistent.
    InvalidConfig {
        /// Description of the inconsistency.
        reason: String,
    },
    /// A mask's token count disagrees with the model's token length.
    MaskLengthMismatch {
        /// Token length expected by the model.
        expected: usize,
        /// Token length of the provided mask.
        actual: usize,
    },
    /// A request needed cached activations that were not available.
    CacheMiss {
        /// Denoising step index of the miss.
        step: usize,
        /// Transformer block index of the miss.
        block: usize,
    },
    /// A compute plan is incompatible with the request (for example, a
    /// cached-K/V plan mixing in non-K/V blocks).
    InvalidPlan {
        /// Description of the incompatibility.
        reason: String,
    },
    /// An image's dimensions are incompatible with the model's VAE.
    ImageShapeMismatch {
        /// Pixel height and width expected by the model.
        expected: (usize, usize),
        /// Pixel height and width of the provided image.
        actual: (usize, usize),
    },
}

impl fmt::Display for DiffusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::InvalidConfig { reason } => write!(f, "invalid model config: {reason}"),
            Self::MaskLengthMismatch { expected, actual } => {
                write!(f, "mask has {actual} tokens, model expects {expected}")
            }
            Self::CacheMiss { step, block } => {
                write!(f, "activation cache miss at step {step}, block {block}")
            }
            Self::InvalidPlan { reason } => write!(f, "invalid compute plan: {reason}"),
            Self::ImageShapeMismatch { expected, actual } => write!(
                f,
                "image is {}x{}, model expects {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for DiffusionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DiffusionError {
    fn from(e: TensorError) -> Self {
        Self::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_errors_convert() {
        let te = TensorError::Empty { op: "x" };
        let de: DiffusionError = te.clone().into();
        assert_eq!(de, DiffusionError::Tensor(te));
    }

    #[test]
    fn display_is_informative() {
        let e = DiffusionError::CacheMiss { step: 3, block: 7 };
        let s = e.to_string();
        assert!(s.contains("step 3"));
        assert!(s.contains("block 7"));
    }
}
