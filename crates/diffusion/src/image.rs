//! RGB images in `f32` with synthetic template generators.
//!
//! Values are nominally in `[0, 1]`. Templates are procedurally
//! generated stand-ins for the paper's image templates (model photos,
//! faces): smooth structured content a mask can cut a region out of.

use fps_tensor::rng::DetRng;

/// An owned RGB image with `f32` channels in row-major `(y, x, c)`
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Image {
    /// Creates a black image.
    pub fn zeros(height: usize, width: usize) -> Self {
        Self {
            height,
            width,
            data: vec![0.0; height * width * 3],
        }
    }

    /// Creates an image from raw data in `(y, x, c)` order.
    ///
    /// Returns `None` if `data.len() != height * width * 3`.
    pub fn from_data(height: usize, width: usize, data: Vec<f32>) -> Option<Self> {
        if data.len() != height * width * 3 {
            return None;
        }
        Some(Self {
            height,
            width,
            data,
        })
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raw channel data in `(y, x, c)` order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw channel data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reads pixel `(y, x)` as `[r, g, b]`; `None` out of bounds.
    pub fn pixel(&self, y: usize, x: usize) -> Option<[f32; 3]> {
        if y >= self.height || x >= self.width {
            return None;
        }
        let off = (y * self.width + x) * 3;
        Some([self.data[off], self.data[off + 1], self.data[off + 2]])
    }

    /// Writes pixel `(y, x)`. Out-of-bounds writes are ignored.
    pub fn set_pixel(&mut self, y: usize, x: usize, rgb: [f32; 3]) {
        if y >= self.height || x >= self.width {
            return;
        }
        let off = (y * self.width + x) * 3;
        self.data[off..off + 3].copy_from_slice(&rgb);
    }

    /// Converts to grayscale luma values, one per pixel.
    pub fn to_luma(&self) -> Vec<f32> {
        self.data
            .chunks_exact(3)
            .map(|px| 0.299 * px[0] + 0.587 * px[1] + 0.114 * px[2])
            .collect()
    }

    /// Clamps all channels into `[0, 1]`.
    pub fn clamp(&mut self) {
        for v in &mut self.data {
            *v = v.clamp(0.0, 1.0);
        }
    }

    /// Serializes to binary PPM (P6), 8 bits per channel, for visual
    /// inspection of experiment outputs.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend(
            self.data
                .iter()
                .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8),
        );
        out
    }

    /// Generates a smooth procedural template: overlapping radial color
    /// gradients, deterministic in the seed. Serves as the "image
    /// template" of the paper's editing workloads.
    pub fn template(height: usize, width: usize, seed: u64) -> Self {
        let mut rng = DetRng::new(seed ^ 0x7E4D_9A1E);
        // A handful of colored blobs on a gradient background.
        let blobs: Vec<(f32, f32, f32, [f32; 3])> = (0..4)
            .map(|_| {
                (
                    rng.uniform_range(0.0, 1.0),
                    rng.uniform_range(0.0, 1.0),
                    rng.uniform_range(0.15, 0.45),
                    [
                        rng.uniform_range(0.1, 1.0),
                        rng.uniform_range(0.1, 1.0),
                        rng.uniform_range(0.1, 1.0),
                    ],
                )
            })
            .collect();
        let base = [
            rng.uniform_range(0.1, 0.5),
            rng.uniform_range(0.1, 0.5),
            rng.uniform_range(0.1, 0.5),
        ];
        let mut img = Self::zeros(height, width);
        for y in 0..height {
            for x in 0..width {
                let fy = y as f32 / height.max(1) as f32;
                let fx = x as f32 / width.max(1) as f32;
                let mut px = [
                    base[0] * (1.0 - 0.3 * fy),
                    base[1] * (1.0 - 0.3 * fx),
                    base[2] * (0.7 + 0.3 * fy),
                ];
                for &(cy, cx, r, color) in &blobs {
                    let d2 = (fy - cy) * (fy - cy) + (fx - cx) * (fx - cx);
                    let w = (-d2 / (r * r)).exp();
                    for c in 0..3 {
                        px[c] = px[c] * (1.0 - w) + color[c] * w;
                    }
                }
                img.set_pixel(y, x, px);
            }
        }
        img
    }

    /// Mean squared error against another image of the same shape;
    /// `None` when shapes differ.
    pub fn mse(&self, other: &Self) -> Option<f32> {
        if self.height != other.height || self.width != other.width {
            return None;
        }
        let n = self.data.len() as f32;
        Some(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
                / n,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::zeros(4, 6);
        assert_eq!(img.height(), 4);
        assert_eq!(img.width(), 6);
        img.set_pixel(1, 2, [0.5, 0.25, 1.0]);
        assert_eq!(img.pixel(1, 2).unwrap(), [0.5, 0.25, 1.0]);
        assert!(img.pixel(4, 0).is_none());
        assert!(Image::from_data(2, 2, vec![0.0; 11]).is_none());
    }

    #[test]
    fn out_of_bounds_write_is_ignored() {
        let mut img = Image::zeros(2, 2);
        img.set_pixel(5, 5, [1.0, 1.0, 1.0]);
        assert!(img.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn template_is_deterministic_and_structured() {
        let a = Image::template(16, 16, 7);
        let b = Image::template(16, 16, 7);
        let c = Image::template(16, 16, 8);
        assert_eq!(a, b);
        assert!(a.mse(&c).unwrap() > 1e-4, "different seeds should differ");
        // Structured content: variation across the image.
        let luma = a.to_luma();
        let mean = luma.iter().sum::<f32>() / luma.len() as f32;
        let var = luma.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / luma.len() as f32;
        assert!(var > 1e-4, "template should not be flat");
    }

    #[test]
    fn ppm_roundtrip_header() {
        let img = Image::template(3, 5, 1);
        let ppm = img.to_ppm();
        let header = String::from_utf8_lossy(&ppm[..11]);
        assert!(header.starts_with("P6\n5 3\n255"));
        assert_eq!(ppm.len(), 11 + 3 * 5 * 3);
    }

    #[test]
    fn clamp_bounds_channels() {
        let mut img = Image::from_data(1, 1, vec![-0.5, 0.5, 1.5]).unwrap();
        img.clamp();
        assert_eq!(img.data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn luma_weights_sum_to_one() {
        let img = Image::from_data(1, 1, vec![1.0, 1.0, 1.0]).unwrap();
        let luma = img.to_luma();
        assert!((luma[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn mse_shape_check() {
        let a = Image::zeros(2, 2);
        let b = Image::zeros(2, 3);
        assert!(a.mse(&b).is_none());
        assert_eq!(a.mse(&a).unwrap(), 0.0);
    }
}
