//! UNet convolutional residual blocks.
//!
//! SD-class UNets wrap their transformer blocks in a convolutional
//! scaffold (GroupNorm → SiLU → 3×3 conv residual blocks). The paper's
//! §2.1 footnote attributes ~82% of a UNet step to the transformers;
//! the scaffold is the remainder and — because convolution mixes
//! spatially — mask-aware computation leaves it untouched: the
//! scaffold always computes over the full grid, for every serving
//! strategy identically.
//!
//! `UNet`-arch toy models run one [`ResBlock`] on the latent grid
//! before the transformer stack; `Dit` models have none.
//!
//! Since the sparse compute path landed, "always computes in full" has
//! an exact exception: when an edit's unmasked latent rows are bitwise
//! template-anchored (which the inpainting sampler guarantees every
//! step) and the template's scaffold output for the step is cached,
//! [`ResBlock::forward_sparse`] convolves only the mask's 1-dilation —
//! via a halo-dilated gather — and replenishes every other pixel from
//! the cached template scaffold, bit-for-bit identical to
//! [`ResBlock::forward`].

use fps_tensor::ops::sparse::SparsePlan;
use fps_tensor::ops::{conv3x3, gather_rows, group_norm, silu, sparse};
use fps_tensor::rng::DetRng;
use fps_tensor::Tensor;

use crate::error::DiffusionError;
use crate::Result;

/// Residual gain applied to the conv branch (keeps the scaffold
/// contractive, like the transformer branches).
const CONV_GAIN: f32 = 0.25;

/// One GroupNorm → SiLU → conv3×3 residual block over a token grid.
#[derive(Debug, Clone)]
pub struct ResBlock {
    grid_h: usize,
    grid_w: usize,
    groups: usize,
    gn_g: Tensor,
    gn_b: Tensor,
    kernel: Tensor,
    bias: Tensor,
}

impl ResBlock {
    /// Builds a block for a `grid_h × grid_w` grid of `channels`-wide
    /// tokens with deterministic weights.
    pub fn new(grid_h: usize, grid_w: usize, channels: usize, rng: &mut DetRng) -> Self {
        // The largest group count ≤ 4 that divides the channel width
        // while keeping at least two channels per group (a group of
        // one normalizes to zero).
        let groups = (1..=channels.min(4))
            .rev()
            .find(|g| channels.is_multiple_of(*g) && channels / g >= 2)
            .unwrap_or(1);
        Self {
            grid_h,
            grid_w,
            groups,
            gn_g: Tensor::full([channels], 1.0),
            gn_b: Tensor::zeros([channels]),
            kernel: Tensor::xavier(9 * channels, channels, rng).scale(CONV_GAIN),
            bias: Tensor::zeros([channels]),
        }
    }

    /// `x + conv(silu(group_norm(x)))` over the full grid.
    ///
    /// # Errors
    ///
    /// Propagates shape errors for inputs not matching the grid.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let normed = group_norm(x, self.groups, &self.gn_g, &self.gn_b)?;
        let activated = silu(&normed);
        let conv = conv3x3(
            &activated,
            self.grid_h,
            self.grid_w,
            &self.kernel,
            &self.bias,
        )?;
        Ok(x.add(&conv)?)
    }

    /// Mask-sparse forward: computes `x + conv(silu(group_norm(x)))`
    /// only at the plan's 1-dilated mask pixels and copies every other
    /// row from `template` — the template's cached scaffold output at
    /// this step.
    ///
    /// Exactness contract (the caller's responsibility): rows of `x`
    /// outside the mask must be bitwise equal to the latent the
    /// template was primed with at this step. GroupNorm and SiLU are
    /// token-wise and the sparse conv replicates the dense tap order,
    /// so computed pixels match [`ResBlock::forward`] bit-for-bit, and
    /// uncomputed pixels — whose full 3×3 neighbourhood is unmasked —
    /// match the cached template rows bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidPlan`] when the plan carries no
    /// grid or its dimensions disagree with this block's, and
    /// propagates shape errors.
    pub fn forward_sparse(
        &self,
        x: &Tensor,
        plan: &SparsePlan,
        template: &Tensor,
    ) -> Result<Tensor> {
        let grid = plan.grid().ok_or_else(|| DiffusionError::InvalidPlan {
            reason: "sparse scaffold needs a grid plan (SparsePlan::for_grid)".into(),
        })?;
        if grid.h() != self.grid_h || grid.w() != self.grid_w {
            return Err(DiffusionError::InvalidPlan {
                reason: format!(
                    "plan grid {}×{} does not match scaffold grid {}×{}",
                    grid.h(),
                    grid.w(),
                    self.grid_h,
                    self.grid_w
                ),
            });
        }
        if template.dims() != x.dims() {
            return Err(DiffusionError::InvalidPlan {
                reason: format!(
                    "scaffold template shape {:?} does not match latent {:?}",
                    template.dims(),
                    x.dims()
                ),
            });
        }
        // The conv's input halo: GroupNorm + SiLU are token-wise, so
        // computing them only at the 2-dilated mask rows is exact.
        let halo_x = gather_rows(x, grid.halo())?;
        let normed = group_norm(&halo_x, self.groups, &self.gn_g, &self.gn_b)?;
        halo_x.recycle();
        let activated = silu(&normed);
        normed.recycle();
        let conv = sparse::conv3x3(plan, &activated, &self.kernel, &self.bias, None)?;
        activated.recycle();
        let mut out = template.clone();
        for &p in grid.computed() {
            let xrow = x.row(p)?;
            let crow = conv.row(p)?;
            for ((o, &a), &b) in out.row_mut(p)?.iter_mut().zip(xrow).zip(crow) {
                *o = a + b;
            }
        }
        conv.recycle();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> (ResBlock, Tensor) {
        let mut rng = DetRng::new(7);
        let b = ResBlock::new(4, 4, 4, &mut rng);
        let x = Tensor::randn([16, 4], &mut rng);
        (b, x)
    }

    #[test]
    fn forward_preserves_shape_and_is_deterministic() {
        let (b, x) = block();
        let y1 = b.forward(&x).unwrap();
        let y2 = b.forward(&x).unwrap();
        assert_eq!(y1.dims(), x.dims());
        assert_eq!(y1, y2);
        assert!(y1.max_abs_diff(&x).unwrap() > 1e-6, "block must transform");
    }

    #[test]
    fn residual_is_contractive() {
        let (b, x) = block();
        let y = b.forward(&x).unwrap();
        let branch = y.sub(&x).unwrap();
        assert!(
            branch.norm() < x.norm(),
            "conv branch should be smaller than the skip path"
        );
    }

    #[test]
    fn mixes_spatially() {
        // Changing one token changes a neighbour's output — the reason
        // the scaffold always computes in full.
        let (b, x) = block();
        let y0 = b.forward(&x).unwrap();
        let mut x2 = x.clone();
        x2.row_mut(5).unwrap()[0] += 1.0;
        let y1 = b.forward(&x2).unwrap();
        let d: f32 = y0
            .row(6)
            .unwrap()
            .iter()
            .zip(y1.row(6).unwrap())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1e-7, "neighbour must be affected");
    }

    #[test]
    fn group_choice_divides_channels() {
        let mut rng = DetRng::new(1);
        for channels in [1usize, 3, 4, 6, 8] {
            let b = ResBlock::new(2, 2, channels, &mut rng);
            let x = Tensor::randn([4, channels], &mut rng);
            assert!(b.forward(&x).is_ok(), "channels {channels}");
        }
    }

    #[test]
    fn rejects_wrong_grid() {
        let (b, _) = block();
        let bad = Tensor::zeros([15, 4]);
        assert!(b.forward(&bad).is_err());
    }

    #[test]
    fn sparse_forward_is_bitwise_identical_to_dense() {
        let mut rng = DetRng::new(9);
        let b = ResBlock::new(4, 4, 4, &mut rng);
        // Template latent, and an edit latent that differs only at the
        // masked rows (the anchoring the inpainting sampler maintains).
        let xt = Tensor::randn([16, 4], &mut rng);
        let masked = [5usize, 6];
        let mut x = xt.clone();
        for &p in &masked {
            x.row_mut(p).unwrap().fill(0.75);
        }
        let plan = SparsePlan::for_grid(4, 4, &masked).unwrap();
        let template = b.forward(&xt).unwrap();
        let dense = b.forward(&x).unwrap();
        let sparse_out = b.forward_sparse(&x, &plan, &template).unwrap();
        assert_eq!(sparse_out, dense, "sparse scaffold must be bitwise exact");
        // Degenerate empty plan: nothing computed, template verbatim.
        let empty = SparsePlan::for_grid(4, 4, &[]).unwrap();
        assert_eq!(b.forward_sparse(&xt, &empty, &template).unwrap(), template);
        // Full plan: everything computed, template ignored.
        let full = SparsePlan::for_grid(4, 4, &(0..16).collect::<Vec<_>>()).unwrap();
        assert_eq!(b.forward_sparse(&x, &full, &template).unwrap(), dense);
    }

    #[test]
    fn sparse_forward_validates_plan() {
        let (b, x) = block();
        let template = b.forward(&x).unwrap();
        let gridless = SparsePlan::from_mask(16, &[1]).unwrap();
        assert!(b.forward_sparse(&x, &gridless, &template).is_err());
        let wrong_grid = SparsePlan::for_grid(2, 8, &[1]).unwrap();
        assert!(b.forward_sparse(&x, &wrong_grid, &template).is_err());
        let bad_template = Tensor::zeros([16, 3]);
        let plan = SparsePlan::for_grid(4, 4, &[1]).unwrap();
        assert!(b.forward_sparse(&x, &plan, &bad_template).is_err());
    }
}
