//! UNet convolutional residual blocks.
//!
//! SD-class UNets wrap their transformer blocks in a convolutional
//! scaffold (GroupNorm → SiLU → 3×3 conv residual blocks). The paper's
//! §2.1 footnote attributes ~82% of a UNet step to the transformers;
//! the scaffold is the remainder and — because convolution mixes
//! spatially — mask-aware computation leaves it untouched: the
//! scaffold always computes over the full grid, for every serving
//! strategy identically.
//!
//! `UNet`-arch toy models run one [`ResBlock`] on the latent grid
//! before the transformer stack; `Dit` models have none.

use fps_tensor::ops::{conv3x3, group_norm, silu};
use fps_tensor::rng::DetRng;
use fps_tensor::Tensor;

use crate::Result;

/// Residual gain applied to the conv branch (keeps the scaffold
/// contractive, like the transformer branches).
const CONV_GAIN: f32 = 0.25;

/// One GroupNorm → SiLU → conv3×3 residual block over a token grid.
#[derive(Debug, Clone)]
pub struct ResBlock {
    grid_h: usize,
    grid_w: usize,
    groups: usize,
    gn_g: Tensor,
    gn_b: Tensor,
    kernel: Tensor,
    bias: Tensor,
}

impl ResBlock {
    /// Builds a block for a `grid_h × grid_w` grid of `channels`-wide
    /// tokens with deterministic weights.
    pub fn new(grid_h: usize, grid_w: usize, channels: usize, rng: &mut DetRng) -> Self {
        // The largest group count ≤ 4 that divides the channel width
        // while keeping at least two channels per group (a group of
        // one normalizes to zero).
        let groups = (1..=channels.min(4))
            .rev()
            .find(|g| channels.is_multiple_of(*g) && channels / g >= 2)
            .unwrap_or(1);
        Self {
            grid_h,
            grid_w,
            groups,
            gn_g: Tensor::full([channels], 1.0),
            gn_b: Tensor::zeros([channels]),
            kernel: Tensor::xavier(9 * channels, channels, rng).scale(CONV_GAIN),
            bias: Tensor::zeros([channels]),
        }
    }

    /// `x + conv(silu(group_norm(x)))` over the full grid.
    ///
    /// # Errors
    ///
    /// Propagates shape errors for inputs not matching the grid.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let normed = group_norm(x, self.groups, &self.gn_g, &self.gn_b)?;
        let activated = silu(&normed);
        let conv = conv3x3(
            &activated,
            self.grid_h,
            self.grid_w,
            &self.kernel,
            &self.bias,
        )?;
        Ok(x.add(&conv)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> (ResBlock, Tensor) {
        let mut rng = DetRng::new(7);
        let b = ResBlock::new(4, 4, 4, &mut rng);
        let x = Tensor::randn([16, 4], &mut rng);
        (b, x)
    }

    #[test]
    fn forward_preserves_shape_and_is_deterministic() {
        let (b, x) = block();
        let y1 = b.forward(&x).unwrap();
        let y2 = b.forward(&x).unwrap();
        assert_eq!(y1.dims(), x.dims());
        assert_eq!(y1, y2);
        assert!(y1.max_abs_diff(&x).unwrap() > 1e-6, "block must transform");
    }

    #[test]
    fn residual_is_contractive() {
        let (b, x) = block();
        let y = b.forward(&x).unwrap();
        let branch = y.sub(&x).unwrap();
        assert!(
            branch.norm() < x.norm(),
            "conv branch should be smaller than the skip path"
        );
    }

    #[test]
    fn mixes_spatially() {
        // Changing one token changes a neighbour's output — the reason
        // the scaffold always computes in full.
        let (b, x) = block();
        let y0 = b.forward(&x).unwrap();
        let mut x2 = x.clone();
        x2.row_mut(5).unwrap()[0] += 1.0;
        let y1 = b.forward(&x2).unwrap();
        let d: f32 = y0
            .row(6)
            .unwrap()
            .iter()
            .zip(y1.row(6).unwrap())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1e-7, "neighbour must be affected");
    }

    #[test]
    fn group_choice_divides_channels() {
        let mut rng = DetRng::new(1);
        for channels in [1usize, 3, 4, 6, 8] {
            let b = ResBlock::new(2, 2, channels, &mut rng);
            let x = Tensor::randn([4, channels], &mut rng);
            assert!(b.forward(&x).is_ok(), "channels {channels}");
        }
    }

    #[test]
    fn rejects_wrong_grid() {
        let (b, _) = block();
        let bad = Tensor::zeros([15, 4]);
        assert!(b.forward(&bad).is_err());
    }
}
