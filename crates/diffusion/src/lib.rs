//! Toy-scale diffusion-transformer substrate for the FlashPS
//! reproduction.
//!
//! This crate implements a real (CPU, `f32`) latent diffusion pipeline —
//! patch VAE, prompt/timestep conditioning, a stack of transformer
//! blocks, and a deterministic DDIM-style inpainting sampler — small
//! enough to run in milliseconds yet structurally faithful to the models
//! the paper serves (SD2.1, SDXL, Flux). Every serving strategy the
//! paper evaluates is expressed as a *compute plan* over this model:
//!
//! - **Full recompute** (Diffusers baseline): every block computes every
//!   token.
//! - **Mask-aware with cached Y** (FlashPS, Fig. 5-bottom): blocks
//!   compute only masked tokens and replenish unmasked rows from the
//!   activation cache; the bubble-free pipeline DP decides per block.
//! - **Mask-aware with cached K/V** (Fig. 7 alternative): masked queries
//!   attend over cached full-length keys/values.
//! - **Masked-only** (FISEdit-style): masked tokens only, no cache, no
//!   cross-region context.
//! - **Step skipping** (TeaCache-style): whole denoising steps reuse the
//!   previous step's prediction when the timestep-embedding drift is
//!   small.
//! - **Naive disregard** (Fig. 1-rightmost): the masked region is
//!   generated without any template context and pasted back.
//!
//! Because weights are deterministic functions of a seed, experiments
//! are bit-reproducible, and because the *same* model underlies every
//! strategy, quality comparisons between strategies (Table 2 of the
//! paper) are meaningful.

pub mod block;
pub mod cache;
pub mod config;
pub mod embedding;
pub mod error;
pub mod flops;
pub mod image;
pub mod model;
pub mod pipeline;
pub mod resblock;
pub mod sampler;
pub mod vae;

pub use cache::{BlockCache, StepCache, TemplateCache};
pub use config::{Architecture, ModelConfig};
pub use error::DiffusionError;
pub use image::Image;
pub use model::{BlockMode, DiffusionModel, StepPlan};
pub use pipeline::{EditOutput, EditPipeline, EditSession, Guidance, PipelineStage, Strategy};

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, DiffusionError>;
