//! The diffusion denoiser: a stack of transformer blocks with per-block
//! compute plans.

use fps_tensor::ops::sparse::SparsePlan;
use fps_tensor::ops::{gather_rows, layer_norm, matmul, scatter_rows_into};
use fps_tensor::rng::DetRng;
use fps_tensor::{pool, Tensor};

use crate::block::{MaskedContext, TransformerBlock};
use crate::cache::{BlockCache, StepCache, TemplateCache};
use crate::config::{Architecture, ModelConfig};
use crate::embedding::embed_timestep;
use crate::error::DiffusionError;
use crate::Result;

/// How one transformer block computes during a mask-aware step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockMode {
    /// Compute every token (no cache used). The DP assigns this mode to
    /// blocks whose cache load would stall the pipeline; these blocks
    /// also re-inject cross-region context.
    Full,
    /// Compute masked tokens only; replenish unmasked rows from the
    /// cached block output `Y` (Fig. 5-bottom).
    CachedY,
    /// Compute masked tokens only; attend over cached full-length `K`/
    /// `V` and replenish unmasked rows from cached `Y` (Fig. 7).
    CachedKv,
    /// Compute masked tokens only with no cache; unmasked rows pass
    /// through unchanged (FISEdit-style sparse editing).
    MaskedOnly,
}

/// Per-block modes for one denoising step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepPlan {
    /// One mode per transformer block, in execution order.
    pub modes: Vec<BlockMode>,
}

impl StepPlan {
    /// Every block computes every token (the Diffusers baseline).
    pub fn full(blocks: usize) -> Self {
        Self {
            modes: vec![BlockMode::Full; blocks],
        }
    }

    /// Every block uses the Y cache.
    pub fn all_cached_y(blocks: usize) -> Self {
        Self {
            modes: vec![BlockMode::CachedY; blocks],
        }
    }

    /// Every block uses the K/V cache.
    pub fn all_cached_kv(blocks: usize) -> Self {
        Self {
            modes: vec![BlockMode::CachedKv; blocks],
        }
    }

    /// Every block computes masked tokens only without any cache.
    pub fn masked_only(blocks: usize) -> Self {
        Self {
            modes: vec![BlockMode::MaskedOnly; blocks],
        }
    }

    /// Builds a plan from Algorithm 1's `useCache` output: `true` →
    /// [`BlockMode::CachedY`], `false` → [`BlockMode::Full`].
    pub fn from_use_cache(use_cache: &[bool]) -> Self {
        Self {
            modes: use_cache
                .iter()
                .map(|&c| {
                    if c {
                        BlockMode::CachedY
                    } else {
                        BlockMode::Full
                    }
                })
                .collect(),
        }
    }

    /// Number of blocks that consume cached activations.
    pub fn cached_blocks(&self) -> usize {
        self.modes
            .iter()
            .filter(|m| matches!(m, BlockMode::CachedY | BlockMode::CachedKv))
            .count()
    }
}

/// The denoiser network.
#[derive(Debug, Clone)]
pub struct DiffusionModel {
    cfg: ModelConfig,
    /// `[latent_channels, hidden]` input projection.
    in_proj: Tensor,
    /// `[hidden, latent_channels]` output projection.
    out_proj: Tensor,
    blocks: Vec<TransformerBlock>,
    /// UNet scaffold: one conv residual block on the latent grid,
    /// always computed in full (§2.1 footnote); `None` for DiT models.
    scaffold: Option<crate::resblock::ResBlock>,
    ln_f_g: Tensor,
    ln_f_b: Tensor,
}

impl DiffusionModel {
    /// Builds the model with weights derived from `cfg.weight_seed`.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidConfig`] for inconsistent
    /// configs.
    pub fn new(cfg: &ModelConfig) -> Result<Self> {
        cfg.validate()?;
        let mut rng = DetRng::new(cfg.weight_seed ^ 0x0D1F_F051_0000);
        let blocks: Vec<TransformerBlock> = (0..cfg.blocks)
            .map(|_| TransformerBlock::new(cfg, &mut rng))
            .collect();
        let scaffold = match cfg.arch {
            Architecture::UNet => Some(crate::resblock::ResBlock::new(
                cfg.latent_h,
                cfg.latent_w,
                cfg.latent_channels,
                &mut rng,
            )),
            Architecture::Dit => None,
        };
        Ok(Self {
            cfg: cfg.clone(),
            in_proj: Tensor::xavier(cfg.latent_channels, cfg.hidden, &mut rng),
            out_proj: Tensor::xavier(cfg.hidden, cfg.latent_channels, &mut rng),
            blocks,
            scaffold,
            ln_f_g: Tensor::full([cfg.hidden], 1.0),
            ln_f_b: Tensor::zeros([cfg.hidden]),
        })
    }

    /// Returns the model config.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Full (mask-agnostic) noise prediction for one step; also returns
    /// the per-block activations so priming runs can populate the
    /// template cache.
    ///
    /// `capture_kv` additionally stores `K`/`V` for the Fig. 7 variant.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors from malformed latents.
    pub fn predict_full(
        &self,
        latent: &Tensor,
        t: f32,
        prompt_emb: &Tensor,
        capture_kv: bool,
    ) -> Result<(Tensor, StepCache)> {
        self.check_latent(latent)?;
        // AdaLN conditions on the timestep only (as in SD-class
        // models); the prompt enters through cross-attention. This is
        // what makes cached template activations reusable across
        // requests with different prompts (§2.2).
        let cond = embed_timestep(&self.cfg, t);
        let latent = self.apply_scaffold(latent)?;
        let mut captured = StepCache::default();
        // UNet priming also captures the scaffold output so sparse
        // edits can replenish uncomputed conv pixels from it.
        if self.scaffold.is_some() {
            captured.scaffold = Some(latent.clone());
        }
        let mut x = matmul(&latent, &self.in_proj)?;
        latent.recycle();
        for block in &self.blocks {
            let out = block.forward_full(&x, prompt_emb, &cond)?;
            captured.blocks.push(BlockCache {
                y: out.y.clone(),
                k: capture_kv.then(|| out.k.clone()),
                v: capture_kv.then(|| out.v.clone()),
            });
            // The cache keeps clones; the originals feed the scratch pool.
            std::mem::replace(&mut x, out.y).recycle();
            out.k.recycle();
            out.v.recycle();
        }
        let xn = layer_norm(&x, &self.ln_f_g, &self.ln_f_b)?;
        x.recycle();
        let eps = matmul(&xn, &self.out_proj)?;
        xn.recycle();
        Ok((eps, captured))
    }

    /// Mask-aware noise prediction for one step under a per-block plan.
    ///
    /// `sparse` is the session's mask-derived token plan (built once
    /// per edit); its active set lists the masked rows. On the
    /// [`pool::ComputePath::Sparse`] path, a UNet scaffold additionally
    /// convolves only the plan's dilated mask when the cache carries
    /// the template's scaffold output for this step — bit-for-bit
    /// identical to the full scaffold.
    ///
    /// Rows of the returned `[L, latent_channels]` prediction at
    /// unmasked positions are only meaningful insofar as the plan
    /// materializes them (cached plans replenish them; masked-only plans
    /// pass them through); the inpainting sampler overwrites unmasked
    /// latents regardless.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidPlan`] when the plan length
    /// disagrees with the block count or the sparse plan's row count
    /// disagrees with the token count, [`DiffusionError::CacheMiss`]
    /// when a cached mode lacks its entry, and propagates tensor shape
    /// errors.
    #[allow(clippy::too_many_arguments)]
    pub fn predict_planned(
        &self,
        latent: &Tensor,
        t: f32,
        prompt_emb: &Tensor,
        sparse: &SparsePlan,
        plan: &StepPlan,
        cache: Option<&TemplateCache>,
        step: usize,
    ) -> Result<Tensor> {
        self.check_latent(latent)?;
        if plan.modes.len() != self.blocks.len() {
            return Err(DiffusionError::InvalidPlan {
                reason: format!(
                    "plan has {} modes for {} blocks",
                    plan.modes.len(),
                    self.blocks.len()
                ),
            });
        }
        if sparse.total_rows() != self.cfg.tokens() {
            return Err(DiffusionError::InvalidPlan {
                reason: format!(
                    "sparse plan covers {} rows for {} tokens",
                    sparse.total_rows(),
                    self.cfg.tokens()
                ),
            });
        }
        let masked_idx = sparse.active();
        let cond = embed_timestep(&self.cfg, t);
        let latent = self.apply_scaffold_planned(latent, sparse, cache, step)?;
        let mut x = matmul(&latent, &self.in_proj)?;
        latent.recycle();
        for (i, (block, mode)) in self.blocks.iter().zip(plan.modes.iter()).enumerate() {
            match mode {
                BlockMode::Full => {
                    let out = block.forward_full(&x, prompt_emb, &cond)?;
                    std::mem::replace(&mut x, out.y).recycle();
                    out.k.recycle();
                    out.v.recycle();
                }
                BlockMode::MaskedOnly => {
                    let xm = gather_rows(&x, masked_idx)?;
                    let ym =
                        block.forward_masked(&xm, MaskedContext::SelfOnly, prompt_emb, &cond)?;
                    xm.recycle();
                    scatter_rows_into(&mut x, &ym, masked_idx)?;
                    ym.recycle();
                }
                BlockMode::CachedY => {
                    let entry = self.cache_entry(cache, step, i)?;
                    // Y variant: masked queries attend over fresh K/V of
                    // the full (cache-replenished) token matrix.
                    let ym = block.forward_masked_full_kv(&x, sparse, prompt_emb, &cond)?;
                    std::mem::replace(&mut x, entry.y.clone()).recycle();
                    scatter_rows_into(&mut x, &ym, masked_idx)?;
                    ym.recycle();
                }
                BlockMode::CachedKv => {
                    let entry = self.cache_entry(cache, step, i)?;
                    let (k, v) = match (&entry.k, &entry.v) {
                        (Some(k), Some(v)) => (k, v),
                        _ => return Err(DiffusionError::CacheMiss { step, block: i }),
                    };
                    let xm = gather_rows(&x, masked_idx)?;
                    let ym = block.forward_masked(
                        &xm,
                        MaskedContext::CachedKv { k, v, masked_idx },
                        prompt_emb,
                        &cond,
                    )?;
                    xm.recycle();
                    std::mem::replace(&mut x, entry.y.clone()).recycle();
                    scatter_rows_into(&mut x, &ym, masked_idx)?;
                    ym.recycle();
                }
            }
        }
        let xn = layer_norm(&x, &self.ln_f_g, &self.ln_f_b)?;
        x.recycle();
        let eps = matmul(&xn, &self.out_proj)?;
        xn.recycle();
        Ok(eps)
    }

    /// Post-softmax self-attention probabilities `[L, L]` of one block
    /// on the given latent — the Fig. 6-right probe.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range block index or malformed
    /// latent.
    pub fn attention_probe(
        &self,
        latent: &Tensor,
        t: f32,
        prompt_emb: &Tensor,
        block_idx: usize,
    ) -> Result<Tensor> {
        self.check_latent(latent)?;
        let block = self
            .blocks
            .get(block_idx)
            .ok_or(DiffusionError::InvalidPlan {
                reason: format!("block index {block_idx} out of range"),
            })?;
        let cond = embed_timestep(&self.cfg, t);
        // Run the stack up to the probed block so the probe sees
        // realistic inputs.
        let latent = self.apply_scaffold(latent)?;
        let mut x = matmul(&latent, &self.in_proj)?;
        for b in &self.blocks[..block_idx] {
            x = b.forward_full(&x, prompt_emb, &cond)?.y;
        }
        block.attention_probs(&x, &cond)
    }

    /// Runs the UNet conv scaffold (identity for DiT models). The
    /// scaffold computes the full grid under every serving strategy —
    /// spatial mixing admits no mask-aware shortcut.
    fn apply_scaffold(&self, latent: &Tensor) -> Result<Tensor> {
        match &self.scaffold {
            Some(rb) => rb.forward(latent),
            None => Ok(latent.clone()),
        }
    }

    /// Plan-aware scaffold: on the sparse compute path, with a grid
    /// plan and the template's cached scaffold output for this step,
    /// convolve only the mask's dilation (bitwise identical — the
    /// sampler keeps unmasked latent rows template-anchored).
    /// Otherwise fall back to the full scaffold.
    fn apply_scaffold_planned(
        &self,
        latent: &Tensor,
        sparse: &SparsePlan,
        cache: Option<&TemplateCache>,
        step: usize,
    ) -> Result<Tensor> {
        let Some(rb) = &self.scaffold else {
            return Ok(latent.clone());
        };
        if pool::sparse_enabled() && sparse.grid().is_some() && !sparse.is_full() {
            if let Some(tpl) = cache.and_then(|c| c.step_scaffold(step)) {
                if tpl.dims() == latent.dims() {
                    return rb.forward_sparse(latent, sparse, tpl);
                }
            }
        }
        rb.forward(latent)
    }

    fn cache_entry<'a>(
        &self,
        cache: Option<&'a TemplateCache>,
        step: usize,
        block: usize,
    ) -> Result<&'a BlockCache> {
        cache
            .ok_or(DiffusionError::CacheMiss { step, block })?
            .get(step, block)
    }

    fn check_latent(&self, latent: &Tensor) -> Result<()> {
        if latent.rank() != 2
            || latent.dims()[0] != self.cfg.tokens()
            || latent.dims()[1] != self.cfg.latent_channels
        {
            return Err(DiffusionError::InvalidConfig {
                reason: format!(
                    "latent shape {:?} does not match [{}, {}]",
                    latent.dims(),
                    self.cfg.tokens(),
                    self.cfg.latent_channels
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::embed_prompt;

    fn setup() -> (ModelConfig, DiffusionModel, Tensor, Tensor) {
        let cfg = ModelConfig::tiny();
        let model = DiffusionModel::new(&cfg).unwrap();
        let prompt = embed_prompt(&cfg, "tiny test");
        let latent = Tensor::randn([cfg.tokens(), cfg.latent_channels], &mut DetRng::new(11));
        (cfg, model, prompt, latent)
    }

    fn plan_of(cfg: &ModelConfig, masked: &[usize]) -> SparsePlan {
        SparsePlan::from_mask(cfg.tokens(), masked).unwrap()
    }

    fn prime(model: &DiffusionModel, latent: &Tensor, prompt: &Tensor, kv: bool) -> TemplateCache {
        let cfg = model.config();
        let mut cache = TemplateCache::new(7, cfg.tokens(), cfg.hidden);
        // A single-step cache is enough for block-level tests.
        let (_, step) = model.predict_full(latent, 0.5, prompt, kv).unwrap();
        cache.push_step(step);
        cache
    }

    #[test]
    fn full_prediction_shapes_and_capture() {
        let (cfg, model, prompt, latent) = setup();
        let (eps, cap) = model.predict_full(&latent, 0.5, &prompt, true).unwrap();
        assert_eq!(eps.dims(), &[cfg.tokens(), cfg.latent_channels]);
        assert_eq!(cap.blocks.len(), cfg.blocks);
        assert!(cap.blocks.iter().all(|b| b.k.is_some() && b.v.is_some()));
    }

    #[test]
    fn planned_full_equals_predict_full() {
        let (cfg, model, prompt, latent) = setup();
        let (eps_ref, _) = model.predict_full(&latent, 0.5, &prompt, false).unwrap();
        let eps = model
            .predict_planned(
                &latent,
                0.5,
                &prompt,
                &plan_of(&cfg, &[0, 1]),
                &StepPlan::full(cfg.blocks),
                None,
                0,
            )
            .unwrap();
        assert!(eps.max_abs_diff(&eps_ref).unwrap() < 1e-5);
    }

    #[test]
    fn cached_y_with_identical_latent_reproduces_masked_rows_approximately() {
        // When the edit latent equals the primed latent, the cached-Y
        // plan's masked rows still see reduced attention context, so the
        // output is close to — but not exactly — the full computation.
        let (cfg, model, prompt, latent) = setup();
        let cache = prime(&model, &latent, &prompt, false);
        let masked: Vec<usize> = vec![0, 3, 9];
        let (eps_ref, _) = model.predict_full(&latent, 0.5, &prompt, false).unwrap();
        let eps = model
            .predict_planned(
                &latent,
                0.5,
                &prompt,
                &plan_of(&cfg, &masked),
                &StepPlan::all_cached_y(cfg.blocks),
                Some(&cache),
                0,
            )
            .unwrap();
        // Unmasked rows after the final projection derive from cached Y,
        // which equals the reference computation's Y exactly.
        for tok in 0..cfg.tokens() {
            if !masked.contains(&tok) {
                let a = eps.row(tok).unwrap();
                let b = eps_ref.row(tok).unwrap();
                for (x, y) in a.iter().zip(b.iter()) {
                    assert!((x - y).abs() < 1e-4, "unmasked row {tok} diverged");
                }
            }
        }
    }

    #[test]
    fn cached_kv_is_closer_to_full_than_cached_y() {
        // The K/V variant gives masked queries the full attention
        // context, so its masked-row error w.r.t. the full computation
        // must not exceed the Y variant's.
        let (cfg, model, prompt, latent) = setup();
        let cache = prime(&model, &latent, &prompt, true);
        let masked: Vec<usize> = vec![2, 5, 7, 12];
        let (eps_ref, _) = model.predict_full(&latent, 0.5, &prompt, false).unwrap();
        let err = |plan: &StepPlan| {
            let eps = model
                .predict_planned(
                    &latent,
                    0.5,
                    &prompt,
                    &plan_of(&cfg, &masked),
                    plan,
                    Some(&cache),
                    0,
                )
                .unwrap();
            masked
                .iter()
                .map(|&tok| {
                    eps.row(tok)
                        .unwrap()
                        .iter()
                        .zip(eps_ref.row(tok).unwrap().iter())
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f32, f32::max)
                })
                .fold(0.0f32, f32::max)
        };
        let err_y = err(&StepPlan::all_cached_y(cfg.blocks));
        let err_kv = err(&StepPlan::all_cached_kv(cfg.blocks));
        assert!(
            err_kv <= err_y + 1e-6,
            "KV variant ({err_kv}) should be at least as accurate as Y variant ({err_y})"
        );
        // And with the latent identical to priming, KV must be exact.
        assert!(err_kv < 1e-4, "KV on identical latent should be exact");
    }

    #[test]
    fn plan_and_cache_validation() {
        let (cfg, model, prompt, latent) = setup();
        // Wrong plan length.
        let bad_plan = StepPlan::full(cfg.blocks + 1);
        assert!(matches!(
            model
                .predict_planned(
                    &latent,
                    0.5,
                    &prompt,
                    &plan_of(&cfg, &[0]),
                    &bad_plan,
                    None,
                    0
                )
                .unwrap_err(),
            DiffusionError::InvalidPlan { .. }
        ));
        // Cached mode without a cache.
        assert!(matches!(
            model
                .predict_planned(
                    &latent,
                    0.5,
                    &prompt,
                    &plan_of(&cfg, &[0]),
                    &StepPlan::all_cached_y(cfg.blocks),
                    None,
                    0
                )
                .unwrap_err(),
            DiffusionError::CacheMiss { .. }
        ));
        // KV mode with a Y-only cache.
        let cache = prime(&model, &latent, &prompt, false);
        assert!(matches!(
            model
                .predict_planned(
                    &latent,
                    0.5,
                    &prompt,
                    &plan_of(&cfg, &[0]),
                    &StepPlan::all_cached_kv(cfg.blocks),
                    Some(&cache),
                    0
                )
                .unwrap_err(),
            DiffusionError::CacheMiss { .. }
        ));
        // Sparse plan sized for a different token count.
        let oversized = SparsePlan::from_mask(cfg.tokens() + 1, &[cfg.tokens()]).unwrap();
        assert!(model
            .predict_planned(
                &latent,
                0.5,
                &prompt,
                &oversized,
                &StepPlan::full(cfg.blocks),
                None,
                0
            )
            .is_err());
    }

    #[test]
    fn masked_only_leaves_unmasked_prediction_independent() {
        // In masked-only mode the unmasked rows' trajectory through the
        // stack is just the input projection (identity residuals), so
        // two different masked contents must not change unmasked rows.
        let (cfg, model, prompt, latent) = setup();
        let masked: Vec<usize> = vec![1, 2];
        let plan = StepPlan::masked_only(cfg.blocks);
        let eps_a = model
            .predict_planned(
                &latent,
                0.5,
                &prompt,
                &plan_of(&cfg, &masked),
                &plan,
                None,
                0,
            )
            .unwrap();
        let mut latent_b = latent.clone();
        latent_b.row_mut(1).unwrap().fill(0.9);
        let eps_b = model
            .predict_planned(
                &latent_b,
                0.5,
                &prompt,
                &plan_of(&cfg, &masked),
                &plan,
                None,
                0,
            )
            .unwrap();
        for tok in 0..cfg.tokens() {
            if masked.contains(&tok) {
                continue;
            }
            let same = eps_a
                .row(tok)
                .unwrap()
                .iter()
                .zip(eps_b.row(tok).unwrap().iter())
                .all(|(a, b)| (a - b).abs() < 1e-6);
            assert!(same, "unmasked row {tok} should be unaffected");
        }
    }

    #[test]
    fn attention_probe_shape_and_bounds() {
        let (cfg, model, prompt, latent) = setup();
        let probs = model.attention_probe(&latent, 0.5, &prompt, 1).unwrap();
        assert_eq!(probs.dims(), &[cfg.tokens(), cfg.tokens()]);
        assert!(model
            .attention_probe(&latent, 0.5, &prompt, cfg.blocks)
            .is_err());
    }

    #[test]
    fn step_plan_helpers() {
        let plan = StepPlan::from_use_cache(&[true, false, true]);
        assert_eq!(
            plan.modes,
            vec![BlockMode::CachedY, BlockMode::Full, BlockMode::CachedY]
        );
        assert_eq!(plan.cached_blocks(), 2);
        assert_eq!(StepPlan::all_cached_kv(3).cached_blocks(), 3);
        assert_eq!(StepPlan::masked_only(3).cached_blocks(), 0);
    }
}
