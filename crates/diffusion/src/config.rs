//! Model configurations.
//!
//! Two families of configs exist:
//!
//! - **Runnable toy configs** ([`ModelConfig::tiny`], and the
//!   `*_like` presets) instantiate real weights and run on CPU. Their
//!   dimensions are scaled-down but *proportionally faithful*: the Flux
//!   preset is a pure DiT with more blocks and a longer token sequence
//!   than the UNet-style SD presets, mirroring the relative compute
//!   intensities in the paper's evaluation.
//! - **Analytic paper-scale configs** ([`ModelConfig::paper_sd21`] and
//!   friends) carry the real token lengths and hidden sizes of the
//!   published models. They are never instantiated as weights — the
//!   serving cost models use them to compute FLOPs and cache sizes per
//!   Table 1.

use crate::error::DiffusionError;
use crate::Result;

/// Transformer arrangement of the denoiser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// UNet-style model where transformer blocks dominate but sit inside
    /// a convolutional scaffold (SD2.1, SDXL). Per the paper, transformer
    /// computations account for ~82% of such models; the remaining
    /// fraction is modelled as token-wise overhead.
    UNet,
    /// Pure diffusion transformer (Flux): a stack of transformer blocks.
    Dit,
}

/// Static description of a diffusion model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable name, e.g. `"sdxl-like"`.
    pub name: String,
    /// Transformer arrangement.
    pub arch: Architecture,
    /// Latent grid height in tokens.
    pub latent_h: usize,
    /// Latent grid width in tokens.
    pub latent_w: usize,
    /// Latent channels per token (VAE output channels).
    pub latent_channels: usize,
    /// Pixel size of the square patch each token covers.
    pub patch: usize,
    /// Transformer hidden dimension.
    pub hidden: usize,
    /// Number of attention heads (`hidden % heads == 0`).
    pub heads: usize,
    /// Number of transformer blocks.
    pub blocks: usize,
    /// Feed-forward expansion factor (4 in every model the paper uses).
    pub ffn_mult: usize,
    /// Number of prompt tokens produced by the text encoder.
    pub prompt_tokens: usize,
    /// Default number of denoising steps.
    pub steps: usize,
    /// Seed from which all weights are derived.
    pub weight_seed: u64,
}

impl ModelConfig {
    /// Total number of image tokens `L = latent_h * latent_w`.
    pub fn tokens(&self) -> usize {
        self.latent_h * self.latent_w
    }

    /// Pixel height of images this model generates.
    pub fn pixel_h(&self) -> usize {
        self.latent_h * self.patch
    }

    /// Pixel width of images this model generates.
    pub fn pixel_w(&self) -> usize {
        self.latent_w * self.patch
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidConfig`] when any dimension is
    /// zero or `hidden` is not divisible by `heads`.
    pub fn validate(&self) -> Result<()> {
        let positive = [
            ("latent_h", self.latent_h),
            ("latent_w", self.latent_w),
            ("latent_channels", self.latent_channels),
            ("patch", self.patch),
            ("hidden", self.hidden),
            ("heads", self.heads),
            ("blocks", self.blocks),
            ("ffn_mult", self.ffn_mult),
            ("prompt_tokens", self.prompt_tokens),
            ("steps", self.steps),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(DiffusionError::InvalidConfig {
                    reason: format!("{name} must be positive"),
                });
            }
        }
        if !self.hidden.is_multiple_of(self.heads) {
            return Err(DiffusionError::InvalidConfig {
                reason: format!(
                    "hidden ({}) must be divisible by heads ({})",
                    self.hidden, self.heads
                ),
            });
        }
        Ok(())
    }

    /// Bytes of cached activations per block for the Y-caching variant:
    /// one `[ (1-m)·L, H ]` f32 tensor (Table 1 of the paper).
    pub fn cache_bytes_per_block(&self, mask_ratio: f64) -> u64 {
        let unmasked = ((1.0 - mask_ratio).max(0.0) * self.tokens() as f64).round() as u64;
        unmasked * self.hidden as u64 * 4
    }

    /// Bytes of cached activations for a whole template: every block of
    /// every denoising step.
    pub fn cache_bytes_total(&self, mask_ratio: f64) -> u64 {
        self.cache_bytes_per_block(mask_ratio) * self.blocks as u64 * self.steps as u64
    }

    /// The tiniest config that exercises every code path; used by unit
    /// tests.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".into(),
            arch: Architecture::Dit,
            latent_h: 4,
            latent_w: 4,
            latent_channels: 4,
            patch: 2,
            hidden: 16,
            heads: 2,
            blocks: 2,
            ffn_mult: 2,
            prompt_tokens: 4,
            steps: 4,
            weight_seed: 0xF1A5,
        }
    }

    /// Runnable SD2.1-like preset: the smallest of the three evaluated
    /// models (UNet, short sequence).
    pub fn sd21_like() -> Self {
        Self {
            name: "sd21-like".into(),
            arch: Architecture::UNet,
            latent_h: 8,
            latent_w: 8,
            latent_channels: 4,
            patch: 4,
            hidden: 32,
            heads: 4,
            blocks: 4,
            ffn_mult: 4,
            prompt_tokens: 8,
            steps: 8,
            weight_seed: 0x5D21,
        }
    }

    /// Runnable SDXL-like preset: larger hidden size and sequence than
    /// SD2.1.
    pub fn sdxl_like() -> Self {
        Self {
            name: "sdxl-like".into(),
            arch: Architecture::UNet,
            latent_h: 12,
            latent_w: 12,
            latent_channels: 4,
            patch: 4,
            hidden: 48,
            heads: 6,
            blocks: 6,
            ffn_mult: 4,
            prompt_tokens: 8,
            steps: 10,
            weight_seed: 0x5DE1,
        }
    }

    /// Runnable Flux-like preset: pure DiT, the deepest and longest
    /// sequence of the three.
    pub fn flux_like() -> Self {
        Self {
            name: "flux-like".into(),
            arch: Architecture::Dit,
            latent_h: 16,
            latent_w: 16,
            latent_channels: 4,
            patch: 4,
            hidden: 64,
            heads: 8,
            blocks: 8,
            ffn_mult: 4,
            prompt_tokens: 8,
            steps: 12,
            weight_seed: 0xF1BC,
        }
    }

    /// Analytic paper-scale SD2.1 (512×512 editing): used by cost
    /// models only, never instantiated. `latent_h/w` give the
    /// *effective* attention token count (UNet attention runs at
    /// downsampled resolutions).
    pub fn paper_sd21() -> Self {
        Self {
            name: "sd2.1".into(),
            arch: Architecture::UNet,
            latent_h: 64,
            latent_w: 64,
            latent_channels: 4,
            patch: 8,
            hidden: 768,
            heads: 12,
            blocks: 16,
            ffn_mult: 4,
            prompt_tokens: 77,
            steps: 50,
            weight_seed: 0,
        }
    }

    /// Analytic paper-scale SDXL (1024×1024; effective attention
    /// resolution 64×64 with 24 transformer blocks).
    pub fn paper_sdxl() -> Self {
        Self {
            name: "sdxl".into(),
            arch: Architecture::UNet,
            latent_h: 64,
            latent_w: 64,
            latent_channels: 4,
            patch: 16,
            hidden: 1280,
            heads: 20,
            blocks: 24,
            ffn_mult: 4,
            prompt_tokens: 77,
            steps: 50,
            weight_seed: 0,
        }
    }

    /// Analytic paper-scale Flux (1024×1024, 2×2 latent patching →
    /// 4096 tokens, 19 joint + 38 single DiT blocks ≈ 57 blocks).
    pub fn paper_flux() -> Self {
        Self {
            name: "flux".into(),
            arch: Architecture::Dit,
            latent_h: 64,
            latent_w: 64,
            latent_channels: 64,
            patch: 16,
            hidden: 3072,
            heads: 24,
            blocks: 57,
            ffn_mult: 4,
            prompt_tokens: 512,
            steps: 28,
            weight_seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            ModelConfig::tiny(),
            ModelConfig::sd21_like(),
            ModelConfig::sdxl_like(),
            ModelConfig::flux_like(),
            ModelConfig::paper_sd21(),
            ModelConfig::paper_sdxl(),
            ModelConfig::paper_flux(),
        ] {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = ModelConfig::tiny();
        cfg.heads = 3;
        assert!(cfg.validate().is_err(), "hidden not divisible by heads");
        let mut cfg = ModelConfig::tiny();
        cfg.blocks = 0;
        assert!(cfg.validate().is_err(), "zero blocks");
    }

    #[test]
    fn derived_dimensions() {
        let cfg = ModelConfig::tiny();
        assert_eq!(cfg.tokens(), 16);
        assert_eq!(cfg.pixel_h(), 8);
        assert_eq!(cfg.pixel_w(), 8);
        assert_eq!(cfg.head_dim(), 8);
    }

    #[test]
    fn cache_size_scales_with_unmasked_fraction() {
        let cfg = ModelConfig::sdxl_like();
        let full = cfg.cache_bytes_per_block(0.0);
        let half = cfg.cache_bytes_per_block(0.5);
        let none = cfg.cache_bytes_per_block(1.0);
        assert_eq!(full, (cfg.tokens() * cfg.hidden * 4) as u64);
        assert!(half < full && half > none);
        assert_eq!(none, 0);
    }

    #[test]
    fn paper_scale_cache_is_gib_scale() {
        // The paper reports up to 2.6 GiB of cached activations for an
        // SDXL template; our analytic config should be the same order.
        let cfg = ModelConfig::paper_sdxl();
        let gib = cfg.cache_bytes_total(0.11) as f64 / (1u64 << 30) as f64;
        assert!(gib > 0.5 && gib < 50.0, "got {gib} GiB");
    }

    #[test]
    fn model_scale_ordering_matches_paper() {
        // Flux > SDXL > SD2.1 in per-step compute intensity.
        let flops = |cfg: &ModelConfig| crate::flops::step_flops_full(cfg, 1);
        let sd21 = flops(&ModelConfig::paper_sd21());
        let sdxl = flops(&ModelConfig::paper_sdxl());
        let flux = flops(&ModelConfig::paper_flux());
        assert!(sd21 < sdxl && sdxl < flux);
    }
}
