//! End-to-end bitwise identity of the compute paths.
//!
//! The parallel compute plane (pool + fused kernels + scratch reuse)
//! must be invisible in the numbers: a whole edit — VAE encode, priming,
//! every denoising step, VAE decode — produces byte-identical output on
//! the scalar, parallel, fused, and sparse paths. These tests drive the
//! public pipeline API rather than individual kernels, so they also
//! cover the block/model/VAE wiring that routes through the fused
//! helpers and the mask-sparse scaffold.

use fps_diffusion::block::{MaskedContext, TransformerBlock};
use fps_diffusion::embedding::{embed_prompt, embed_timestep, pool_condition};
use fps_diffusion::{EditPipeline, Image, ModelConfig, Strategy};
use fps_tensor::ops::gather_rows;
use fps_tensor::ops::sparse::SparsePlan;
use fps_tensor::pool::{with_compute_path, with_min_parallel_work, ComputePath};
use fps_tensor::rng::DetRng;
use fps_tensor::{scratch, Tensor};
use fps_trace::{Clock, TraceSink, Track};

const PATHS: [ComputePath; 4] = [
    ComputePath::Scalar,
    ComputePath::Parallel,
    ComputePath::Fused,
    ComputePath::Sparse,
];

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn block_forwards_identical_across_paths() {
    let cfg = ModelConfig::tiny();
    let mut rng = DetRng::new(cfg.weight_seed);
    let block = TransformerBlock::new(&cfg, &mut rng);
    let prompt = embed_prompt(&cfg, "path test");
    let cond = pool_condition(&prompt, &embed_timestep(&cfg, 0.5));
    let x = Tensor::randn([cfg.tokens(), cfg.hidden], &mut DetRng::new(21));
    let masked_idx: Vec<usize> = vec![1, 4, 7];
    let plan = SparsePlan::from_mask(cfg.tokens(), &masked_idx).unwrap();
    let xm = gather_rows(&x, &masked_idx).unwrap();

    let reference = with_compute_path(ComputePath::Scalar, || {
        let full = block.forward_full(&x, &prompt, &cond).unwrap();
        let self_only = block
            .forward_masked(&xm, MaskedContext::SelfOnly, &prompt, &cond)
            .unwrap();
        let cached_kv = block
            .forward_masked(
                &xm,
                MaskedContext::CachedKv {
                    k: &full.k,
                    v: &full.v,
                    masked_idx: &masked_idx,
                },
                &prompt,
                &cond,
            )
            .unwrap();
        let full_kv = block
            .forward_masked_full_kv(&x, &plan, &prompt, &cond)
            .unwrap();
        (full, self_only, cached_kv, full_kv)
    });

    for path in [
        ComputePath::Parallel,
        ComputePath::Fused,
        ComputePath::Sparse,
    ] {
        with_compute_path(path, || {
            with_min_parallel_work(0, || {
                let full = block.forward_full(&x, &prompt, &cond).unwrap();
                assert_eq!(bits(&full.y), bits(&reference.0.y), "{path:?} full y");
                assert_eq!(bits(&full.k), bits(&reference.0.k), "{path:?} full k");
                assert_eq!(bits(&full.v), bits(&reference.0.v), "{path:?} full v");
                let self_only = block
                    .forward_masked(&xm, MaskedContext::SelfOnly, &prompt, &cond)
                    .unwrap();
                assert_eq!(bits(&self_only), bits(&reference.1), "{path:?} self-only");
                let cached_kv = block
                    .forward_masked(
                        &xm,
                        MaskedContext::CachedKv {
                            k: &full.k,
                            v: &full.v,
                            masked_idx: &masked_idx,
                        },
                        &prompt,
                        &cond,
                    )
                    .unwrap();
                assert_eq!(bits(&cached_kv), bits(&reference.2), "{path:?} cached-kv");
                let full_kv = block
                    .forward_masked_full_kv(&x, &plan, &prompt, &cond)
                    .unwrap();
                assert_eq!(bits(&full_kv), bits(&reference.3), "{path:?} full-kv");
            })
        });
    }
}

#[test]
fn whole_edit_identical_across_paths() {
    let cfg = ModelConfig::tiny();
    let pipe = EditPipeline::new(&cfg).unwrap();
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 42);
    let masked: Vec<usize> = vec![5, 6, 9, 10];
    let strategies = [
        Strategy::FullRecompute,
        Strategy::MaskAware {
            use_cache: vec![true; cfg.blocks],
            kv: false,
        },
        Strategy::MaskAware {
            use_cache: vec![true; cfg.blocks],
            kv: true,
        },
        Strategy::MaskedOnly,
    ];
    for strategy in &strategies {
        let outputs: Vec<Image> = PATHS
            .iter()
            .map(|&path| {
                with_compute_path(path, || {
                    let cache = pipe.prime(&template, 1, true).unwrap();
                    pipe.edit(
                        &template,
                        1,
                        &masked,
                        "a blue door",
                        7,
                        strategy,
                        Some(&cache),
                    )
                    .unwrap()
                    .image
                })
            })
            .collect();
        for (path, out) in PATHS.iter().zip(&outputs).skip(1) {
            assert_eq!(
                out,
                &outputs[0],
                "{} output differs on {path:?} vs Scalar",
                strategy.label()
            );
        }
    }
}

#[test]
fn kernel_spans_appear_only_when_enabled() {
    let cfg = ModelConfig::tiny();
    let mut pipe = EditPipeline::new(&cfg).unwrap();
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 3);
    let sink = TraceSink::recording(Clock::Wall);
    pipe.set_trace_sink(sink.clone(), Track::new(0, 0));

    // Default: pipeline spans, no kernel spans.
    let cache = pipe.prime(&template, 2, false).unwrap();
    let strat = Strategy::MaskAware {
        use_cache: vec![true; cfg.blocks],
        kv: false,
    };
    pipe.edit(&template, 2, &[5, 6], "x", 1, &strat, Some(&cache))
        .unwrap();
    let t = sink.drain().unwrap();
    assert!(t.spans_named("pipeline_step").count() > 0);
    assert_eq!(
        t.spans.iter().filter(|s| s.cat == "kernel").count(),
        0,
        "kernel tracing must be off by default"
    );

    // Enabled: matmul (at least) shows up with the kernel category.
    pipe.trace_kernels(true);
    pipe.edit(&template, 2, &[5, 6], "x", 1, &strat, Some(&cache))
        .unwrap();
    pipe.trace_kernels(false);
    let t = sink.drain().unwrap();
    let kernels: Vec<_> = t.spans.iter().filter(|s| s.cat == "kernel").collect();
    assert!(!kernels.is_empty(), "expected kernel spans when enabled");
    assert!(kernels.iter().any(|s| s.name == "matmul"));
    assert!(kernels.iter().all(|s| s.end_ns >= s.start_ns));

    // And after disabling, the observer really is gone.
    pipe.edit(&template, 2, &[5, 6], "x", 1, &strat, Some(&cache))
        .unwrap();
    let t = sink.drain().unwrap();
    assert_eq!(t.spans.iter().filter(|s| s.cat == "kernel").count(), 0);
}

#[test]
fn pipeline_reuses_scratch_buffers() {
    let cfg = ModelConfig::tiny();
    let pipe = EditPipeline::new(&cfg).unwrap();
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 9);
    let cache = pipe.prime(&template, 3, false).unwrap();
    let strat = Strategy::MaskAware {
        use_cache: vec![true; cfg.blocks],
        kv: false,
    };
    // Warm the pool with one edit, then measure a second one.
    pipe.edit(&template, 3, &[5], "warm", 1, &strat, Some(&cache))
        .unwrap();
    let before = scratch::stats();
    pipe.edit(&template, 3, &[5], "measured", 1, &strat, Some(&cache))
        .unwrap();
    let after = scratch::stats();
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    assert!(
        hits > misses * 4,
        "scratch pool should serve most allocations after warmup: {hits} hits, {misses} misses"
    );
}

#[test]
fn sparse_scaffold_edit_identical_across_mask_ratios() {
    // The UNet preset exercises the sparse scaffold (ResBlock) path:
    // the template cache carries per-step scaffold outputs, and the
    // sparse path convolves only the dilated mask. Byte identity must
    // hold at every mask ratio, including the degenerate 0% (empty
    // plan: nothing to compute, template rows verbatim) and 100% (full
    // plan: the dense kernels, no replenishment).
    let cfg = ModelConfig::sd21_like();
    let pipe = EditPipeline::new(&cfg).unwrap();
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 17);
    let tokens = cfg.tokens();
    // ~7% of 64 tokens is 5 rows (one past a grid edge to cover
    // clipped dilation), plus the degenerate extremes.
    let ratios: [(&str, Vec<usize>); 3] = [
        ("0%", vec![]),
        ("7%", vec![0, 9, 10, 17, 18]),
        ("100%", (0..tokens).collect()),
    ];
    // kv:false keeps cached blocks on the cached-Y variant, which
    // tolerates an empty masked set (the KV variant's fused attention
    // rejects zero key rows).
    let strat = Strategy::MaskAware {
        use_cache: vec![true; cfg.blocks],
        kv: false,
    };
    let sparse_convs = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    for (label, masked) in &ratios {
        let outputs: Vec<Image> = PATHS
            .iter()
            .map(|&path| {
                with_compute_path(path, || {
                    let counter = sparse_convs.clone();
                    fps_tensor::ktrace::set_observer(Some(std::sync::Arc::new(move |ev| {
                        if ev.name == "sparse_conv3x3" {
                            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    })));
                    let cache = pipe.prime(&template, 4, true).unwrap();
                    let out = pipe
                        .edit(&template, 4, masked, "a red roof", 11, &strat, Some(&cache))
                        .unwrap()
                        .image;
                    fps_tensor::ktrace::set_observer(None);
                    out
                })
            })
            .collect();
        for (path, out) in PATHS.iter().zip(&outputs).skip(1) {
            assert_eq!(
                out, &outputs[0],
                "sd21 {label} mask output differs on {path:?} vs Scalar"
            );
        }
    }
    // The sparse scaffold genuinely ran for the partial mask on the
    // Sparse path (the identity above would also pass if every call
    // silently fell back to the dense scaffold).
    assert!(
        sparse_convs.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "sparse conv path never engaged"
    );
}
