//! Image-quality metrics for the FlashPS evaluation (Table 2).
//!
//! Three metrics, mirroring the paper's §6.1:
//!
//! - [`ssim()`] — the Structural Similarity Index, implemented in full
//!   (Gaussian-windowed local statistics) on luma images.
//! - [`fid`] — a Fréchet distance between feature distributions. The
//!   real FID uses Inception-v3 features; without pretrained networks
//!   we extract features from the toy diffusion model's own encoder
//!   ([`features`]), which preserves the comparative use in Table 2
//!   (every system is measured against the same reference set with the
//!   same feature extractor). The Fréchet math — means, covariances,
//!   and the matrix square root — is exact.
//! - [`clip_proxy`] — a CLIP-score stand-in: cosine alignment between a
//!   prompt embedding and a pooled image feature in the toy joint
//!   embedding space.

pub mod clip_proxy;
pub mod features;
pub mod fid;
pub mod ssim;

pub use clip_proxy::clip_proxy_score;
pub use features::FeatureExtractor;
pub use fid::frechet_distance;
pub use ssim::ssim;
