//! Fréchet distance between feature distributions.
//!
//! `FID(A, B) = ‖μ_A − μ_B‖² + tr(Σ_A + Σ_B − 2·sqrt(Σ_A Σ_B))`,
//! computed exactly via the symmetric eigendecomposition in
//! `fps-tensor`. `sqrt(Σ_A Σ_B)` is evaluated through the standard
//! symmetrization `sqrt(S_A) · Σ_B · sqrt(S_A)` trick so only symmetric
//! square roots are needed.

use fps_tensor::linalg::{sym_sqrt, trace};
use fps_tensor::ops::{matmul, mean_axis0, row_covariance};
use fps_tensor::{Tensor, TensorError};

/// Computes the Fréchet distance between two feature sets, each a
/// `[n_i, d]` tensor of row features.
///
/// # Errors
///
/// Returns tensor errors for empty inputs, mismatched feature
/// dimensions, or a numerically indefinite covariance product.
pub fn frechet_distance(a: &Tensor, b: &Tensor) -> Result<f64, TensorError> {
    if a.rank() != 2 || b.rank() != 2 || a.dims()[1] != b.dims()[1] {
        return Err(TensorError::ShapeMismatch {
            op: "frechet_distance",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mu_a = mean_axis0(a)?;
    let mu_b = mean_axis0(b)?;
    let cov_a = row_covariance(a)?;
    let cov_b = row_covariance(b)?;

    let mean_term: f64 = mu_a
        .data()
        .iter()
        .zip(mu_b.data().iter())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();

    // sqrt(Σ_A Σ_B) has the same trace as
    // sqrt(sqrt(Σ_A) Σ_B sqrt(Σ_A)), which is symmetric PSD.
    let sa = sym_sqrt(&cov_a)?;
    let inner = matmul(&matmul(&sa, &cov_b)?, &sa)?;
    let sqrt_inner = sym_sqrt(&inner)?;

    let tr = f64::from(trace(&cov_a)?) + f64::from(trace(&cov_b)?)
        - 2.0 * f64::from(trace(&sqrt_inner)?);
    // Floating-point noise can push the trace term slightly negative
    // for near-identical distributions.
    Ok((mean_term + tr).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_tensor::rng::DetRng;

    fn gaussian_set(n: usize, d: usize, mean: f32, scale: f32, seed: u64) -> Tensor {
        let mut rng = DetRng::new(seed);
        Tensor::randn([n, d], &mut rng)
            .scale(scale)
            .map(|v| v + mean)
    }

    #[test]
    fn identical_sets_have_zero_distance() {
        let a = gaussian_set(200, 5, 0.0, 1.0, 1);
        let d = frechet_distance(&a, &a).unwrap();
        assert!(d < 1e-3, "got {d}");
    }

    #[test]
    fn same_distribution_different_samples_small_distance() {
        let a = gaussian_set(2000, 4, 0.0, 1.0, 1);
        let b = gaussian_set(2000, 4, 0.0, 1.0, 2);
        let d = frechet_distance(&a, &b).unwrap();
        assert!(d < 0.05, "got {d}");
    }

    #[test]
    fn mean_shift_matches_analytic_value() {
        // Same covariance, means differ by δ in every coordinate:
        // FID ≈ d·δ².
        let a = gaussian_set(5000, 3, 0.0, 1.0, 3);
        let b = gaussian_set(5000, 3, 2.0, 1.0, 4);
        let d = frechet_distance(&a, &b).unwrap();
        assert!((d - 12.0).abs() < 1.0, "got {d}, expected ≈ 12");
    }

    #[test]
    fn scale_change_matches_analytic_value() {
        // Zero means, Σ_A = I, Σ_B = 4I in d dims:
        // tr(I + 4I − 2·sqrt(4I)) = d(1 + 4 − 4) = d.
        let a = gaussian_set(5000, 3, 0.0, 1.0, 5);
        let b = gaussian_set(5000, 3, 0.0, 2.0, 6);
        let d = frechet_distance(&a, &b).unwrap();
        assert!((d - 3.0).abs() < 0.5, "got {d}, expected ≈ 3");
    }

    #[test]
    fn distance_is_symmetric_and_monotone_in_shift() {
        let a = gaussian_set(1000, 4, 0.0, 1.0, 7);
        let near = gaussian_set(1000, 4, 0.5, 1.0, 8);
        let far = gaussian_set(1000, 4, 3.0, 1.0, 9);
        let d_near = frechet_distance(&a, &near).unwrap();
        let d_far = frechet_distance(&a, &far).unwrap();
        assert!(d_near < d_far);
        let d_ba = frechet_distance(&near, &a).unwrap();
        assert!((d_near - d_ba).abs() < 1e-2 * (1.0 + d_near));
    }

    #[test]
    fn shape_validation() {
        let a = Tensor::zeros([4, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(frechet_distance(&a, &b).is_err());
        let c = Tensor::zeros([4]);
        assert!(frechet_distance(&c, &c).is_err());
    }
}
