//! Structural Similarity Index (SSIM), Wang et al. 2004.
//!
//! Computed on luma with an 11×11 Gaussian window (σ = 1.5), the
//! standard configuration. Returns the mean SSIM over all window
//! positions.

use fps_diffusion::Image;

/// Gaussian window radius (11×11 window).
const RADIUS: i64 = 5;
/// Gaussian window sigma.
const SIGMA: f64 = 1.5;
/// Stabilizers for a dynamic range of 1.0: `(K1·L)²`, `(K2·L)²`.
const C1: f64 = 0.01 * 0.01;
const C2: f64 = 0.03 * 0.03;

/// Computes the mean SSIM between two images of identical dimensions.
///
/// Returns `None` when dimensions differ or either image is empty.
/// The result is 1.0 for identical images and decreases toward 0 (or
/// slightly below, for anti-correlated structure) as they diverge.
pub fn ssim(a: &Image, b: &Image) -> Option<f64> {
    if a.height() != b.height() || a.width() != b.width() {
        return None;
    }
    let (h, w) = (a.height(), a.width());
    if h == 0 || w == 0 {
        return None;
    }
    let la: Vec<f64> = a.to_luma().iter().map(|&v| f64::from(v)).collect();
    let lb: Vec<f64> = b.to_luma().iter().map(|&v| f64::from(v)).collect();

    // Precompute the normalized Gaussian kernel.
    let mut kernel = Vec::with_capacity(((2 * RADIUS + 1) * (2 * RADIUS + 1)) as usize);
    let mut ksum = 0.0;
    for dy in -RADIUS..=RADIUS {
        for dx in -RADIUS..=RADIUS {
            let wgt = (-((dy * dy + dx * dx) as f64) / (2.0 * SIGMA * SIGMA)).exp();
            kernel.push(wgt);
            ksum += wgt;
        }
    }
    for k in &mut kernel {
        *k /= ksum;
    }

    let mut total = 0.0;
    let mut count = 0usize;
    for cy in 0..h {
        for cx in 0..w {
            // Windowed means, variances, covariance with edge clamping.
            let mut mu_a = 0.0;
            let mut mu_b = 0.0;
            let mut idx = 0;
            for dy in -RADIUS..=RADIUS {
                let y = (cy as i64 + dy).clamp(0, h as i64 - 1) as usize;
                for dx in -RADIUS..=RADIUS {
                    let x = (cx as i64 + dx).clamp(0, w as i64 - 1) as usize;
                    let k = kernel[idx];
                    idx += 1;
                    mu_a += k * la[y * w + x];
                    mu_b += k * lb[y * w + x];
                }
            }
            let mut var_a = 0.0;
            let mut var_b = 0.0;
            let mut cov = 0.0;
            idx = 0;
            for dy in -RADIUS..=RADIUS {
                let y = (cy as i64 + dy).clamp(0, h as i64 - 1) as usize;
                for dx in -RADIUS..=RADIUS {
                    let x = (cx as i64 + dx).clamp(0, w as i64 - 1) as usize;
                    let k = kernel[idx];
                    idx += 1;
                    let da = la[y * w + x] - mu_a;
                    let db = lb[y * w + x] - mu_b;
                    var_a += k * da * da;
                    var_b += k * db * db;
                    cov += k * da * db;
                }
            }
            let s = ((2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2))
                / ((mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2));
            total += s;
            count += 1;
        }
    }
    Some(total / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_score_one() {
        let img = Image::template(24, 24, 1);
        let s = ssim(&img, &img).unwrap();
        assert!((s - 1.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn mismatched_dimensions_rejected() {
        let a = Image::zeros(8, 8);
        let b = Image::zeros(8, 9);
        assert!(ssim(&a, &b).is_none());
        assert!(ssim(&Image::zeros(0, 0), &Image::zeros(0, 0)).is_none());
    }

    #[test]
    fn small_perturbation_scores_high() {
        let a = Image::template(24, 24, 2);
        let mut b = a.clone();
        for v in b.data_mut().iter_mut() {
            *v = (*v + 0.005).min(1.0);
        }
        let s = ssim(&a, &b).unwrap();
        assert!(s > 0.97, "got {s}");
    }

    #[test]
    fn unrelated_images_score_lower() {
        let a = Image::template(24, 24, 3);
        let b = Image::template(24, 24, 400);
        let s = ssim(&a, &b).unwrap();
        assert!(s < 0.9, "got {s}");
        assert!(s > -1.0);
    }

    #[test]
    fn degradation_is_monotone() {
        // More noise ⇒ lower SSIM.
        let a = Image::template(24, 24, 4);
        let noisy = |scale: f32| {
            let mut img = a.clone();
            for (i, v) in img.data_mut().iter_mut().enumerate() {
                // Deterministic pseudo-noise.
                let n = ((i as f32 * 12.9898).sin() * 43_758.547).fract() - 0.5;
                *v = (*v + scale * n).clamp(0.0, 1.0);
            }
            img
        };
        let s_small = ssim(&a, &noisy(0.05)).unwrap();
        let s_large = ssim(&a, &noisy(0.4)).unwrap();
        assert!(
            s_small > s_large,
            "small-noise {s_small} should beat large-noise {s_large}"
        );
    }

    #[test]
    fn symmetric() {
        let a = Image::template(16, 16, 5);
        let b = Image::template(16, 16, 6);
        let ab = ssim(&a, &b).unwrap();
        let ba = ssim(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn flat_images_compare_by_luminance() {
        let a = Image::zeros(16, 16);
        let mut b = Image::zeros(16, 16);
        for v in b.data_mut().iter_mut() {
            *v = 1.0;
        }
        // Zero-variance images with different means: luminance term
        // dominates and is small.
        let s = ssim(&a, &b).unwrap();
        assert!(s < 0.1, "got {s}");
        let same = ssim(&a, &a).unwrap();
        assert!((same - 1.0).abs() < 1e-9);
    }
}
