//! Feature extraction for the Fréchet-distance and CLIP-proxy metrics.
//!
//! Real FID/CLIP use pretrained networks. The substitution (documented
//! in DESIGN.md) extracts features with the toy model's own machinery:
//! an image is VAE-encoded to latent tokens, projected through the
//! model's input projection, and pooled per feature channel. The
//! extractor is deterministic and *shared across all compared systems*,
//! which is what Table 2's comparisons need.

use fps_diffusion::config::ModelConfig;
use fps_diffusion::image::Image;
use fps_diffusion::vae::PatchVae;
use fps_diffusion::{DiffusionError, Result};
use fps_tensor::ops::matmul;
use fps_tensor::rng::DetRng;
use fps_tensor::Tensor;

/// Deterministic image-feature extractor.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    vae: PatchVae,
    /// `[latent_channels, feat_dim]` projection.
    proj: Tensor,
    feat_dim: usize,
    tokens: usize,
}

impl FeatureExtractor {
    /// Builds an extractor producing `feat_dim`-dimensional features
    /// for images matching `cfg`'s pixel dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidConfig`] for inconsistent
    /// configs or `feat_dim == 0`.
    pub fn new(cfg: &ModelConfig, feat_dim: usize) -> Result<Self> {
        if feat_dim == 0 {
            return Err(DiffusionError::InvalidConfig {
                reason: "feature dimension must be positive".into(),
            });
        }
        let mut rng = DetRng::new(cfg.weight_seed ^ 0xFEA7);
        Ok(Self {
            vae: PatchVae::new(cfg)?,
            proj: Tensor::xavier(cfg.latent_channels, feat_dim, &mut rng),
            feat_dim,
            tokens: cfg.tokens(),
        })
    }

    /// Feature dimensionality.
    pub fn feat_dim(&self) -> usize {
        self.feat_dim
    }

    /// Extracts one feature vector from an image: latent tokens are
    /// projected and mean/max-pooled per channel (the two pools are
    /// interleaved halves of the output).
    ///
    /// # Errors
    ///
    /// Propagates shape errors for images not matching the config.
    pub fn extract(&self, img: &Image) -> Result<Vec<f32>> {
        let latent = self.vae.encode(img)?;
        let mapped = matmul(&latent, &self.proj)?;
        // Token-pooled statistics: mean and mean-absolute per channel,
        // concatenation truncated to feat_dim.
        let mut mean = vec![0.0f32; self.feat_dim];
        let mut mabs = vec![0.0f32; self.feat_dim];
        for t in 0..self.tokens {
            let row = mapped.row(t)?;
            for (c, &v) in row.iter().enumerate() {
                mean[c] += v;
                mabs[c] += v.abs();
            }
        }
        let inv = 1.0 / self.tokens as f32;
        let mut out = Vec::with_capacity(self.feat_dim);
        for c in 0..self.feat_dim {
            // Interleave to keep both statistics at any feat_dim.
            if c % 2 == 0 {
                out.push(mean[c] * inv);
            } else {
                out.push(mabs[c] * inv);
            }
        }
        Ok(out)
    }

    /// Extracts features from many images as a `[n, feat_dim]` tensor.
    ///
    /// # Errors
    ///
    /// Propagates per-image extraction errors; fails on an empty input.
    pub fn extract_batch(&self, imgs: &[Image]) -> Result<Tensor> {
        if imgs.is_empty() {
            return Err(DiffusionError::InvalidConfig {
                reason: "feature batch needs at least one image".into(),
            });
        }
        let mut data = Vec::with_capacity(imgs.len() * self.feat_dim);
        for img in imgs {
            data.extend(self.extract(img)?);
        }
        Ok(Tensor::from_vec(data, [imgs.len(), self.feat_dim])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_is_deterministic_and_discriminative() {
        let cfg = ModelConfig::tiny();
        let fx = FeatureExtractor::new(&cfg, 8).unwrap();
        let a = Image::template(cfg.pixel_h(), cfg.pixel_w(), 1);
        let b = Image::template(cfg.pixel_h(), cfg.pixel_w(), 2);
        let fa1 = fx.extract(&a).unwrap();
        let fa2 = fx.extract(&a).unwrap();
        let fb = fx.extract(&b).unwrap();
        assert_eq!(fa1, fa2);
        assert_eq!(fa1.len(), 8);
        let diff: f32 = fa1.iter().zip(fb.iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-3, "different images must give different features");
    }

    #[test]
    fn batch_extraction_matches_single() {
        let cfg = ModelConfig::tiny();
        let fx = FeatureExtractor::new(&cfg, 6).unwrap();
        let imgs: Vec<Image> = (0..3)
            .map(|i| Image::template(cfg.pixel_h(), cfg.pixel_w(), i))
            .collect();
        let batch = fx.extract_batch(&imgs).unwrap();
        assert_eq!(batch.dims(), &[3, 6]);
        for (i, img) in imgs.iter().enumerate() {
            assert_eq!(batch.row(i).unwrap(), fx.extract(img).unwrap().as_slice());
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let cfg = ModelConfig::tiny();
        assert!(FeatureExtractor::new(&cfg, 0).is_err());
        let fx = FeatureExtractor::new(&cfg, 4).unwrap();
        assert!(fx.extract(&Image::zeros(3, 3)).is_err());
        assert!(fx.extract_batch(&[]).is_err());
    }
}
