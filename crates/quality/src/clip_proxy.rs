//! CLIP-score proxy: prompt/image alignment in the toy joint space.
//!
//! The real CLIP score embeds the prompt and the image with a
//! pretrained dual encoder and reports their cosine similarity (×100).
//! The proxy uses the toy pipeline's own prompt embedding as the text
//! side and a deterministic projection of image features as the image
//! side. Because every compared system edits with the *same* model
//! conditioned on the *same* prompt embedding, systems that track the
//! reference output closely score closer to the reference's alignment —
//! the comparative property Table 2 relies on.

use fps_diffusion::config::ModelConfig;
use fps_diffusion::embedding::embed_prompt;
use fps_diffusion::image::Image;
use fps_diffusion::Result;
use fps_tensor::ops::{cosine_similarity, mean_axis0};

use crate::features::FeatureExtractor;

/// Computes the CLIP-proxy alignment (scaled ×100, like CLIP scores)
/// between a prompt and an image.
///
/// # Errors
///
/// Propagates feature-extraction errors for mismatched image
/// dimensions.
pub fn clip_proxy_score(cfg: &ModelConfig, prompt: &str, img: &Image) -> Result<f64> {
    let fx = FeatureExtractor::new(cfg, cfg.hidden)?;
    let img_feat = fx.extract(img)?;
    let prompt_emb = embed_prompt(cfg, prompt);
    let text_feat = mean_axis0(&prompt_emb)?;
    let cos = cosine_similarity(&img_feat, text_feat.data())?;
    Ok(f64::from(cos) * 100.0)
}

/// Mean CLIP-proxy score over `(prompt, image)` pairs.
///
/// # Errors
///
/// Propagates per-pair errors; fails on empty input.
pub fn mean_clip_proxy(cfg: &ModelConfig, pairs: &[(&str, &Image)]) -> Result<f64> {
    if pairs.is_empty() {
        return Err(fps_diffusion::DiffusionError::InvalidConfig {
            reason: "clip proxy needs at least one pair".into(),
        });
    }
    let mut total = 0.0;
    for (prompt, img) in pairs {
        total += clip_proxy_score(cfg, prompt, img)?;
    }
    Ok(total / pairs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_is_bounded_and_deterministic() {
        let cfg = ModelConfig::tiny();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 1);
        let s1 = clip_proxy_score(&cfg, "a red hat", &img).unwrap();
        let s2 = clip_proxy_score(&cfg, "a red hat", &img).unwrap();
        assert_eq!(s1, s2);
        assert!((-100.0..=100.0).contains(&s1));
    }

    #[test]
    fn different_prompts_or_images_change_the_score() {
        let cfg = ModelConfig::tiny();
        let img_a = Image::template(cfg.pixel_h(), cfg.pixel_w(), 1);
        let img_b = Image::template(cfg.pixel_h(), cfg.pixel_w(), 2);
        let s_base = clip_proxy_score(&cfg, "a red hat", &img_a).unwrap();
        let s_prompt = clip_proxy_score(&cfg, "a blue car", &img_a).unwrap();
        let s_img = clip_proxy_score(&cfg, "a red hat", &img_b).unwrap();
        assert_ne!(s_base, s_prompt);
        assert_ne!(s_base, s_img);
    }

    #[test]
    fn mean_over_pairs() {
        let cfg = ModelConfig::tiny();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 3);
        let single = clip_proxy_score(&cfg, "x", &img).unwrap();
        let mean = mean_clip_proxy(&cfg, &[("x", &img), ("x", &img)]).unwrap();
        assert!((mean - single).abs() < 1e-12);
        assert!(mean_clip_proxy(&cfg, &[]).is_err());
    }

    #[test]
    fn wrong_image_shape_errors() {
        let cfg = ModelConfig::tiny();
        assert!(clip_proxy_score(&cfg, "x", &Image::zeros(1, 1)).is_err());
    }
}
