//! Criterion bench: masked transformer kernels vs mask ratio
//! (Fig. 15-left at benchmark rigor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fps_tensor::ops::{gelu, matmul, matmul_bt, softmax_rows};
use fps_tensor::rng::DetRng;
use fps_tensor::Tensor;

const L: usize = 256;
const H: usize = 128;

fn masked_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_attention");
    let mut rng = DetRng::new(1);
    let w = Tensor::xavier(H, H, &mut rng);
    for ratio in [0.1f64, 0.25, 0.5, 1.0] {
        let ml = ((ratio * L as f64) as usize).max(1);
        let x = Tensor::randn([ml, H], &mut rng);
        let x_full = Tensor::randn([L, H], &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, _| {
            b.iter(|| {
                // Y-variant shape: masked Q over full-length K/V.
                let q = matmul(&x, &w).expect("q");
                let k = matmul(&x_full, &w).expect("k");
                let v = matmul(&x_full, &w).expect("v");
                let probs = softmax_rows(&matmul_bt(&q, &k).expect("scores")).expect("sm");
                matmul(&probs, &v).expect("ctx")
            })
        });
    }
    group.finish();
}

fn masked_ffn(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_ffn");
    let mut rng = DetRng::new(2);
    let w1 = Tensor::xavier(H, 4 * H, &mut rng);
    let w2 = Tensor::xavier(4 * H, H, &mut rng);
    for ratio in [0.1f64, 0.25, 0.5, 1.0] {
        let ml = ((ratio * L as f64) as usize).max(1);
        let x = Tensor::randn([ml, H], &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, _| {
            b.iter(|| matmul(&gelu(&matmul(&x, &w1).expect("ff1")), &w2).expect("ff2"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = masked_attention, masked_ffn
}
criterion_main!(benches);
