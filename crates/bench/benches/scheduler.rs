//! Criterion bench: Algorithm 2 scheduling decisions (the §6.6 claim
//! of 0.6 ms per decision — ours is far cheaper since the regression
//! models are closed-form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flashps::MaskAwareRouter;
use fps_baselines::eval_setup;
use fps_serving::router::{Router, WorkerView};
use fps_serving::worker::OutstandingReq;
use fps_simtime::SimTime;
use fps_workload::trace::{MaskShapeSpec, RequestSpec};

fn views(workers: usize, outstanding: usize, tokens: usize) -> Vec<WorkerView> {
    (0..workers)
        .map(|id| WorkerView {
            id,
            outstanding: (0..outstanding)
                .map(|k| OutstandingReq {
                    mask_ratio: 0.05 + 0.04 * (k as f64),
                    steps_left: 10 + 3 * k,
                })
                .collect(),
            max_batch: 8,
            model_tokens: tokens,
            health: fps_serving::worker::WorkerHealth::Healthy,
        })
        .collect()
}

fn route_decision(c: &mut Criterion) {
    let setup = &eval_setup()[2];
    let cost = setup.cost_model();
    let req = RequestSpec {
        id: 0,
        arrival_ns: 0,
        template_id: 0,
        mask_ratio: 0.15,
        mask_shape: MaskShapeSpec::Blob,
        seed: 0,
    };
    let mut group = c.benchmark_group("mask_aware_route");
    for workers in [4usize, 8, 32] {
        let ws = views(workers, 4, cost.model.tokens());
        let mut router = MaskAwareRouter::new(cost.clone()).expect("router");
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| router.route(&req, &ws, SimTime::ZERO))
        });
    }
    group.finish();
}

criterion_group!(benches, route_decision);
criterion_main!(benches);
