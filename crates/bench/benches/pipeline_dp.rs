//! Criterion bench: Algorithm 1's pipeline DP at realistic block
//! counts (the §6.6 "negligible overhead" claim, O(N) per the paper;
//! our exact uniform DP is O(N²), still microseconds at N ≤ 57).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fps_maskcache::pipeline::{plan_general, plan_uniform};
use fps_maskcache::BlockCosts;
use fps_simtime::SimDuration;

fn costs(i: u64) -> BlockCosts {
    BlockCosts {
        compute_cached: SimDuration::from_micros(800 + (i % 5) * 60),
        compute_full: SimDuration::from_micros(4200 + (i % 3) * 150),
        load: SimDuration::from_micros(900 + (i % 7) * 80),
    }
}

fn uniform_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_uniform");
    for n in [16usize, 24, 57] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| plan_uniform(n, costs(0)))
        });
    }
    group.finish();
}

fn general_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_general");
    for n in [16usize, 24, 57] {
        let v: Vec<BlockCosts> = (0..n as u64).map(costs).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| plan_general(&v))
        });
    }
    group.finish();
}

criterion_group!(benches, uniform_dp, general_dp);
criterion_main!(benches);
