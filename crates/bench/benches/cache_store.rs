//! Criterion bench: hierarchical activation store operations.

use criterion::{criterion_group, criterion_main, Criterion};
use fps_maskcache::store::{HierarchicalStore, StoreConfig};
use fps_simtime::SimTime;

fn store_with(templates: u64, host_fits: u64) -> HierarchicalStore {
    let per = 1u64 << 30;
    let mut s = HierarchicalStore::new(StoreConfig {
        host_capacity: host_fits * per,
        disk_capacity: u64::MAX,
        disk_read_bw: 2.0 * (1u64 << 30) as f64,
    });
    for id in 0..templates {
        s.insert(id, per, SimTime::ZERO, None).expect("insert");
    }
    s
}

fn host_hit_fetch(c: &mut Criterion) {
    c.bench_function("store_fetch_host_hit", |b| {
        let mut s = store_with(8, 16);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 8;
            s.fetch(i, SimTime::from_nanos(i)).expect("fetch")
        })
    });
}

fn eviction_pressure(c: &mut Criterion) {
    c.bench_function("store_insert_with_eviction", |b| {
        let mut s = store_with(4, 4);
        let mut id = 100u64;
        b.iter(|| {
            id += 1;
            s.insert(id, 1 << 30, SimTime::from_nanos(id), None)
                .expect("insert")
        })
    });
}

fn disk_promote(c: &mut Criterion) {
    c.bench_function("store_fetch_disk_promote", |b| {
        // Host fits 1; every alternating fetch demotes/promotes.
        let mut s = store_with(2, 1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s.fetch(i % 2, SimTime::from_nanos(i)).expect("fetch")
        })
    });
}

criterion_group!(benches, host_hit_fetch, eviction_pressure, disk_promote);
criterion_main!(benches);
