//! Criterion bench: one numeric denoising step under each serving
//! strategy (the real-computation counterpart of Fig. 15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fps_diffusion::{EditPipeline, Image, ModelConfig, Strategy};

fn strategies(blocks: usize) -> Vec<(&'static str, Strategy)> {
    vec![
        ("diffusers", Strategy::FullRecompute),
        (
            "flashps",
            Strategy::MaskAware {
                use_cache: vec![true; blocks],
                kv: false,
            },
        ),
        ("fisedit", Strategy::MaskedOnly),
    ]
}

fn denoise_step(c: &mut Criterion) {
    let cfg = ModelConfig::sdxl_like();
    let pipe = EditPipeline::new(&cfg).expect("pipeline");
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 3);
    let cache = pipe.prime(&template, 1, false).expect("prime");
    // A 25% rectangular mask on the latent grid.
    let masked: Vec<usize> = (0..cfg.tokens())
        .filter(|i| {
            let y = i / cfg.latent_w;
            let x = i % cfg.latent_w;
            y < cfg.latent_h / 2 && x < cfg.latent_w / 2
        })
        .collect();
    let mut group = c.benchmark_group("denoise_step");
    group.sample_size(20);
    for (name, strategy) in strategies(cfg.blocks) {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter_batched(
                || {
                    pipe.begin(&template, 1, &masked, "bench", 1, strategy.clone())
                        .expect("begin")
                },
                |mut session| pipe.step(&mut session, Some(&cache)).expect("step"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, denoise_step);
criterion_main!(benches);
