//! Routing hot-path micro-benchmark: worker-view construction and the
//! health-aware fast path.
//!
//! Both execution planes refresh a `Vec<WorkerView>` snapshot of
//! per-worker outstanding work before every routing decision. This
//! bench measures the two ways to build that snapshot:
//!
//! - **fresh** — allocate a new view vector (and a new outstanding
//!   vector per worker) on every route, the pre-refactor idiom;
//! - **scratch** — reuse one persistent buffer, `clear()` + `extend()`
//!   per worker, the idiom `ClusterSim::fill_views` and the threaded
//!   server's `ControlState::route_and_ledger` now share.
//!
//! It also measures [`HealthAwareRouter`]'s two paths: the all-healthy
//! steady state (borrowed slice, no clone) against the degraded path
//! (one worker down, filtered clone per call).
//!
//! Flags: `--smoke` shrinks repetitions and writes nothing (used by
//! `scripts/check.sh`); the full run writes `results/bench_routing.txt`.

use std::time::Instant;

use fps_bench::save_artifact;
use fps_metrics::Table;
use fps_serving::worker::OutstandingReq;
use fps_serving::{
    HealthAwareRouter, LeastLoadedRouter, Router, TokenCountRouter, WorkerHealth, WorkerView,
};
use fps_simtime::SimTime;
use fps_workload::trace::MaskShapeSpec;
use fps_workload::RequestSpec;

/// Cluster shape: a mid-size fleet with realistic batch occupancy.
const WORKERS: usize = 8;
const OUTSTANDING_PER_WORKER: usize = 12;
const MODEL_TOKENS: usize = 4096;

fn spec(id: u64) -> RequestSpec {
    RequestSpec {
        id,
        arrival_ns: 0,
        template_id: id % 4,
        mask_ratio: 0.25,
        mask_shape: MaskShapeSpec::Rect,
        seed: id,
    }
}

/// The ledger both planes route over: per-worker outstanding work.
fn ledger() -> Vec<Vec<OutstandingReq>> {
    (0..WORKERS)
        .map(|w| {
            (0..OUTSTANDING_PER_WORKER)
                .map(|i| OutstandingReq {
                    mask_ratio: 0.05 + 0.9 * ((w * 7 + i * 3) % 10) as f64 / 10.0,
                    steps_left: 1 + (w + i) % 50,
                })
                .collect()
        })
        .collect()
}

fn fresh_views(ledger: &[Vec<OutstandingReq>], health: &[WorkerHealth]) -> Vec<WorkerView> {
    ledger
        .iter()
        .enumerate()
        .map(|(w, outstanding)| WorkerView {
            id: w,
            outstanding: outstanding.clone(),
            max_batch: 16,
            model_tokens: MODEL_TOKENS,
            health: health[w],
        })
        .collect()
}

fn fill_views(
    views: &mut Vec<WorkerView>,
    ledger: &[Vec<OutstandingReq>],
    health: &[WorkerHealth],
) {
    views.truncate(ledger.len());
    while views.len() < ledger.len() {
        views.push(WorkerView {
            id: 0,
            outstanding: Vec::new(),
            max_batch: 0,
            model_tokens: 0,
            health: WorkerHealth::Healthy,
        });
    }
    for (w, (v, outstanding)) in views.iter_mut().zip(ledger.iter()).enumerate() {
        v.id = w;
        v.max_batch = 16;
        v.model_tokens = MODEL_TOKENS;
        v.health = health[w];
        v.outstanding.clear();
        v.outstanding.extend(outstanding.iter().cloned());
    }
}

/// Best-of-passes nanoseconds per route over `routes` calls of `f`.
fn time_ns_per_route<F: FnMut(u64) -> usize>(passes: usize, routes: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0usize;
    for _ in 0..passes {
        let t0 = Instant::now();
        for i in 0..routes {
            sink = sink.wrapping_add(f(i as u64));
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / routes as f64);
    }
    // Keep the routed ids observable so the loop is not elided.
    assert!(sink < usize::MAX);
    best
}

type RouterFactory = fn() -> Box<dyn Router>;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (passes, routes) = if smoke { (2, 200) } else { (7, 20_000) };

    let ledger = ledger();
    let all_healthy = vec![WorkerHealth::Healthy; WORKERS];
    let mut one_down = all_healthy.clone();
    one_down[WORKERS / 2] = WorkerHealth::Down;

    let mut table = Table::new(&["case", "router", "ns/route", "vs fresh"]);
    let mut summary: Vec<(String, f64)> = Vec::new();

    let routers: [(&str, RouterFactory); 2] = [
        ("request-count", || {
            Box::new(HealthAwareRouter::new(LeastLoadedRouter))
        }),
        ("token-count", || {
            Box::new(HealthAwareRouter::new(TokenCountRouter))
        }),
    ];
    for (router_name, make) in routers {
        // fresh: allocate views every route (pre-refactor idiom).
        let mut router = make();
        let fresh = time_ns_per_route(passes, routes, |i| {
            let views = fresh_views(&ledger, &all_healthy);
            router.route(&spec(i), &views, SimTime::ZERO)
        });
        // scratch: persistent buffer, clear + extend (current idiom).
        let mut router = make();
        let mut buf = Vec::new();
        let scratch = time_ns_per_route(passes, routes, |i| {
            fill_views(&mut buf, &ledger, &all_healthy);
            router.route(&spec(i), &buf, SimTime::ZERO)
        });
        // degraded: scratch fill, but one worker down forces the
        // health wrapper onto its filtered-clone slow path.
        let mut router = make();
        let mut buf = Vec::new();
        let degraded = time_ns_per_route(passes, routes, |i| {
            fill_views(&mut buf, &ledger, &one_down);
            router.route(&spec(i), &buf, SimTime::ZERO)
        });

        for (case, ns) in [
            ("fresh-alloc", fresh),
            ("scratch", scratch),
            ("scratch+1down", degraded),
        ] {
            table.row(&[
                case.to_string(),
                router_name.to_string(),
                format!("{ns:.0}"),
                format!("{:.2}x", fresh / ns),
            ]);
        }
        summary.push((format!("{router_name} scratch speedup"), fresh / scratch));
    }

    let rendered = format!(
        "Routing hot path: {WORKERS} workers x {OUTSTANDING_PER_WORKER} outstanding, \
         {routes} routes/pass, best of {passes} passes\n\n{}",
        table.render()
    );
    println!("{rendered}");
    for (label, speedup) in &summary {
        println!("{label}: {speedup:.2}x");
        if !smoke {
            // The refactor's point: reusing scratch must never be
            // slower than allocating fresh views every route.
            assert!(
                *speedup > 0.9,
                "{label} regressed below parity ({speedup:.2}x)"
            );
        }
    }
    if !smoke {
        save_artifact("bench_routing.txt", &rendered);
    }
}
