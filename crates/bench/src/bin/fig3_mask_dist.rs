//! Fig. 3 — mask-ratio distributions of the production trace, the
//! public trace, and VITON-HD.
//!
//! Reproduces: means ≈ 0.11 / 0.19 / 0.35 with wide per-request
//! variation.

use fps_bench::save_artifact;
use fps_metrics::{Histogram, Table};
use fps_workload::RatioDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let samples = 200_000;
    let mut out = String::new();
    let mut table = Table::new(&["trace", "mean", "p50", "p95", "paper-mean"]);
    for (dist, paper_mean) in [
        (RatioDistribution::ProductionTrace, 0.11),
        (RatioDistribution::PublicTrace, 0.19),
        (RatioDistribution::VitonHd, 0.35),
    ] {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hist = Histogram::new(0.0, 1.0, 20).expect("valid range");
        let mut values = Vec::with_capacity(samples);
        for _ in 0..samples {
            let v = dist.sample(&mut rng);
            hist.record(v);
            values.push(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p50 = values[samples / 2];
        let p95 = values[samples * 95 / 100];
        table.row(&[
            format!("{dist:?}"),
            format!("{:.3}", hist.mean()),
            format!("{p50:.3}"),
            format!("{p95:.3}"),
            format!("{paper_mean:.2}"),
        ]);
        out.push_str(&format!("\n== {dist:?} (mean {:.3}) ==\n", hist.mean()));
        out.push_str(&hist.ascii(48));
    }
    let header = "Fig. 3 reproduction: mask-ratio distributions\n\n";
    let rendered = format!("{header}{}\n{out}", table.render());
    println!("{rendered}");
    save_artifact("fig3_mask_dist.txt", &rendered);
}
