//! Fig. 13 / Fig. 1 — visual examples per system.
//!
//! Edits one template with an irregular mask under every strategy and
//! writes the outputs as PPM images (plus the template and a mask
//! visualization) into the results directory, with per-strategy SSIM
//! against the Diffusers reference. The naive-disregard output
//! reproduces the distorted rightmost example of Fig. 1.

use fps_baselines::SystemKind;
use fps_bench::{mask_for, save_artifact, save_binary_artifact};
use fps_diffusion::{Image, ModelConfig};
use fps_metrics::Table;
use fps_quality::ssim;
use fps_workload::MaskShape;

fn main() {
    let cfg = ModelConfig::sdxl_like();
    // Capture K/V at priming so the Fig. 7 variant can run too.
    let mut config = flashps::FlashPsConfig::new(cfg.clone());
    config.capture_kv = true;
    let mut system = flashps::FlashPs::new(config).expect("system");
    system
        .register_template(0, &Image::template(cfg.pixel_h(), cfg.pixel_w(), 5))
        .expect("register");
    let mask = mask_for(&cfg, 0.18, MaskShape::Blob, 21);
    let prompt = "replace with a red scarf";
    let seed = 5;

    // Template and mask visualization.
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 5);
    save_binary_artifact("fig13_template.ppm", &template.to_ppm());
    let mut mask_vis = template.clone();
    for y in 0..cfg.pixel_h() {
        for x in 0..cfg.pixel_w() {
            if mask.get(y, x) {
                mask_vis.set_pixel(y, x, [1.0, 0.1, 0.1]);
            }
        }
    }
    save_binary_artifact("fig13_mask.ppm", &mask_vis.to_ppm());

    let reference = system
        .edit_with_strategy(
            0,
            &mask,
            prompt,
            seed,
            &SystemKind::Diffusers.numeric_strategy(&cfg, None),
        )
        .expect("reference");
    save_binary_artifact("fig13_diffusers.ppm", &reference.image.to_ppm());

    let mut table = Table::new(&["system", "SSIM-vs-diffusers", "steps-skipped"]);
    table.row_strs(&["diffusers", "1.000 (reference)", "0"]);
    for sys_kind in [
        SystemKind::FlashPs,
        SystemKind::FlashPsKv,
        SystemKind::FisEdit,
        SystemKind::TeaCache,
        SystemKind::Naive,
    ] {
        let strategy = match sys_kind {
            SystemKind::FlashPs | SystemKind::FlashPsKv => {
                sys_kind.numeric_strategy(&cfg, Some(system.plan_for_ratio(mask.ratio())))
            }
            _ => sys_kind.numeric_strategy(&cfg, None),
        };
        let out = system
            .edit_with_strategy(0, &mask, prompt, seed, &strategy)
            .expect("edit");
        let s = ssim(&out.image, &reference.image).expect("ssim");
        save_binary_artifact(
            &format!("fig13_{}.ppm", sys_kind.label()),
            &out.image.to_ppm(),
        );
        table.row(&[
            sys_kind.label().into(),
            format!("{s:.3}"),
            format!("{}", out.steps_skipped),
        ]);
    }
    let out = format!(
        "Fig. 13 / Fig. 1 reproduction: visual examples (sdxl-like, blob mask {:.0}%)\n\n{}\n\
         FlashPS sits closest to the reference; naive disregard (Fig. 1-rightmost)\n\
         distorts the masked region because it generates without template context.\n\
         PPM images are in the results directory.\n",
        mask.ratio() * 100.0,
        table.render()
    );
    println!("{out}");
    save_artifact("fig13_examples.txt", &out);
}
