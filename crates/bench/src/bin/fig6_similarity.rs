//! Fig. 6 — the empirical basis of mask-aware caching, measured on the
//! numeric substrate.
//!
//! Left: cosine similarity of block-output activations between two
//! different edit requests on the same template, split by
//! masked/unmasked tokens. Unmasked activations should be highly
//! similar across requests (they are what FlashPS caches); masked
//! activations diverge.
//!
//! Right: the attention-probability block structure — masked queries
//! attend mostly to masked keys (③), unmasked to unmasked (①), with
//! weak cross-terms (②, ④).

use fps_bench::{save_artifact, toy_models};
use fps_diffusion::embedding::embed_prompt;
use fps_diffusion::sampler::noise_to_level;
use fps_diffusion::{EditPipeline, Image};
use fps_metrics::Table;
use fps_tensor::ops::{cosine_similarity, gather_rows, scatter_rows_into};
use fps_tensor::rng::DetRng;
use fps_tensor::Tensor;

fn main() {
    let mut out =
        String::from("Fig. 6 reproduction: activation similarity & attention structure\n\n");
    for cfg in toy_models() {
        let pipe = EditPipeline::new(&cfg).expect("valid config");
        let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 77);

        // A rectangular mask covering the upper-left quadrant interior.
        let masked: Vec<usize> = (0..cfg.tokens())
            .filter(|i| {
                let y = i / cfg.latent_w;
                let x = i % cfg.latent_w;
                y >= cfg.latent_h / 4
                    && y < cfg.latent_h / 2
                    && x >= cfg.latent_w / 4
                    && x < cfg.latent_w / 2
            })
            .collect();
        assert!(!masked.is_empty());
        let unmasked: Vec<usize> = (0..cfg.tokens()).filter(|i| !masked.contains(i)).collect();

        // Two requests on the same template at the same denoising step:
        // by the inpainting invariant their unmasked latent rows are
        // identical (the re-noised template) while masked rows carry
        // request-specific content. Capture both requests' per-block
        // activations with the full computation.
        let probe_step = cfg.steps / 2;
        let t = pipe.schedule().t_norm(probe_step);
        let abar = pipe.schedule().abar(probe_step);
        let z = pipe.vae().encode(&template).expect("encode");
        let template_noise = Tensor::randn(
            [cfg.tokens(), cfg.latent_channels],
            &mut DetRng::new(0xBA5E),
        );
        let base = noise_to_level(&z, &template_noise, abar).expect("noise");
        let make_latent = |seed: u64| {
            let mut x = base.clone();
            let req = Tensor::randn([cfg.tokens(), cfg.latent_channels], &mut DetRng::new(seed));
            let rows = gather_rows(&req, &masked).expect("gather");
            scatter_rows_into(&mut x, &rows, &masked).expect("scatter");
            x
        };
        let prompt_a = embed_prompt(&cfg, "add red flowers");
        let prompt_b = embed_prompt(&cfg, "paint a blue sky");
        let model = pipe.model();
        let (_, cap_a) = model
            .predict_full(&make_latent(11), t, &prompt_a, false)
            .expect("predict");
        let (_, cap_b) = model
            .predict_full(&make_latent(22), t, &prompt_b, false)
            .expect("predict");

        // Left panel: per-block cosine similarity, masked vs unmasked.
        let mut table = Table::new(&["block", "unmasked-cos", "masked-cos"]);
        let mut min_unmasked: f32 = 1.0;
        let mut sum_masked = 0.0f32;
        for b in 0..cfg.blocks {
            let ya = &cap_a.blocks[b].y;
            let yb = &cap_b.blocks[b].y;
            let mean_cos = |idx: &[usize]| -> f32 {
                let mut acc = 0.0;
                for &i in idx {
                    acc += cosine_similarity(ya.row(i).expect("row"), yb.row(i).expect("row"))
                        .expect("cos");
                }
                acc / idx.len() as f32
            };
            let cu = mean_cos(&unmasked);
            let cm = mean_cos(&masked);
            min_unmasked = min_unmasked.min(cu);
            sum_masked += cm;
            table.row(&[format!("{b}"), format!("{cu:.4}"), format!("{cm:.4}")]);
        }
        let mean_masked = sum_masked / cfg.blocks as f32;
        out.push_str(&format!("== {} (probe step {probe_step}) ==\n", cfg.name));
        out.push_str(&table.render());
        out.push_str(&format!(
            "unmasked-token activations stay similar across requests (min {min_unmasked:.3});\n\
             masked-token activations diverge (mean {mean_masked:.3}).\n",
        ));

        // Right panel: attention quadrant masses at a middle block.
        let probs = model
            .attention_probe(&make_latent(11), t, &prompt_a, cfg.blocks / 2)
            .expect("probe");
        let quad = |qs: &[usize], ks: &[usize]| -> f32 {
            let mut acc = 0.0;
            for &q in qs {
                for &k in ks {
                    acc += probs.at(&[q, k]).expect("prob");
                }
            }
            // Normalized per query row, so a query group's two
            // quadrants sum to 1.
            acc / qs.len() as f32
        };
        let q1 = quad(&unmasked, &unmasked);
        let q2 = quad(&unmasked, &masked);
        let q3 = quad(&masked, &masked);
        let q4 = quad(&masked, &unmasked);
        let mask_frac = masked.len() as f32 / cfg.tokens() as f32;
        out.push_str(&format!(
            "attention mass: unmasked→unmasked(①) {q1:.3} | unmasked→masked(②) {q2:.3}\n\
             \u{20}               masked→masked(③)   {q3:.3} | masked→unmasked(④) {q4:.3}\n\
             (mask covers {:.0}% of tokens; uniform attention would give ②={:.3}, ③={:.3})\n\n",
            mask_frac * 100.0,
            mask_frac,
            mask_frac
        ));
    }
    out.push_str(
        "Note: the left panel (activation similarity of unmasked tokens, the property\n\
         mask-aware caching relies on) reproduces the paper's finding — it follows from\n\
         the inpainting invariant and holds even with untrained weights. The right\n\
         panel's *excess* attention locality (masked↔masked above the uniform baseline)\n\
         is a property of trained attention and does not emerge under random weights;\n\
         see EXPERIMENTS.md for this documented substitution gap.\n",
    );
    println!("{out}");
    save_artifact("fig6_similarity.txt", &out);
}
