//! Table 1 — FLOP analysis of mask-aware computation.
//!
//! Verifies the paper's per-operator analysis empirically: the numeric
//! pipeline's measured FLOP counts under the mask-aware strategy track
//! the `1/m` speedup for token-wise operators and the `1/m²`-to-`1/m`
//! band for attention, and the cache shapes match `(B, (1-m)·L, H)`.

use fps_bench::{save_artifact, toy_models};
use fps_diffusion::flops::{
    block_flops, masked_tokens, step_flops_full, step_flops_masked_kv, step_flops_masked_only,
    step_flops_masked_y,
};
use fps_diffusion::{EditPipeline, Image, Strategy};
use fps_metrics::Table;

fn main() {
    let mut out = String::from("Table 1 reproduction: FLOP and cache-size analysis\n\n");

    // Analytic per-operator speedups: Table 1's rows are the
    // query-side operators — feed-forward `(XW1)W2`, linear projection
    // `XW`, and scaled attention `QK^T` — each computing only masked
    // rows, so their FLOP speedup is exactly 1/m (attention row: 1/m
    // per query row; 1/m² when keys are also restricted).
    let mut table = Table::new(&[
        "model",
        "mask",
        "op-speedup",
        "1/m",
        "stepY",
        "stepKV",
        "stepMaskedOnly",
        "cache/block(MiB)",
        "(1-m)LH*4(MiB)",
    ]);
    for cfg in [
        fps_diffusion::ModelConfig::paper_sd21(),
        fps_diffusion::ModelConfig::paper_sdxl(),
        fps_diffusion::ModelConfig::paper_flux(),
    ] {
        for m in [0.1, 0.2, 0.5] {
            let ml = masked_tokens(&cfg, m);
            let l = cfg.tokens();
            let h = cfg.hidden as u64;
            // Per-operator: feed-forward FLOPs on masked vs all rows.
            let ffn_full = (2 * 2 * l as u64 * h * (cfg.ffn_mult as u64 * h)) as f64;
            let ffn_masked = (2 * 2 * ml as u64 * h * (cfg.ffn_mult as u64 * h)) as f64;
            let op_speedup = ffn_full / ffn_masked;
            // Table 1 claim: per-operator speedup is 1/m.
            assert!(
                (op_speedup - 1.0 / m).abs() < 0.1 / m,
                "op speedup {op_speedup} vs 1/m {}",
                1.0 / m
            );
            let full = step_flops_full(&cfg, 1) as f64;
            let step_y = full / step_flops_masked_y(&cfg, 1, m) as f64;
            let step_kv = full / step_flops_masked_kv(&cfg, 1, m) as f64;
            let step_mo = full / step_flops_masked_only(&cfg, 1, m) as f64;
            // The Y variant keeps the full-length K/V projection, so
            // its step speedup is below 1/m; masked-only approaches
            // the attention bound.
            assert!(step_y < step_kv && step_kv <= step_mo + 1e-9);
            assert!(step_mo > 0.7 / m, "masked-only speedup {step_mo} at m={m}");
            let cache = cfg.cache_bytes_per_block(m) as f64 / (1 << 20) as f64;
            let expected =
                ((1.0 - m) * cfg.tokens() as f64 * cfg.hidden as f64 * 4.0) / (1 << 20) as f64;
            // Cache shape is exactly (1-m)·L × H × 4 bytes.
            assert!((cache - expected).abs() < 0.05 * expected + 0.01);
            table.row(&[
                cfg.name.clone(),
                format!("{m:.1}"),
                format!("{op_speedup:.1}x"),
                format!("{:.1}x", 1.0 / m),
                format!("{step_y:.2}x"),
                format!("{step_kv:.2}x"),
                format!("{step_mo:.2}x"),
                format!("{cache:.1}"),
                format!("{expected:.1}"),
            ]);
        }
    }
    out.push_str(&format!(
        "== analytic (paper-scale models) ==\n{}\n",
        table.render()
    ));

    // Empirical FLOP accounting from the numeric pipeline.
    let mut table = Table::new(&["model", "mask", "measured-speedup", "analytic-speedup"]);
    for cfg in toy_models() {
        let pipe = EditPipeline::new(&cfg).expect("valid config");
        let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 1);
        let cache = pipe.prime(&template, 1, false).expect("prime");
        let full = pipe
            .edit(&template, 1, &[0], "p", 1, &Strategy::FullRecompute, None)
            .expect("edit");
        for frac in [0.125, 0.25, 0.5] {
            let count = ((cfg.tokens() as f64 * frac) as usize).max(1);
            let masked: Vec<usize> = (0..count).collect();
            let m = count as f64 / cfg.tokens() as f64;
            let aware = pipe
                .edit(
                    &template,
                    1,
                    &masked,
                    "p",
                    1,
                    &Strategy::MaskAware {
                        use_cache: vec![true; cfg.blocks],
                        kv: false,
                    },
                    Some(&cache),
                )
                .expect("edit");
            let measured = full.flops as f64 / aware.flops as f64;
            let analytic = step_flops_full(&cfg, 1) as f64 / step_flops_masked_y(&cfg, 1, m) as f64;
            table.row(&[
                cfg.name.clone(),
                format!("{m:.3}"),
                format!("{measured:.2}x"),
                format!("{analytic:.2}x"),
            ]);
            assert!(
                (measured - analytic).abs() / analytic < 0.02,
                "pipeline accounting must match the analytic model"
            );
        }
        // Per-block sanity: Q-side reduction is exactly linear.
        let ml = masked_tokens(&cfg, 0.25);
        let l = cfg.tokens();
        let b_full = block_flops(&cfg, l, l, l);
        let b_masked = block_flops(&cfg, ml, l, l);
        assert!(b_masked < b_full);
    }
    out.push_str(&format!(
        "== empirical (numeric pipeline) ==\n{}",
        table.render()
    ));
    out.push_str(
        "\nEvery operator family matches Table 1: token-wise ops scale with 1/m,\n\
         attention with up to 1/m², cache shape is (B, (1-m)·L, H).\n",
    );
    println!("{out}");
    save_artifact("table1_flops.txt", &out);
}
