//! Fleet chaos: goodput recovery under a seeded shard-crash storm,
//! with and without replicated activation caches.
//!
//! One seeded [`FleetTrace`] (Zipf-skewed, two tenants) is played
//! through a five-shard fleet while a deterministic
//! [`FleetFaultProfile::CrashStorm`] plan crashes shards mid-run. The
//! storm is identical across arms; the only difference is the cache
//! layer's fault posture:
//!
//! - **replicated** — R=2 activation replicas with breaker-guarded
//!   failover and re-priming of moved templates at each membership
//!   change.
//! - **no-reprime** — R=2 replicas but churn rebalancing only
//!   retargets the directory; new owners start cold (ablation).
//! - **no-replica** — R=1 baseline: a crash wipes the only copy, every
//!   post-crash miss recomputes the full latent.
//!
//! Four claims are asserted every run (smoke included, so
//! `scripts/check.sh` gates them):
//!
//! 1. **Bounded recovery** — the replicated arm's goodput@SLO timeline
//!    dips at the first crash and recovers to ≥90% of its pre-fault
//!    baseline within a bounded window.
//! 2. **Replication wins** — the replicated arm strictly beats the
//!    no-replica baseline on goodput@SLO and on effective cache hit
//!    rate (local + failover), under the *same* storm and retry
//!    budget.
//! 3. **Replays are byte-identical** — every arm runs twice on the
//!    calendar-queue scheduler and once on the binary heap; all three
//!    reports must serialize to the same bytes, faults included.
//! 4. **Nothing is silently dropped** — every accepted request is
//!    accounted as completed, shed, deadline-rejected, crash-failed,
//!    or parked-failed (the simulator also self-asserts this).
//!
//! Flags: `--smoke` shrinks the trace and writes no artifacts; the
//! full run saves `results/fig_chaos_fleet.txt` and
//! `results/fig_chaos_fleet.json`.

use fps_bench::save_artifact;
use fps_chaos::FleetFaultProfile;
use fps_fleet::{FleetConfig, FleetReport, FleetSim, RouteStrategy};
use fps_json::{Json, ToJson};
use fps_metrics::Table;
use fps_simtime::SimTime;
use fps_workload::{FleetTrace, FleetTraceConfig, TenantSpec};

const SHARDS: u32 = 5;
const STORM_SEED: u64 = 0xC4A0_5EED;

/// One experiment arm: a label plus the cache-layer fault posture.
struct Arm {
    label: &'static str,
    replicas: usize,
    reprime_on_churn: bool,
}

const ARMS: &[Arm] = &[
    Arm {
        label: "replicated",
        replicas: 2,
        reprime_on_churn: true,
    },
    Arm {
        label: "no-reprime",
        replicas: 2,
        reprime_on_churn: false,
    },
    Arm {
        label: "no-replica",
        replicas: 1,
        reprime_on_churn: true,
    },
];

fn fleet_config(arm: &Arm, horizon_secs: f64) -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        workers_per_shard: 2,
        max_batch: 4,
        cache_capacity: 24,
        deadline_secs: 4.5,
        // Fixed quality, as in fig16_fleet: the ladder would hide the
        // miss penalty as quality loss that goodput@SLO cannot see.
        allow_degradation: false,
        strategy: RouteStrategy::Affinity { load_factor: 1.25 },
        replicas: arm.replicas,
        reprime_on_churn: arm.reprime_on_churn,
        retry_budget: 2,
        recovery_window_secs: 10.0,
        // The same seeded storm for every arm: staggered crashes in
        // the first ~65% of the run, each shard down 8–12% of it.
        faults: FleetFaultProfile::CrashStorm.plan(
            STORM_SEED,
            SimTime::from_nanos((horizon_secs * 1e9) as u64),
            SHARDS,
        ),
        ..Default::default()
    }
}

/// Runs one arm three times — calendar, calendar again, heap — and
/// asserts all three reports serialize identically.
fn run_arm(arm: &Arm, horizon_secs: f64, trace: &FleetTrace) -> FleetReport {
    let report = FleetSim::run(fleet_config(arm, horizon_secs), trace);
    let bytes = report.to_json().to_string_compact();
    let replay = FleetSim::run(fleet_config(arm, horizon_secs), trace)
        .to_json()
        .to_string_compact();
    assert_eq!(bytes, replay, "{}: replay diverged", arm.label);
    let heap = FleetSim::run_on_heap(fleet_config(arm, horizon_secs), trace)
        .to_json()
        .to_string_compact();
    assert_eq!(
        bytes, heap,
        "{}: calendar and heap runs diverged",
        arm.label
    );
    // Conservation, restated at the bench level: the simulator asserts
    // the same identity internally, but a figure that claims "no
    // request silently dropped" should check its own books.
    let f = &report.fleet.fleet;
    let accounted =
        f.served + f.shed + f.deadline_rejected + report.crash_failed + report.parked_failed;
    assert_eq!(
        accounted,
        trace.trace.len() as u64,
        "{}: {} of {} requests unaccounted",
        arm.label,
        trace.trace.len() as u64 - accounted,
        trace.trace.len()
    );
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration_secs = if smoke { 240.0 } else { 900.0 };
    // Recovery must complete within a handful of windows of the last
    // crash clearing; the bound scales with the storm span.
    let recovery_bound_secs = duration_secs * 0.75;
    let trace = FleetTrace::generate(&FleetTraceConfig {
        tenants: vec![
            TenantSpec::new("studio", 4.0, 64),
            TenantSpec::new("retail", 3.5, 48),
        ],
        duration_secs,
        diurnal: None,
        seed: 0xC4A05,
    });

    let reports: Vec<FleetReport> = ARMS
        .iter()
        .map(|arm| run_arm(arm, duration_secs, &trace))
        .collect();

    let mut table = Table::new(&[
        "arm",
        "goodput@slo(rps)",
        "eff-hit",
        "failovers",
        "rerouted",
        "crash-failed",
        "re-primed",
        "dip(rps)",
        "ttr(s)",
    ]);
    for (arm, r) in ARMS.iter().zip(&reports) {
        let (dip, ttr) = r
            .recovery
            .as_ref()
            .map(|rec| {
                (
                    format!("{:.2}", rec.dip_depth_rps),
                    rec.time_to_recover_secs
                        .map_or_else(|| "never".to_string(), |t| format!("{t:.0}")),
                )
            })
            .unwrap_or_else(|| ("-".into(), "-".into()));
        table.row(&[
            arm.label.to_string(),
            format!("{:.3}", r.fleet.fleet.goodput_at_deadline_rps),
            format!("{:.3}", r.effective_hit_rate()),
            format!("{}", r.failover_hits),
            format!("{}", r.rerouted),
            format!("{}", r.crash_failed),
            format!("{}", r.re_primed),
            dip,
            ttr,
        ]);
    }
    let storm = FleetFaultProfile::CrashStorm.plan(
        STORM_SEED,
        SimTime::from_nanos((duration_secs * 1e9) as u64),
        SHARDS,
    );
    let mut out = format!(
        "Fleet chaos: crash storm over {} shards ({} crashes, seed {:#x})\n\
         ({} requests, {} tenants, same storm and retry budget in every arm)\n\n",
        SHARDS,
        storm.events.len(),
        STORM_SEED,
        trace.trace.len(),
        2,
    );
    out.push_str(&table.render());
    out.push_str(
        "\nSame trace, same seeded crash storm - only the cache layer's fault\n\
         posture differs. With R=2 replicas a crash leaves a surviving copy:\n\
         post-crash misses fail over through the source shard's circuit breaker\n\
         and pay a disk fetch instead of a full recompute, and churn re-priming\n\
         rebuilds lost copies at each membership change. The R=1 baseline pays\n\
         full-recompute service times for every template the crash destroyed.\n\
         All arms replay byte-identically on both schedulers, and every\n\
         accepted request is accounted: completed, shed, rejected, failed\n\
         after retries, or parked with no routable shard (asserted every run).\n",
    );
    println!("{out}");

    // Claim 1: the replicated arm recovers within the bound.
    let replicated = &reports[0];
    let recovery = replicated
        .recovery
        .as_ref()
        .expect("faulted run must produce a recovery report");
    assert!(
        recovery.recovered_within(recovery_bound_secs),
        "replicated arm did not recover within {recovery_bound_secs}s: {:?}",
        recovery.time_to_recover_secs
    );

    // Claim 2: replication strictly beats the no-replica baseline.
    let baseline = &reports[2];
    assert!(
        replicated.fleet.fleet.goodput_at_deadline_rps
            > baseline.fleet.fleet.goodput_at_deadline_rps,
        "replicated goodput@SLO {:.3} not above no-replica {:.3}",
        replicated.fleet.fleet.goodput_at_deadline_rps,
        baseline.fleet.fleet.goodput_at_deadline_rps
    );
    assert!(
        replicated.effective_hit_rate() > baseline.effective_hit_rate(),
        "replicated effective hit rate {:.3} not above no-replica {:.3}",
        replicated.effective_hit_rate(),
        baseline.effective_hit_rate()
    );
    assert_eq!(baseline.failover_hits, 0, "R=1 has nowhere to fail over");
    assert!(
        replicated.failover_hits > 0,
        "the storm never exercised failover"
    );

    if !smoke {
        let json = Json::object()
            .with("figure", "fig_chaos_fleet")
            .with(
                "storm",
                Json::object()
                    .with("profile", "crash-storm")
                    .with("seed", STORM_SEED)
                    .with("shards", SHARDS as u64)
                    .with("crashes", storm.events.len() as u64),
            )
            .with(
                "trace",
                Json::object()
                    .with("requests", trace.trace.len() as u64)
                    .with("duration_secs", duration_secs),
            )
            .with("recovery_bound_secs", recovery_bound_secs)
            .with(
                "arms",
                Json::Array(
                    ARMS.iter()
                        .zip(&reports)
                        .map(|(arm, r)| {
                            Json::object()
                                .with("arm", arm.label)
                                .with("replicas", arm.replicas as u64)
                                .with("reprime_on_churn", arm.reprime_on_churn)
                                .with("report", r.to_json())
                        })
                        .collect(),
                ),
            );
        save_artifact("fig_chaos_fleet.json", &(json.to_string_pretty() + "\n"));
        save_artifact("fig_chaos_fleet.txt", &out);
    }
}
