//! Fig. 11 — the regression latency models behind Algorithm 2.
//!
//! Fits the compute- and load-latency estimators on offline profiling
//! sweeps (mask ratios × batch sizes) for SDXL and Flux on H800 and
//! reports slope/intercept/R². The paper reports R² = 0.99.

use fps_baselines::eval_setup;
use fps_bench::save_artifact;
use fps_metrics::Table;
use fps_serving::profiler::fit_latency_model;

fn main() {
    let mut out = String::from("Fig. 11 reproduction: latency regression models\n\n");
    let mut table = Table::new(&["model/gpu", "signal", "slope", "intercept", "R^2", "points"]);
    let mut scatter = String::new();
    for setup in eval_setup() {
        let cm = setup.cost_model();
        let (model, comp_pts, load_pts) = fit_latency_model(&cm).expect("fit");
        table.row(&[
            format!("{}/{}", cm.model.name, cm.gpu.name),
            "compute (s per TFLOP-batch)".into(),
            format!("{:.5}", model.comp.slope),
            format!("{:.5}", model.comp.intercept),
            format!("{:.4}", model.comp.r2),
            format!("{}", comp_pts.len()),
        ]);
        table.row(&[
            format!("{}/{}", cm.model.name, cm.gpu.name),
            "load (s per GiB-batch)".into(),
            format!("{:.5}", model.load.slope),
            format!("{:.5}", model.load.intercept),
            format!("{:.4}", model.load.r2),
            format!("{}", load_pts.len()),
        ]);
        scatter.push_str(&format!(
            "\n== {} on {}: compute scatter (TFLOPs, seconds) ==\n",
            cm.model.name, cm.gpu.name
        ));
        for (x, y) in comp_pts.iter().step_by(5) {
            scatter.push_str(&format!("  {x:8.3} {y:8.4}\n"));
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper: R^2 = 0.99 (\"the models can predict performance almost perfectly\").\n",
    );
    out.push_str(&scatter);
    println!("{out}");
    save_artifact("fig11_regression.txt", &out);
}
