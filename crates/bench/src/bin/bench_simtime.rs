//! Simtime scheduler baseline: calendar queue vs binary heap under the
//! classic hold model (Jones 1986) at fleet scale.
//!
//! Three claims are checked every run and recorded in
//! `BENCH_simtime.json`:
//!
//! 1. **Equivalence** — both schedulers, fed the identical seeded
//!    schedule/pop sequence, pop the exact same `(time, payload)`
//!    stream (checksum compare over every popped event, hold phase and
//!    final drain both). This is the scheduler-contract differential
//!    test at benchmark scale.
//! 2. **Speedup gate** — with 1M+ events resident, the calendar queue
//!    sustains at least 3× the heap's hold throughput (one hold op =
//!    pop the minimum, reschedule it a random gap into the future).
//!    The gate is asserted in `--smoke` mode too, so `scripts/check.sh`
//!    catches scheduler regressions.
//! 3. **Timings** — prefill / hold / drain wall times per scheduler,
//!    the regression baseline future sessions diff against.
//!
//! Flags: `--smoke` shrinks the hold count and writes no artifacts
//! (used by `scripts/check.sh`); the full run writes
//! `BENCH_simtime.json` into the working directory and
//! `results/bench_simtime.txt`.

use std::time::Instant;

use fps_bench::save_artifact;
use fps_json::Json;
use fps_metrics::Table;
use fps_simtime::{CalendarQueue, EventQueue, EventScheduler, SimTime};

/// The gate threshold from the issue: calendar ≥ 3× heap events/sec at
/// 1M+ queued events.
const GATE_SPEEDUP: f64 = 3.0;

/// Resident events during the hold phase (the "1M+" of the gate).
const QUEUED: usize = 1 << 20;

/// Hold-gap span in virtual nanoseconds. Gaps are uniform in
/// `[1, SPAN_NS]`, so the steady-state queue occupies a window of about
/// `SPAN_NS` — the density the calendar queue's bucket-width heuristic
/// has to track.
const SPAN_NS: u64 = 2_000_000;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct Run {
    prefill_secs: f64,
    hold_secs: f64,
    drain_secs: f64,
    checksum: u64,
}

/// Drives one scheduler through the full seeded scenario: prefill
/// `QUEUED` events at uniform times, run `hold_ops` hold operations,
/// then drain the queue dry. Every popped `(time, payload)` pair folds
/// into the checksum, so two schedulers agreeing on the checksum popped
/// the identical event sequence.
fn drive<Q: EventScheduler<u64>>(queue: &mut Q, hold_ops: usize) -> Run {
    let mut rng = 0x51D3_C0DE_u64;
    let mut next = move || {
        rng = splitmix64(rng);
        rng
    };

    let t0 = Instant::now();
    for i in 0..QUEUED as u64 {
        let at = next() % SPAN_NS;
        queue.schedule_at(SimTime::from_nanos(at), i);
    }
    let prefill_secs = t0.elapsed().as_secs_f64();
    assert_eq!(queue.len(), QUEUED);

    let mut checksum = 0u64;
    let fold = |checksum: &mut u64, at: SimTime, ev: u64| {
        *checksum = splitmix64(*checksum ^ at.as_nanos() ^ ev.rotate_left(17));
    };
    let t1 = Instant::now();
    for _ in 0..hold_ops {
        let (at, ev) = queue.pop().expect("hold queue never drains");
        fold(&mut checksum, at, ev);
        let gap = 1 + next() % SPAN_NS;
        queue.schedule_at(SimTime::from_nanos(at.as_nanos() + gap), ev);
    }
    let hold_secs = t1.elapsed().as_secs_f64();
    assert_eq!(queue.len(), QUEUED, "hold must conserve queue size");

    let t2 = Instant::now();
    while let Some((at, ev)) = queue.pop() {
        fold(&mut checksum, at, ev);
    }
    let drain_secs = t2.elapsed().as_secs_f64();
    assert!(queue.is_empty());

    Run {
        prefill_secs,
        hold_secs,
        drain_secs,
        checksum,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let hold_ops = if smoke { 300_000 } else { 2_000_000 };
    // Best-of-3 either way: the gate compares two schedulers on a
    // shared host, and a single rep is at the mercy of frequency
    // scaling and noisy neighbors.
    let reps = 3;

    // Best-of-reps per scheduler; checksums must agree across reps and
    // across schedulers (the byte-identical replay of the gate).
    let mut heap_best: Option<Run> = None;
    let mut cal_best: Option<Run> = None;
    for _ in 0..reps {
        let mut hq: EventQueue<u64> = EventQueue::new();
        let heap = drive(&mut hq, hold_ops);
        let mut cq: CalendarQueue<u64> = CalendarQueue::new();
        let cal = drive(&mut cq, hold_ops);
        assert_eq!(
            heap.checksum, cal.checksum,
            "calendar and heap popped different event sequences"
        );
        if let Some(prev) = &heap_best {
            assert_eq!(prev.checksum, heap.checksum, "replay not deterministic");
        }
        let keep_min = |best: Option<Run>, run: Run| match best {
            Some(b) if b.hold_secs <= run.hold_secs => Some(b),
            _ => Some(run),
        };
        heap_best = keep_min(heap_best, heap);
        cal_best = keep_min(cal_best, cal);
    }
    let heap = heap_best.expect("at least one rep");
    let cal = cal_best.expect("at least one rep");

    let heap_rate = hold_ops as f64 / heap.hold_secs;
    let cal_rate = hold_ops as f64 / cal.hold_secs;
    let speedup = cal_rate / heap_rate;
    assert!(
        speedup >= GATE_SPEEDUP,
        "calendar hold throughput {speedup:.2}x heap, below the {GATE_SPEEDUP}x gate \
         (heap {heap_rate:.0} ev/s, calendar {cal_rate:.0} ev/s at {QUEUED} queued)"
    );

    let mut table = Table::new(&[
        "scheduler",
        "prefill(ms)",
        "hold(ms)",
        "drain(ms)",
        "hold(Mev/s)",
    ]);
    for (name, r, rate) in [
        ("binary-heap", &heap, heap_rate),
        ("calendar", &cal, cal_rate),
    ] {
        table.row(&[
            name.to_string(),
            format!("{:.1}", r.prefill_secs * 1e3),
            format!("{:.1}", r.hold_secs * 1e3),
            format!("{:.1}", r.drain_secs * 1e3),
            format!("{:.2}", rate / 1e6),
        ]);
    }
    let mut out = format!(
        "Simtime scheduler baseline: hold model, {QUEUED} resident events, \
         {hold_ops} hold ops\n\n"
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nGate: calendar {speedup:.2}x heap hold throughput (threshold {GATE_SPEEDUP}x)\n\
         Both schedulers popped checksum-identical event sequences\n\
         ({} events compared, prefill + hold + drain).\n",
        QUEUED + hold_ops
    ));
    println!("{out}");

    if !smoke {
        let sched = |r: &Run, rate: f64| {
            Json::object()
                .with("prefill_secs", r.prefill_secs)
                .with("hold_secs", r.hold_secs)
                .with("drain_secs", r.drain_secs)
                .with("hold_events_per_sec", rate)
        };
        let json = Json::object()
            .with("bench", "simtime")
            .with(
                "scenario",
                Json::object()
                    .with("model", "hold")
                    .with("queued_events", QUEUED as u64)
                    .with("hold_ops", hold_ops as u64)
                    .with("gap_span_ns", SPAN_NS),
            )
            .with("heap", sched(&heap, heap_rate))
            .with("calendar", sched(&cal, cal_rate))
            .with(
                "gate",
                Json::object()
                    .with("speedup", speedup)
                    .with("threshold", GATE_SPEEDUP)
                    .with("checksums_identical", true),
            );
        std::fs::write("BENCH_simtime.json", json.to_string_pretty() + "\n")
            .expect("write BENCH_simtime.json");
        println!("[saved BENCH_simtime.json]");
        save_artifact("bench_simtime.txt", &out);
    }
}
