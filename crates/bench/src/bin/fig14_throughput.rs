//! Fig. 14 — serving-engine throughput vs batch size.
//!
//! For SDXL and Flux on H800 (SD2.1/A10 is omitted in the paper
//! because FISEdit OOMs beyond batch 2), computes each engine's
//! steady-state throughput at batch sizes 1–8 from the step cost
//! model: `throughput = B / (steps × step_latency(B))`.
//!
//! Reproduces: FlashPS below TeaCache at B = 1 (SM underutilization),
//! overtaking from B ≥ 2, reaching ~3× at large batch with sustained
//! growth while the baselines plateau.

use fps_baselines::{eval_setup, SystemKind};
use fps_bench::save_artifact;
use fps_metrics::{line_plot, Series, Table};
use fps_serving::cost::BatchItem;
use fps_workload::RatioDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut out = String::from("Fig. 14 reproduction: engine throughput vs batch size\n\n");
    for setup in eval_setup().into_iter().skip(1) {
        let cm = setup.cost_model();
        let mut table = Table::new(&[
            "batch",
            "diffusers(img/min)",
            "teacache(img/min)",
            "flashps(img/min)",
            "flashps/teacache",
        ]);
        let mut crossover_seen = false;
        let mut b1_ratio = 0.0;
        let mut b8_ratio = 0.0;
        let mut curves: Vec<(String, Vec<(f64, f64)>)> = ["diffusers", "teacache", "flashps"]
            .iter()
            .map(|n| (n.to_string(), Vec::new()))
            .collect();
        for b in 1..=8usize {
            // Production mask ratios for the batch.
            let mut rng = StdRng::seed_from_u64(14);
            let batch: Vec<BatchItem> = (0..b)
                .map(|_| BatchItem {
                    mask_ratio: RatioDistribution::ProductionTrace.sample(&mut rng),
                })
                .collect();
            let tput = |engine: fps_serving::EngineKind| -> f64 {
                let lat = engine.step_latency(&cm, &batch).as_secs_f64();
                b as f64 / (cm.model.steps as f64 * lat) * 60.0
            };
            let diff = tput(SystemKind::Diffusers.engine().expect("engine"));
            let tea = tput(SystemKind::TeaCache.engine().expect("engine"));
            let flash = tput(SystemKind::FlashPs.engine().expect("engine"));
            curves[0].1.push((b as f64, diff));
            curves[1].1.push((b as f64, tea));
            curves[2].1.push((b as f64, flash));
            let ratio = flash / tea;
            if b == 1 {
                b1_ratio = ratio;
            }
            if b == 8 {
                b8_ratio = flash / diff;
            }
            if ratio > 1.0 {
                crossover_seen = true;
            }
            table.row(&[
                format!("{b}"),
                format!("{diff:.1}"),
                format!("{tea:.1}"),
                format!("{flash:.1}"),
                format!("{ratio:.2}x"),
            ]);
        }
        out.push_str(&format!(
            "== {} on {} ==\n{}",
            cm.model.name,
            cm.gpu.name,
            table.render()
        ));
        out.push_str(&format!(
            "B=1: flashps/teacache = {b1_ratio:.2}x (paper: < 1 without batching); \
             B=8: flashps/diffusers = {b8_ratio:.2}x (paper: up to 3x).\n",
        ));
        assert!(
            crossover_seen,
            "flashps must overtake teacache with batching"
        );
        let series: Vec<Series> = curves
            .into_iter()
            .map(|(n, pts)| Series::new(n, pts))
            .collect();
        out.push_str(&line_plot(
            "throughput (img/min) vs batch size",
            &series,
            56,
            12,
        ));
        out.push('\n');
    }
    println!("{out}");
    save_artifact("fig14_throughput.txt", &out);
}
