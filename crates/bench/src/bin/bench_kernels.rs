//! Compute-plane regression baseline: scalar vs pooled vs fused vs
//! mask-sparse kernels at the SD2.1/SDXL/Flux substrate shapes.
//!
//! Four claims are checked every run and recorded in
//! `BENCH_kernels.json`:
//!
//! 1. **Identity** — for every benchmarked kernel and for a whole
//!    `EditPipeline::edit`, the parallel, fused, and sparse paths
//!    produce byte-identical results to the scalar reference
//!    (`f32::to_bits` compare; no tolerance). The sparse GEMM is
//!    additionally checked against its row-split contract: dense bits
//!    at the plan's rows, template bits elsewhere.
//! 2. **Tiled-GEMM gate** — the pooled tiled GEMM on the largest shape
//!    (the flux-like FFN GEMM) is at least 2× faster than the frozen
//!    pre-tiling scalar kernel (`matmul_naive`, kept in-tree as the
//!    baseline oracle). On hosts with ≥ 4 cores this is a measured
//!    wall-clock gate. On smaller hosts — where a 2× thread speedup is
//!    physically impossible — the gate is *modeled*: each row chunk of
//!    the pool's actual decomposition ([`pool::chunk_rows_for`]) is
//!    timed for real, serially, with the tiled kernel, and the makespan
//!    on 4 virtual lanes under the pool's dynamic next-chunk assignment
//!    is compared against the naive kernel's serial wall time. The JSON
//!    records which mode ran (`"measured-wall"` vs
//!    `"modeled-makespan"`), so baselines from different hosts are
//!    never confused.
//! 3. **Sparse gate** — the mask-sparse GEMM sweeps mask ratios
//!    {5, 10, 25, 50}% at the flux FFN shape; at 10% it must be ≥ 3×
//!    faster than the dense kernel (measured wall in both gate modes —
//!    the win is FLOP-driven, not thread-driven), and on full runs its
//!    wall-time fraction must track the
//!    [`fps_diffusion::flops::sparse_gemm_flops`] estimator within 2×
//!    across the sweep.
//! 4. **Timings** — per-kernel scalar/parallel/fused/sparse wall times
//!    at each model shape, the regression baseline future sessions diff
//!    against — with regression asserts on the shapes a pooled
//!    dispatch once made slower (small-shape parallel must stay within
//!    1.3× of scalar now that thresholds are calibrated at pool init).
//!
//! Flags: `--smoke` shrinks repetition counts, skips the FLOP-tracking
//! assert (timing-noise sensitive), and writes no artifacts (used by
//! `scripts/check.sh`); the full run writes `BENCH_kernels.json` into
//! the working directory and `results/bench_kernels.txt`.

use std::time::Instant;

use fps_bench::save_artifact;
use fps_diffusion::block::TransformerBlock;
use fps_diffusion::embedding::{embed_prompt, embed_timestep, pool_condition};
use fps_diffusion::flops::sparse_gemm_flops;
use fps_diffusion::{EditPipeline, Image, ModelConfig, Strategy};
use fps_json::Json;
use fps_metrics::Table;
use fps_tensor::ops::sparse::{self, SparsePlan};
use fps_tensor::ops::{
    ada_layer_norm, conv3x3, layer_norm, matmul, matmul_gelu, matmul_naive, mha_fused,
};
use fps_tensor::pool::{self, with_compute_path, ComputePath};
use fps_tensor::rng::DetRng;
use fps_tensor::Tensor;

/// The tiled-GEMM gate: pooled tiled ≥ 2× the frozen naive scalar.
const GATE_SPEEDUP: f64 = 2.0;

/// The sparse gate: sparse GEMM ≥ 3× dense at a 10% mask.
const SPARSE_GATE_SPEEDUP: f64 = 3.0;

/// Virtual lanes for the modeled gate on small hosts.
const MODEL_LANES: usize = 4;

/// The compute paths every kernel is checked and timed on.
const PATHS: [ComputePath; 4] = [
    ComputePath::Scalar,
    ComputePath::Parallel,
    ComputePath::Fused,
    ComputePath::Sparse,
];

/// Wall time of the fastest of `reps` runs, in microseconds.
fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` on all four paths, asserts bitwise identity against the
/// scalar result, and returns per-path wall times (µs).
fn bench_kernel(label: &str, reps: usize, f: &dyn Fn() -> Tensor) -> [f64; 4] {
    let reference = with_compute_path(ComputePath::Scalar, || bits(&f()));
    let mut out = [0.0; 4];
    for (slot, path) in PATHS.into_iter().enumerate() {
        with_compute_path(path, || {
            assert_eq!(
                bits(&f()),
                reference,
                "{label}: {path:?} differs from Scalar"
            );
            out[slot] = time_us(reps, || {
                std::hint::black_box(f());
            });
        });
    }
    out
}

struct KernelRow {
    config: &'static str,
    kernel: &'static str,
    us: [f64; 4],
}

/// Times every hot kernel at one model shape.
fn bench_config(cfg: &ModelConfig, name: &'static str, reps: usize, rows: &mut Vec<KernelRow>) {
    let l = cfg.tokens();
    let h = cfg.hidden;
    let f = cfg.hidden * cfg.ffn_mult;
    let mut rng = DetRng::new(0xBE7C);
    let x = Tensor::randn([l, h], &mut rng);
    let w_up = Tensor::randn([h, f], &mut rng);
    let q = Tensor::randn([l, h], &mut rng);
    let k = Tensor::randn([l, h], &mut rng);
    let v = Tensor::randn([l, h], &mut rng);
    let g = Tensor::randn([h], &mut rng);
    let b = Tensor::randn([h], &mut rng);
    let s = Tensor::randn([h], &mut rng);
    let sh = Tensor::randn([h], &mut rng);
    let grid = Tensor::randn([l, cfg.latent_channels], &mut rng);
    let kern = Tensor::randn([9 * cfg.latent_channels, cfg.latent_channels], &mut rng);
    let bias = Tensor::randn([cfg.latent_channels], &mut rng);
    let heads = cfg.heads;
    let scale = 1.0 / ((h / heads) as f32).sqrt();

    let mut push = |kernel: &'static str, f: &dyn Fn() -> Tensor| {
        rows.push(KernelRow {
            config: name,
            kernel,
            us: bench_kernel(&format!("{name}/{kernel}"), reps, f),
        });
    };
    push("ffn_gemm", &|| matmul(&x, &w_up).unwrap());
    push("ffn_gemm_gelu", &|| matmul_gelu(&x, &w_up).unwrap());
    push("mha", &|| mha_fused(&q, &k, &v, heads, scale).unwrap());
    push("layer_norm", &|| layer_norm(&x, &g, &b).unwrap());
    push("ada_layer_norm", &|| {
        ada_layer_norm(&x, &g, &b, &s, &sh).unwrap()
    });
    push("conv3x3", &|| {
        conv3x3(&grid, cfg.latent_h, cfg.latent_w, &kern, &bias).unwrap()
    });
    let block = TransformerBlock::new(cfg, &mut DetRng::new(cfg.weight_seed));
    let prompt = embed_prompt(cfg, "bench");
    let cond = pool_condition(&prompt, &embed_timestep(cfg, 0.5));
    push("block_forward", &|| {
        block.forward_full(&x, &prompt, &cond).unwrap().y
    });
}

/// Measured-wall gate: flux FFN GEMM, the frozen pre-tiling scalar
/// kernel vs the pooled tiled kernel, real threads.
fn measured_gate(a: &Tensor, b: &Tensor, reps: usize) -> f64 {
    let naive = time_us(reps, || {
        std::hint::black_box(matmul_naive(a, b).unwrap());
    });
    let tiled = with_compute_path(ComputePath::Parallel, || {
        time_us(reps, || {
            std::hint::black_box(matmul(a, b).unwrap());
        })
    });
    naive / tiled
}

/// Modeled gate: time each row chunk of the pool's decomposition
/// serially with the tiled kernel, then compute the makespan on
/// `MODEL_LANES` virtual lanes under the pool's dynamic
/// next-chunk-to-idle-lane assignment. Speedup = naive serial wall /
/// tiled makespan. Chunk cost and the tiled kernel's raw speed — the
/// properties the rework actually controls — are measured on real
/// hardware; only the lane count is virtual.
fn modeled_gate(a: &Tensor, b: &Tensor, reps: usize) -> f64 {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let naive = time_us(reps, || {
        std::hint::black_box(matmul_naive(a, b).unwrap());
    });
    let chunk_rows = pool::chunk_rows_for(m, MODEL_LANES);
    let mut chunks_us = Vec::new();
    let mut r0 = 0;
    while r0 < m {
        let r1 = (r0 + chunk_rows).min(m);
        let sub =
            Tensor::from_vec(a.data()[r0 * k..r1 * k].to_vec(), [r1 - r0, k]).expect("row slice");
        let us = with_compute_path(ComputePath::Scalar, || {
            time_us(reps, || {
                std::hint::black_box(matmul(&sub, b).unwrap());
            })
        });
        chunks_us.push(us);
        r0 = r1;
    }
    let mut lane_end = [0.0f64; MODEL_LANES];
    for &c in &chunks_us {
        let idle = lane_end
            .iter()
            .enumerate()
            .min_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
            .expect("non-empty")
            .0;
        lane_end[idle] += c;
    }
    let makespan = lane_end.iter().fold(0.0f64, |acc, &e| acc.max(e));
    assert!(n > 0 && makespan > 0.0);
    naive / makespan
}

/// One point of the sparse mask-ratio sweep.
struct SparseRow {
    /// Actual mask ratio (active rows / total rows).
    ratio: f64,
    /// Active (computed) rows.
    active: usize,
    /// Sparse GEMM wall time (µs).
    sparse_us: f64,
    /// Sparse / dense speedup at this ratio.
    speedup: f64,
    /// FLOP fraction predicted by the estimator.
    flops_frac: f64,
    /// Measured wall fraction (sparse / dense).
    wall_frac: f64,
}

/// Sweeps the sparse GEMM over mask ratios at the flux FFN shape,
/// asserting the row-split identity contract at each point, and
/// returns the per-ratio rows plus the dense reference wall time.
fn sparse_sweep(a: &Tensor, b: &Tensor, reps: usize) -> (f64, Vec<SparseRow>) {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let dense_ref = with_compute_path(ComputePath::Scalar, || matmul(a, b).unwrap());
    let template = Tensor::randn([m, n], &mut DetRng::new(0x7E3A));
    // The dense wall the sparse path competes with: the same tiled
    // kernel on the production (fused) path.
    let dense_us = with_compute_path(ComputePath::Fused, || {
        time_us(reps, || {
            std::hint::black_box(matmul(a, b).unwrap());
        })
    });
    let full_flops = sparse_gemm_flops(m, k, n, 1.0) as f64;
    let mut rows = Vec::new();
    for target in [0.05, 0.10, 0.25, 0.50] {
        let active_n = ((target * m as f64).round() as usize).clamp(1, m);
        // Active rows spread evenly over the matrix, like a band mask.
        let masked: Vec<usize> = (0..active_n).map(|i| i * m / active_n).collect();
        let plan = SparsePlan::from_mask(m, &masked).expect("plan");
        let ratio = f64::from(plan.mask_ratio());
        // Row-split identity: dense bits at the plan's rows, template
        // bits everywhere else.
        let out = sparse::matmul(&plan, a, b, Some(&template)).expect("sparse matmul");
        let mut expect = template.clone();
        for &r in plan.active() {
            expect
                .row_mut(r)
                .expect("row")
                .copy_from_slice(dense_ref.row(r).expect("row"));
        }
        assert_eq!(
            bits(&out),
            bits(&expect),
            "sparse GEMM row-split identity failed at ratio {ratio:.3}"
        );
        let sparse_us = with_compute_path(ComputePath::Sparse, || {
            time_us(reps, || {
                std::hint::black_box(sparse::matmul(&plan, a, b, Some(&template)).unwrap());
            })
        });
        rows.push(SparseRow {
            ratio,
            active: plan.active().len(),
            sparse_us,
            speedup: dense_us / sparse_us,
            flops_frac: sparse_gemm_flops(m, k, n, ratio) as f64 / full_flops,
            wall_frac: sparse_us / dense_us,
        });
    }
    (dense_us, rows)
}

/// Whole-pipeline identity: one edit per compute path on the tiny
/// model must produce byte-identical images.
fn pipeline_identity() {
    let cfg = ModelConfig::tiny();
    let pipe = EditPipeline::new(&cfg).expect("pipeline");
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 7);
    let masked = [5usize, 6, 9, 10];
    let strat = Strategy::MaskAware {
        use_cache: vec![true; cfg.blocks],
        kv: false,
    };
    let run = |path| {
        with_compute_path(path, || {
            let cache = pipe.prime(&template, 1, false).expect("prime");
            pipe.edit(&template, 1, &masked, "bench", 3, &strat, Some(&cache))
                .expect("edit")
                .image
        })
    };
    let scalar = run(ComputePath::Scalar);
    for path in [
        ComputePath::Parallel,
        ComputePath::Fused,
        ComputePath::Sparse,
    ] {
        assert_eq!(run(path), scalar, "{path:?} edit differs from Scalar");
    }
}

/// Shapes a pooled dispatch once regressed: with thresholds calibrated
/// at pool init, the parallel path must stay within 1.3× of scalar on
/// small kernels (it may legitimately fall back to serial).
fn assert_no_parallel_regression(rows: &[KernelRow]) {
    for (config, kernel) in [("sd21-like", "ffn_gemm"), ("sdxl-like", "layer_norm")] {
        let r = rows
            .iter()
            .find(|r| r.config == config && r.kernel == kernel)
            .expect("benched row");
        assert!(
            r.us[1] <= r.us[0] * 1.3,
            "{config}/{kernel}: parallel {:.1}us vs scalar {:.1}us — small-shape regression",
            r.us[1],
            r.us[0]
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 3 } else { 20 };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    pipeline_identity();

    let mut rows = Vec::new();
    let configs = [
        (ModelConfig::sd21_like(), "sd21-like"),
        (ModelConfig::sdxl_like(), "sdxl-like"),
        (ModelConfig::flux_like(), "flux-like"),
    ];
    for (cfg, name) in &configs {
        bench_config(cfg, name, reps, &mut rows);
    }
    assert_no_parallel_regression(&rows);

    // The gates run on the largest shape: the flux-like FFN GEMM.
    let flux = ModelConfig::flux_like();
    let mut rng = DetRng::new(0x6A7E);
    let a = Tensor::randn([flux.tokens(), flux.hidden], &mut rng);
    let b = Tensor::randn([flux.hidden, flux.hidden * flux.ffn_mult], &mut rng);
    let measured = measured_gate(&a, &b, reps);
    let (mode, speedup) = if cores >= 4 && !smoke {
        ("measured-wall", measured)
    } else {
        ("modeled-makespan", modeled_gate(&a, &b, reps))
    };
    assert!(
        speedup >= GATE_SPEEDUP,
        "pooled tiled flux FFN GEMM speedup {speedup:.2}x over naive ({mode}) below the \
         {GATE_SPEEDUP}x gate"
    );

    // Sparse sweep + gates. The ≥3× gate is measured wall in both gate
    // modes: the sparse win comes from skipping FLOPs, not threads.
    let (dense_us, sweep) = sparse_sweep(&a, &b, reps);
    let at_10 = &sweep[1];
    assert!(
        at_10.speedup >= SPARSE_GATE_SPEEDUP,
        "sparse GEMM at {:.1}% mask is {:.2}x dense, below the {SPARSE_GATE_SPEEDUP}x gate",
        at_10.ratio * 100.0,
        at_10.speedup
    );
    if !smoke {
        for r in &sweep {
            let tracking = r.wall_frac / r.flops_frac;
            assert!(
                (0.5..=2.0).contains(&tracking),
                "sparse wall fraction {:.3} at ratio {:.3} diverges from FLOP fraction {:.3} \
                 (tracking {tracking:.2}x, limit 2x)",
                r.wall_frac,
                r.ratio,
                r.flops_frac
            );
        }
    }

    let mut table = Table::new(&[
        "config",
        "kernel",
        "scalar(us)",
        "parallel(us)",
        "fused(us)",
        "sparse(us)",
    ]);
    for r in &rows {
        table.row(&[
            r.config.to_string(),
            r.kernel.to_string(),
            format!("{:.1}", r.us[0]),
            format!("{:.1}", r.us[1]),
            format!("{:.1}", r.us[2]),
            format!("{:.1}", r.us[3]),
        ]);
    }
    let mut sparse_table = Table::new(&[
        "mask",
        "active_rows",
        "sparse(us)",
        "speedup",
        "flop_frac",
        "wall_frac",
    ]);
    for r in &sweep {
        sparse_table.row(&[
            format!("{:.1}%", r.ratio * 100.0),
            r.active.to_string(),
            format!("{:.1}", r.sparse_us),
            format!("{:.2}x", r.speedup),
            format!("{:.3}", r.flops_frac),
            format!("{:.3}", r.wall_frac),
        ]);
    }
    let mut out = String::from(
        "Compute-plane baseline: scalar vs pooled vs fused vs sparse kernels (bitwise identical)\n\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nGate: flux-like FFN GEMM pooled tiled speedup {speedup:.2}x over the frozen naive \
         scalar\nkernel ({mode}, threshold {GATE_SPEEDUP}x); measured wall ratio {measured:.2}x.\n\
         \nSparse GEMM sweep at the flux FFN shape (dense fused wall {dense_us:.1}us):\n\n"
    ));
    out.push_str(&sparse_table.render());
    out.push_str(&format!(
        "\nSparse gate: {:.2}x dense at {:.1}% mask (threshold {SPARSE_GATE_SPEEDUP}x, measured \
         wall).\nHost: {cores} cores, pool {} lanes.\nAll kernels and a whole tiny-model edit are \
         byte-identical across\nScalar/Parallel/Fused/Sparse compute paths (asserted every run).\n",
        at_10.speedup,
        at_10.ratio * 100.0,
        pool::global().threads(),
    ));
    println!("{out}");

    if !smoke {
        let kernels: Vec<Json> = rows
            .iter()
            .map(|r| {
                Json::object()
                    .with("config", r.config)
                    .with("kernel", r.kernel)
                    .with("scalar_us", r.us[0])
                    .with("parallel_us", r.us[1])
                    .with("fused_us", r.us[2])
                    .with("sparse_us", r.us[3])
            })
            .collect();
        let sweep_json: Vec<Json> = sweep
            .iter()
            .map(|r| {
                Json::object()
                    .with("mask_ratio", r.ratio)
                    .with("active_rows", r.active)
                    .with("sparse_us", r.sparse_us)
                    .with("speedup_vs_dense", r.speedup)
                    .with("flops_frac", r.flops_frac)
                    .with("wall_frac", r.wall_frac)
            })
            .collect();
        let json = Json::object()
            .with("bench", "kernels")
            .with(
                "host",
                Json::object()
                    .with("cores", cores)
                    .with("pool_threads", pool::global().threads()),
            )
            .with(
                "gate",
                Json::object()
                    .with("shape", "flux-like ffn_gemm [256x64]x[64x256]")
                    .with("baseline", "matmul_naive (frozen pre-tiling scalar kernel)")
                    .with("mode", mode)
                    .with("speedup", speedup)
                    .with("threshold", GATE_SPEEDUP)
                    .with("virtual_lanes", MODEL_LANES)
                    .with("measured_wall_ratio", measured),
            )
            .with(
                "sparse",
                Json::object()
                    .with("shape", "flux-like ffn_gemm [256x64]x[64x256]")
                    .with("dense_us", dense_us)
                    .with("gate_speedup_at_10pct", at_10.speedup)
                    .with("gate_threshold", SPARSE_GATE_SPEEDUP)
                    .with("flops_tracking_limit", 2.0)
                    .with("sweep", Json::Array(sweep_json)),
            )
            .with(
                "identity",
                Json::object()
                    .with("kernels_bitwise_identical", true)
                    .with("sparse_row_split_identical", true)
                    .with("pipeline_bytes_identical", true),
            )
            .with("kernels", Json::Array(kernels));
        std::fs::write("BENCH_kernels.json", json.to_string_pretty() + "\n")
            .expect("write BENCH_kernels.json");
        println!("[saved BENCH_kernels.json]");
        save_artifact("bench_kernels.txt", &out);
    }
}
