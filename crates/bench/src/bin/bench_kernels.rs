//! Compute-plane regression baseline: scalar vs pooled vs fused
//! kernels at the SD2.1/SDXL/Flux substrate shapes.
//!
//! Three claims are checked every run and recorded in
//! `BENCH_kernels.json`:
//!
//! 1. **Identity** — for every benchmarked kernel and for a whole
//!    `EditPipeline::edit`, the parallel and fused paths produce
//!    byte-identical results to the scalar reference (`f32::to_bits`
//!    compare; no tolerance).
//! 2. **Speedup gate** — the pooled decomposition of the largest shape
//!    (the flux-like FFN GEMM) is at least 2× faster than the scalar
//!    kernel. On hosts with ≥ 4 cores this is a measured wall-clock
//!    gate. On smaller hosts — where a 2× thread speedup is physically
//!    impossible — the gate is *modeled*: each row chunk of the pool's
//!    actual decomposition ([`pool::chunk_rows_for`]) is timed for
//!    real, serially, and the makespan on 4 virtual lanes under the
//!    pool's dynamic next-chunk assignment is compared against the
//!    serial total. The JSON records which mode ran (`"measured-wall"`
//!    vs `"modeled-makespan"`), so baselines from different hosts are
//!    never confused.
//! 3. **Timings** — per-kernel scalar/parallel/fused wall times at each
//!    model shape, the regression baseline future sessions diff
//!    against.
//!
//! Flags: `--smoke` shrinks repetition counts and writes no artifacts
//! (used by `scripts/check.sh`); the full run writes
//! `BENCH_kernels.json` into the working directory and
//! `results/bench_kernels.txt`.

use std::time::Instant;

use fps_bench::save_artifact;
use fps_diffusion::block::TransformerBlock;
use fps_diffusion::embedding::{embed_prompt, embed_timestep, pool_condition};
use fps_diffusion::{EditPipeline, Image, ModelConfig, Strategy};
use fps_json::Json;
use fps_metrics::Table;
use fps_tensor::ops::{ada_layer_norm, conv3x3, layer_norm, matmul, matmul_gelu, mha_fused};
use fps_tensor::pool::{self, with_compute_path, ComputePath};
use fps_tensor::rng::DetRng;
use fps_tensor::Tensor;

/// The gate threshold from the issue: pooled ≥ 2× scalar on the
/// largest shape.
const GATE_SPEEDUP: f64 = 2.0;

/// Virtual lanes for the modeled gate on small hosts.
const MODEL_LANES: usize = 4;

/// Wall time of the fastest of `reps` runs, in microseconds.
fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` on all three paths, asserts bitwise identity against the
/// scalar result, and returns per-path wall times (µs).
fn bench_kernel(label: &str, reps: usize, f: &dyn Fn() -> Tensor) -> [f64; 3] {
    let reference = with_compute_path(ComputePath::Scalar, || bits(&f()));
    let mut out = [0.0; 3];
    for (slot, path) in [
        ComputePath::Scalar,
        ComputePath::Parallel,
        ComputePath::Fused,
    ]
    .into_iter()
    .enumerate()
    {
        with_compute_path(path, || {
            assert_eq!(
                bits(&f()),
                reference,
                "{label}: {path:?} differs from Scalar"
            );
            out[slot] = time_us(reps, || {
                std::hint::black_box(f());
            });
        });
    }
    out
}

struct KernelRow {
    config: &'static str,
    kernel: &'static str,
    us: [f64; 3],
}

/// Times every hot kernel at one model shape.
fn bench_config(cfg: &ModelConfig, name: &'static str, reps: usize, rows: &mut Vec<KernelRow>) {
    let l = cfg.tokens();
    let h = cfg.hidden;
    let f = cfg.hidden * cfg.ffn_mult;
    let mut rng = DetRng::new(0xBE7C);
    let x = Tensor::randn([l, h], &mut rng);
    let w_up = Tensor::randn([h, f], &mut rng);
    let q = Tensor::randn([l, h], &mut rng);
    let k = Tensor::randn([l, h], &mut rng);
    let v = Tensor::randn([l, h], &mut rng);
    let g = Tensor::randn([h], &mut rng);
    let b = Tensor::randn([h], &mut rng);
    let s = Tensor::randn([h], &mut rng);
    let sh = Tensor::randn([h], &mut rng);
    let grid = Tensor::randn([l, cfg.latent_channels], &mut rng);
    let kern = Tensor::randn([9 * cfg.latent_channels, cfg.latent_channels], &mut rng);
    let bias = Tensor::randn([cfg.latent_channels], &mut rng);
    let heads = cfg.heads;
    let scale = 1.0 / ((h / heads) as f32).sqrt();

    let mut push = |kernel: &'static str, f: &dyn Fn() -> Tensor| {
        rows.push(KernelRow {
            config: name,
            kernel,
            us: bench_kernel(&format!("{name}/{kernel}"), reps, f),
        });
    };
    push("ffn_gemm", &|| matmul(&x, &w_up).unwrap());
    push("ffn_gemm_gelu", &|| matmul_gelu(&x, &w_up).unwrap());
    push("mha", &|| mha_fused(&q, &k, &v, heads, scale).unwrap());
    push("layer_norm", &|| layer_norm(&x, &g, &b).unwrap());
    push("ada_layer_norm", &|| {
        ada_layer_norm(&x, &g, &b, &s, &sh).unwrap()
    });
    push("conv3x3", &|| {
        conv3x3(&grid, cfg.latent_h, cfg.latent_w, &kern, &bias).unwrap()
    });
    let block = TransformerBlock::new(cfg, &mut DetRng::new(cfg.weight_seed));
    let prompt = embed_prompt(cfg, "bench");
    let cond = pool_condition(&prompt, &embed_timestep(cfg, 0.5));
    push("block_forward", &|| {
        block.forward_full(&x, &prompt, &cond).unwrap().y
    });
}

/// Measured-wall gate: flux FFN GEMM, scalar vs pooled, real threads.
fn measured_gate(a: &Tensor, b: &Tensor, reps: usize) -> f64 {
    let scalar = with_compute_path(ComputePath::Scalar, || {
        time_us(reps, || {
            std::hint::black_box(matmul(a, b).unwrap());
        })
    });
    let parallel = with_compute_path(ComputePath::Parallel, || {
        time_us(reps, || {
            std::hint::black_box(matmul(a, b).unwrap());
        })
    });
    scalar / parallel
}

/// Modeled gate: time each row chunk of the pool's decomposition
/// serially, then compute the makespan on `MODEL_LANES` virtual lanes
/// under the pool's dynamic next-chunk-to-idle-lane assignment.
/// Speedup = serial total / makespan. Chunk balance — the property the
/// decomposition actually controls — is measured on real hardware;
/// only the lane count is virtual.
fn modeled_gate(a: &Tensor, b: &Tensor, reps: usize) -> f64 {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let chunk_rows = pool::chunk_rows_for(m, MODEL_LANES);
    let mut chunks_us = Vec::new();
    let mut r0 = 0;
    while r0 < m {
        let r1 = (r0 + chunk_rows).min(m);
        let sub =
            Tensor::from_vec(a.data()[r0 * k..r1 * k].to_vec(), [r1 - r0, k]).expect("row slice");
        let us = with_compute_path(ComputePath::Scalar, || {
            time_us(reps, || {
                std::hint::black_box(matmul(&sub, b).unwrap());
            })
        });
        chunks_us.push(us);
        r0 = r1;
    }
    let total: f64 = chunks_us.iter().sum();
    let mut lane_end = [0.0f64; MODEL_LANES];
    for &c in &chunks_us {
        let idle = lane_end
            .iter()
            .enumerate()
            .min_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
            .expect("non-empty")
            .0;
        lane_end[idle] += c;
    }
    let makespan = lane_end.iter().fold(0.0f64, |acc, &e| acc.max(e));
    assert!(n > 0 && makespan > 0.0);
    total / makespan
}

/// Whole-pipeline identity: one edit per compute path on the tiny
/// model must produce byte-identical images.
fn pipeline_identity() {
    let cfg = ModelConfig::tiny();
    let pipe = EditPipeline::new(&cfg).expect("pipeline");
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 7);
    let masked = [5usize, 6, 9, 10];
    let strat = Strategy::MaskAware {
        use_cache: vec![true; cfg.blocks],
        kv: false,
    };
    let run = |path| {
        with_compute_path(path, || {
            let cache = pipe.prime(&template, 1, false).expect("prime");
            pipe.edit(&template, 1, &masked, "bench", 3, &strat, Some(&cache))
                .expect("edit")
                .image
        })
    };
    let scalar = run(ComputePath::Scalar);
    assert_eq!(run(ComputePath::Parallel), scalar, "parallel edit differs");
    assert_eq!(run(ComputePath::Fused), scalar, "fused edit differs");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 3 } else { 20 };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    pipeline_identity();

    let mut rows = Vec::new();
    let configs = [
        (ModelConfig::sd21_like(), "sd21-like"),
        (ModelConfig::sdxl_like(), "sdxl-like"),
        (ModelConfig::flux_like(), "flux-like"),
    ];
    for (cfg, name) in &configs {
        bench_config(cfg, name, reps, &mut rows);
    }

    // The gate runs on the largest shape: the flux-like FFN GEMM.
    let flux = ModelConfig::flux_like();
    let mut rng = DetRng::new(0x6A7E);
    let a = Tensor::randn([flux.tokens(), flux.hidden], &mut rng);
    let b = Tensor::randn([flux.hidden, flux.hidden * flux.ffn_mult], &mut rng);
    let measured = measured_gate(&a, &b, reps);
    let (mode, speedup) = if cores >= 4 && !smoke {
        ("measured-wall", measured)
    } else {
        ("modeled-makespan", modeled_gate(&a, &b, reps))
    };
    assert!(
        speedup >= GATE_SPEEDUP,
        "pooled flux FFN GEMM speedup {speedup:.2}x ({mode}) below the {GATE_SPEEDUP}x gate"
    );

    let mut table = Table::new(&[
        "config",
        "kernel",
        "scalar(us)",
        "parallel(us)",
        "fused(us)",
    ]);
    for r in &rows {
        table.row(&[
            r.config.to_string(),
            r.kernel.to_string(),
            format!("{:.1}", r.us[0]),
            format!("{:.1}", r.us[1]),
            format!("{:.1}", r.us[2]),
        ]);
    }
    let mut out = String::from(
        "Compute-plane baseline: scalar vs pooled vs fused kernels (bitwise identical)\n\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nGate: flux-like FFN GEMM pooled speedup {speedup:.2}x ({mode}, threshold \
         {GATE_SPEEDUP}x)\nHost: {cores} cores, pool {} lanes; measured wall ratio {measured:.2}x\n\
         All kernels and a whole tiny-model edit are byte-identical across\n\
         Scalar/Parallel/Fused compute paths (asserted every run).\n",
        pool::global().threads(),
    ));
    println!("{out}");

    if !smoke {
        let kernels: Vec<Json> = rows
            .iter()
            .map(|r| {
                Json::object()
                    .with("config", r.config)
                    .with("kernel", r.kernel)
                    .with("scalar_us", r.us[0])
                    .with("parallel_us", r.us[1])
                    .with("fused_us", r.us[2])
            })
            .collect();
        let json = Json::object()
            .with("bench", "kernels")
            .with(
                "host",
                Json::object()
                    .with("cores", cores)
                    .with("pool_threads", pool::global().threads()),
            )
            .with(
                "gate",
                Json::object()
                    .with("shape", "flux-like ffn_gemm [256x64]x[64x256]")
                    .with("mode", mode)
                    .with("speedup", speedup)
                    .with("threshold", GATE_SPEEDUP)
                    .with("virtual_lanes", MODEL_LANES)
                    .with("measured_wall_ratio", measured),
            )
            .with(
                "identity",
                Json::object()
                    .with("kernels_bitwise_identical", true)
                    .with("pipeline_bytes_identical", true),
            )
            .with("kernels", Json::Array(kernels));
        std::fs::write("BENCH_kernels.json", json.to_string_pretty() + "\n")
            .expect("write BENCH_kernels.json");
        println!("[saved BENCH_kernels.json]");
        save_artifact("bench_kernels.txt", &out);
    }
}
