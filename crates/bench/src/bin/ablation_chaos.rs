//! Chaos ablation — serving resilience under injected faults.
//!
//! Replays the same Poisson trace through the cluster simulator under
//! the canonical fault profiles (baseline, worker-crash,
//! cache-loss+slow-disk, overload-burst, disk-brownout) and reports a
//! [`DegradationReport`] per
//! profile: goodput, P95, retries, fallback rate, and the conservation
//! check that no request was silently lost.
//!
//! Expected shape: the baseline profile matches the fault-free
//! simulator exactly; the fault profiles show nonzero retries or
//! fallbacks, degraded goodput/P95 — and zero lost requests
//! everywhere.

use fps_bench::save_artifact;
use fps_chaos::{FaultProfile, RetryPolicy};
use fps_diffusion::ModelConfig;
use fps_json::ToJson;
use fps_metrics::{DegradationReport, Table};
use fps_serving::cluster::{ClusterConfig, ClusterSim, RunReport};
use fps_serving::router::LeastLoadedRouter;
use fps_serving::{CostModel, GpuSpec};
use fps_simtime::SimTime;
use fps_workload::trace::ArrivalProcess;
use fps_workload::{RatioDistribution, Trace, TraceConfig};

const NUM_TEMPLATES: u64 = 8;

fn degradation(profile: &str, submitted: u64, report: &RunReport) -> DegradationReport {
    DegradationReport {
        profile: profile.to_string(),
        submitted,
        served: report.outcomes.len() as u64,
        rejected: report.rejected.len() as u64 - report.shed,
        shed: report.shed,
        goodput_rps: report.goodput_rps(),
        mean_latency_secs: report.mean_latency(),
        p95_latency_secs: report.p95_latency(),
        retries: report.total_retries,
        fallback_serves: report.fallback_serves,
        fallback_rate: report.fallback_rate(),
        crashes: report.crashes_per_worker.iter().sum(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (duration, rps, workers, seed) = if quick {
        (120.0, 1.0, 2, 1u64)
    } else {
        (600.0, 2.0, 4, 1u64)
    };
    let trace = Trace::generate(&TraceConfig {
        rps,
        arrivals: ArrivalProcess::Poisson,
        duration_secs: duration,
        ratio_dist: RatioDistribution::ProductionTrace,
        num_templates: NUM_TEMPLATES as usize,
        zipf_s: 1.0,
        seed,
    });
    let submitted = trace.len() as u64;
    let horizon = SimTime::from_nanos((duration * 1.5 * 1e9) as u64);
    let cost = CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl());
    let config = || ClusterConfig::flashps_default(cost.clone(), workers);
    let retry = RetryPolicy::default();

    let mut out = String::from("Chaos ablation: goodput and degradation under fault profiles\n\n");
    let mut table = Table::new(&[
        "profile",
        "served",
        "rejected",
        "lost",
        "goodput(req/s)",
        "mean(s)",
        "p95(s)",
        "retries",
        "fallbacks",
        "crashes",
    ]);
    let mut reports = Vec::new();

    // Control arm: the fault-free simulator entry point. The baseline
    // profile below must reproduce it exactly.
    let mut plain_router = LeastLoadedRouter;
    let plain = ClusterSim::run(config(), &trace, &mut plain_router).expect("plain run");

    for profile in FaultProfile::ALL {
        let plan = profile.plan(seed, horizon, workers, NUM_TEMPLATES);
        let mut router = LeastLoadedRouter;
        let report = ClusterSim::run_with_faults(config(), &trace, &mut router, &plan, &retry)
            .expect("chaos run");
        let d = degradation(profile.label(), submitted, &report);
        table.row(&[
            d.profile.clone(),
            format!("{}", d.served),
            format!("{}", d.rejected),
            format!("{}", d.lost()),
            format!("{:.3}", d.goodput_rps),
            format!("{:.3}", d.mean_latency_secs),
            format!("{:.3}", d.p95_latency_secs),
            format!("{}", d.retries),
            format!("{}", d.fallback_serves),
            format!("{}", d.crashes),
        ]);
        assert_eq!(d.lost(), 0, "{}: requests were silently lost", d.profile);
        if profile == FaultProfile::Baseline {
            let delta = (d.mean_latency_secs - plain.mean_latency()).abs();
            assert!(
                delta < 1e-9,
                "baseline must match the fault-free run: delta {delta}"
            );
        } else {
            assert!(
                d.retries + d.fallback_serves > 0,
                "{}: fault profile exercised no resilience machinery",
                d.profile
            );
        }
        reports.push(d);
    }

    out.push_str(&table.render());
    out.push_str(&format!(
        "\nbaseline vs fault-free control: mean {:.4}s / {:.4}s (exact match required)\n",
        reports[0].mean_latency_secs,
        plain.mean_latency(),
    ));
    out.push_str("\nConservation held on every profile: served + rejected == submitted.\n");
    println!("{out}");
    save_artifact("ablation_chaos.txt", &out);
    save_artifact("ablation_chaos.json", &reports.to_json().to_string_pretty());
}
