//! Fig. 9 + Fig. 4-left — cache-loading schedules: naive sequential,
//! strawman block-wise pipeline, and the bubble-free DP pipeline,
//! against the load-free ideal.
//!
//! Reproduces: naive loading adds ~102% latency over ideal for SDXL on
//! H800 (Fig. 4-left); the DP tracks the ideal closely and never loses
//! to the strawman; DP optimality is cross-checked against brute force.

use fps_baselines::eval_setup;
use fps_bench::save_artifact;
use fps_bench::tracereplay::{replay_request, ReplayTracks};
use fps_maskcache::pipeline::{
    ideal_latency, naive_sequential_latency, plan_brute_force, plan_uniform,
    strawman_pipeline_latency,
};
use fps_metrics::Table;
use fps_serving::cost::BatchItem;
use fps_trace::{chrome_trace_string, Clock, TraceSink};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `--trace-out <path>`: additionally replay the three schedules at
    // the production mask ratio on each setup into one Chrome trace
    // (chrome://tracing / ui.perfetto.dev), one process group per
    // (setup, scheme) pair.
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| args.get(i + 1).expect("--trace-out needs a path").clone());
    let trace_sink = match &trace_out {
        Some(_) => TraceSink::recording(Clock::Virtual),
        None => TraceSink::disabled(),
    };
    let mut out = String::from("Fig. 9 / Fig. 4-left reproduction: pipeline loading schemes\n\n");
    for (setup_idx, setup) in eval_setup().into_iter().enumerate() {
        let cm = setup.cost_model();
        let mut table = Table::new(&[
            "mask",
            "ideal(s)",
            "dp(s)",
            "strawman(s)",
            "naive-pipeBW(s)",
            "naive-sync(s)",
            "naive-sync/ideal",
            "dp/ideal",
            "cached-blocks",
        ]);
        for m in [0.05, 0.11, 0.2, 0.35, 0.5, 0.8] {
            let costs = cm.mask_aware_block_costs(&[BatchItem { mask_ratio: m }], false);
            let n = cm.model.blocks;
            let v = vec![costs; n];
            let ideal = ideal_latency(&v).as_secs_f64();
            let naive = naive_sequential_latency(&v).as_secs_f64();
            let strawman = strawman_pipeline_latency(&v).as_secs_f64();
            let plan = plan_uniform(n, costs);
            let dp = plan.latency.as_secs_f64();
            // The Fig. 9-top naive schedule in practice also pays the
            // low synchronous per-tensor copy throughput (Fig. 4-left).
            let naive_sync = cm
                .step_latency_naive_loading(&[BatchItem { mask_ratio: m }])
                .as_secs_f64();
            // Per-step numbers; a request multiplies by `steps`.
            table.row(&[
                format!("{m:.2}"),
                format!("{:.4}", ideal * cm.model.steps as f64),
                format!("{:.4}", dp * cm.model.steps as f64),
                format!("{:.4}", strawman * cm.model.steps as f64),
                format!("{:.4}", naive * cm.model.steps as f64),
                format!("{:.4}", naive_sync * cm.model.steps as f64),
                format!("{:.2}x", naive_sync / ideal),
                format!("{:.2}x", dp / ideal),
                format!("{}/{}", plan.use_cache.iter().filter(|&&b| b).count(), n),
            ]);
            if trace_sink.is_enabled() && m == 0.11 {
                let per_block = vec![costs; n];
                let schemes: [(&str, Vec<bool>, bool); 3] = [
                    ("dp", plan.use_cache.clone(), false),
                    ("strawman", vec![true; n], false),
                    ("naive", vec![true; n], true),
                ];
                for (k, (label, decisions, front_load)) in schemes.iter().enumerate() {
                    let tracks = ReplayTracks::labelled(
                        &trace_sink,
                        (setup_idx * 3 + k) as u32,
                        &format!("{} {label}", cm.model.name),
                    );
                    replay_request(
                        &trace_sink,
                        tracks,
                        0,
                        cm.model.steps,
                        &per_block,
                        decisions,
                        *front_load,
                    );
                }
            }
            // Optimality cross-check against brute force (N ≤ 20).
            if n <= 20 {
                let bf = plan_brute_force(&v);
                assert_eq!(bf.latency, plan.latency, "DP must be optimal");
            }
            assert!(dp <= strawman + 1e-12);
            assert!(strawman <= naive + 1e-12);
        }
        out.push_str(&format!(
            "== {} on {} ({} blocks, {} steps) ==\n{}\n",
            cm.model.name,
            cm.gpu.name,
            cm.model.blocks,
            cm.model.steps,
            table.render()
        ));
    }
    out.push_str(
        "Shape check: synchronous naive loading ≈ 2-3x ideal at production mask\n\
         ratios (paper: +102%); the DP stays within a few percent of ideal and\n\
         never exceeds the strawman.\n",
    );
    if let Some(path) = &trace_out {
        let t = trace_sink.drain().expect("recording sink");
        std::fs::write(path, chrome_trace_string(&t)).expect("write --trace-out");
        println!("wrote schedule replay trace to {path}");
    }
    println!("{out}");
    save_artifact("fig9_pipeline.txt", &out);
}
