//! Fig. 9 + Fig. 4-left — cache-loading schedules: naive sequential,
//! strawman block-wise pipeline, and the bubble-free DP pipeline,
//! against the load-free ideal.
//!
//! Reproduces: naive loading adds ~102% latency over ideal for SDXL on
//! H800 (Fig. 4-left); the DP tracks the ideal closely and never loses
//! to the strawman; DP optimality is cross-checked against brute force.

use fps_baselines::eval_setup;
use fps_bench::save_artifact;
use fps_maskcache::pipeline::{
    ideal_latency, naive_sequential_latency, plan_brute_force, plan_uniform,
    strawman_pipeline_latency,
};
use fps_metrics::Table;
use fps_serving::cost::BatchItem;

fn main() {
    let mut out = String::from("Fig. 9 / Fig. 4-left reproduction: pipeline loading schemes\n\n");
    for setup in eval_setup() {
        let cm = setup.cost_model();
        let mut table = Table::new(&[
            "mask",
            "ideal(s)",
            "dp(s)",
            "strawman(s)",
            "naive-pipeBW(s)",
            "naive-sync(s)",
            "naive-sync/ideal",
            "dp/ideal",
            "cached-blocks",
        ]);
        for m in [0.05, 0.11, 0.2, 0.35, 0.5, 0.8] {
            let costs = cm.mask_aware_block_costs(&[BatchItem { mask_ratio: m }], false);
            let n = cm.model.blocks;
            let v = vec![costs; n];
            let ideal = ideal_latency(&v).as_secs_f64();
            let naive = naive_sequential_latency(&v).as_secs_f64();
            let strawman = strawman_pipeline_latency(&v).as_secs_f64();
            let plan = plan_uniform(n, costs);
            let dp = plan.latency.as_secs_f64();
            // The Fig. 9-top naive schedule in practice also pays the
            // low synchronous per-tensor copy throughput (Fig. 4-left).
            let naive_sync = cm
                .step_latency_naive_loading(&[BatchItem { mask_ratio: m }])
                .as_secs_f64();
            // Per-step numbers; a request multiplies by `steps`.
            table.row(&[
                format!("{m:.2}"),
                format!("{:.4}", ideal * cm.model.steps as f64),
                format!("{:.4}", dp * cm.model.steps as f64),
                format!("{:.4}", strawman * cm.model.steps as f64),
                format!("{:.4}", naive * cm.model.steps as f64),
                format!("{:.4}", naive_sync * cm.model.steps as f64),
                format!("{:.2}x", naive_sync / ideal),
                format!("{:.2}x", dp / ideal),
                format!("{}/{}", plan.use_cache.iter().filter(|&&b| b).count(), n),
            ]);
            // Optimality cross-check against brute force (N ≤ 20).
            if n <= 20 {
                let bf = plan_brute_force(&v);
                assert_eq!(bf.latency, plan.latency, "DP must be optimal");
            }
            assert!(dp <= strawman + 1e-12);
            assert!(strawman <= naive + 1e-12);
        }
        out.push_str(&format!(
            "== {} on {} ({} blocks, {} steps) ==\n{}\n",
            cm.model.name,
            cm.gpu.name,
            cm.model.blocks,
            cm.model.steps,
            table.render()
        ));
    }
    out.push_str(
        "Shape check: synchronous naive loading ≈ 2-3x ideal at production mask\n\
         ratios (paper: +102%); the DP stays within a few percent of ideal and\n\
         never exceeds the strawman.\n",
    );
    println!("{out}");
    save_artifact("fig9_pipeline.txt", &out);
}
