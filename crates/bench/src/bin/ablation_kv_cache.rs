//! §3.1 ablation — caching Y vs caching K/V (Fig. 7).
//!
//! The paper: at mask ratio 20%, the K/V variant cuts SDXL latency by
//! ~10% (2.27 s → 2.06 s) but doubles the cache bytes. This binary
//! reports both sides on the cost model and verifies numeric
//! equivalence of the two variants' outputs on the toy substrate
//! (they share the same attention context; only *where* K/V come from
//! differs).

use fps_baselines::eval_setup;
use fps_bench::{mask_for, save_artifact, system_for};
use fps_diffusion::{ModelConfig, Strategy};
use fps_metrics::Table;
use fps_quality::ssim;
use fps_serving::cost::BatchItem;
use fps_workload::MaskShape;

fn main() {
    let mut out = String::from("§3.1 ablation: Y-cache vs K/V-cache\n\n");

    // Latency and bytes on the cost model.
    let mut table = Table::new(&[
        "model",
        "mask",
        "y-lat(s)",
        "kv-lat(s)",
        "kv-saving",
        "y-cache(GiB)",
        "kv-cache(GiB)",
    ]);
    for setup in eval_setup() {
        let cm = setup.cost_model();
        for m in [0.1, 0.2, 0.35] {
            let batch = [BatchItem { mask_ratio: m }];
            let steps = cm.model.steps as f64;
            let (y_lat, _) = cm.step_latency_mask_aware(&batch, false);
            let (kv_lat, _) = cm.step_latency_mask_aware(&batch, true);
            let y_s = y_lat.as_secs_f64() * steps;
            let kv_s = kv_lat.as_secs_f64() * steps;
            let y_gib = cm.model.cache_bytes_total(m) as f64 / (1u64 << 30) as f64;
            table.row(&[
                cm.model.name.clone(),
                format!("{m:.2}"),
                format!("{y_s:.2}"),
                format!("{kv_s:.2}"),
                format!("{:.1}%", (1.0 - kv_s / y_s) * 100.0),
                format!("{y_gib:.2}"),
                format!("{:.2}", 2.0 * y_gib),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper: at m = 0.2 the K/V variant is ~10% faster (2.27s → 2.06s on SDXL)\n\
         at 2× the cached bytes — a marginal advantage, which is why FlashPS\n\
         defaults to caching Y.\n\n",
    );

    // Numeric check: on a pure DiT model (no conv scaffold) the two
    // variants produce identical outputs — the Y variant recomputes
    // exactly the K/V the KV variant caches. (UNet models' conv
    // scaffold mixes spatially, so cached K/V near the mask boundary
    // are slightly stale there and the variants agree only to
    // SSIM ≈ 0.99.)
    let cfg = ModelConfig::flux_like();
    let mut system = system_for(cfg.clone(), 1);
    system
        .register_template(
            0,
            &fps_diffusion::Image::template(cfg.pixel_h(), cfg.pixel_w(), 5),
        )
        .expect("register");
    let mask = mask_for(&cfg, 0.2, MaskShape::Rect, 7);
    let plan = vec![true; cfg.blocks];
    let y_out = system
        .edit_with_strategy(
            0,
            &mask,
            "p",
            3,
            &Strategy::MaskAware {
                use_cache: plan.clone(),
                kv: false,
            },
        )
        .expect("y edit");
    // The KV variant needs K/V captured at priming.
    let mut kv_config = flashps::FlashPsConfig::new(cfg.clone());
    kv_config.capture_kv = true;
    let mut kv_system = flashps::FlashPs::new(kv_config).expect("system");
    kv_system
        .register_template(
            0,
            &fps_diffusion::Image::template(cfg.pixel_h(), cfg.pixel_w(), 5),
        )
        .expect("register");
    let kv_out = kv_system
        .edit_with_strategy(
            0,
            &mask,
            "p",
            3,
            &Strategy::MaskAware {
                use_cache: plan,
                kv: true,
            },
        )
        .expect("kv edit");
    let s = ssim(&y_out.image, &kv_out.image).expect("ssim");
    out.push_str(&format!(
        "numeric check: SSIM(Y-variant, KV-variant) = {s:.6} — the variants are\n\
         computationally equivalent; they differ only in load bytes vs recompute.\n",
    ));
    assert!(s > 0.999, "variants must agree numerically, got {s}");
    println!("{out}");
    save_artifact("ablation_kv_cache.txt", &out);
}
