//! §6.6 — system overheads.
//!
//! Measures the real wall-clock cost of FlashPS's control-plane
//! operations in this implementation — the Algorithm 2 scheduling
//! decision, the Algorithm 1 pipeline DP, and the regression-model
//! fit — and restates the paper's measured constants that the
//! simulator carries (batching 1.2 ms/step, serialization 1.1 ms,
//! IPC 1.3 ms).
//!
//! Reproduces: every per-request overhead is sub-millisecond to
//! low-millisecond — negligible against multi-second serving latency.

use std::time::Instant;

use flashps::MaskAwareRouter;
use fps_baselines::eval_setup;
use fps_bench::save_artifact;
use fps_maskcache::pipeline::plan_uniform;
use fps_metrics::Table;
use fps_serving::cost::BatchItem;
use fps_serving::profiler::fit_latency_model;
use fps_serving::router::{Router, WorkerView};
use fps_serving::worker::OutstandingReq;
use fps_simtime::SimTime;
use fps_workload::trace::{MaskShapeSpec, RequestSpec};

fn main() {
    let setup = &eval_setup()[2]; // Flux: most blocks, worst case.
    let cm = setup.cost_model();
    let mut out = String::from("§6.6 reproduction: system overheads\n\n");
    let mut table = Table::new(&["operation", "measured", "paper"]);

    // Algorithm 2 decision latency across 8 workers.
    let mut router = MaskAwareRouter::new(cm.clone()).expect("router");
    let workers: Vec<WorkerView> = (0..8)
        .map(|id| WorkerView {
            id,
            outstanding: (0..4)
                .map(|k| OutstandingReq {
                    mask_ratio: 0.1 + 0.05 * k as f64,
                    steps_left: 20 + k,
                })
                .collect(),
            max_batch: 8,
            model_tokens: cm.model.tokens(),
            health: fps_serving::worker::WorkerHealth::Healthy,
        })
        .collect();
    let req = RequestSpec {
        id: 0,
        arrival_ns: 0,
        template_id: 0,
        mask_ratio: 0.15,
        mask_shape: MaskShapeSpec::Blob,
        seed: 0,
    };
    let n = 2000;
    let start = Instant::now();
    for _ in 0..n {
        std::hint::black_box(router.route(&req, &workers, SimTime::ZERO));
    }
    let route_us = start.elapsed().as_secs_f64() * 1e6 / n as f64;
    table.row(&[
        "scheduling decision (Algorithm 2, 8 workers)".into(),
        format!("{route_us:.1} µs"),
        "0.6 ms".into(),
    ]);
    assert!(route_us < 600.0, "decision must stay sub-paper-budget");

    // Algorithm 1 DP.
    let costs = cm.mask_aware_block_costs(&[BatchItem { mask_ratio: 0.15 }; 8], false);
    let start = Instant::now();
    for _ in 0..n {
        std::hint::black_box(plan_uniform(cm.model.blocks, costs));
    }
    let dp_us = start.elapsed().as_secs_f64() * 1e6 / n as f64;
    table.row(&[
        format!("pipeline DP (Algorithm 1, {} blocks)", cm.model.blocks),
        format!("{dp_us:.1} µs"),
        "negligible (O(N))".into(),
    ]);

    // Offline regression fit (one-time).
    let start = Instant::now();
    let _ = fit_latency_model(&cm).expect("fit");
    let fit_ms = start.elapsed().as_secs_f64() * 1e3;
    table.row(&[
        "offline regression fit (one-time)".into(),
        format!("{fit_ms:.2} ms"),
        "offline".into(),
    ]);

    // Constants the simulator carries from the paper's measurements.
    table.row_strs(&["batch organization per step", "carried as 1.2 ms", "1.2 ms"]);
    table.row_strs(&["latent serialization", "carried as 1.1 ms", "1.1 ms"]);
    table.row_strs(&["IPC to postprocess process", "carried as 1.3 ms", "1.3 ms"]);

    out.push_str(&table.render());
    out.push_str(
        "\nTakeaway (as in the paper): control-plane overheads are microseconds-to-\n\
         milliseconds, negligible against request latencies measured in seconds.\n",
    );
    println!("{out}");
    save_artifact("overhead_micro.txt", &out);
}
