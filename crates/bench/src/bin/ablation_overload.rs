//! Overload ablation — SLO-aware admission and the degradation ladder
//! under a saturating burst.
//!
//! Replays one seeded bursty VITON-HD-ratio trace (offered load well
//! above what two workers sustain) through the cluster simulator twice:
//! once with overload control ON (token-bucket admission, in-queue
//! deadline shedding, the FlashPS-kv → … → reduced-steps ladder) and
//! once OFF (same premium engine, no controller). Reports an
//! [`SloReport`] per arm and a per-rung output-quality probe (SSIM
//! against the full-recompute reference on the tiny numeric model).
//!
//! Expected shape: the OFF arm queues everything and blows the
//! deadline for most of the burst — high p95, low goodput *at the
//! deadline*. The ON arm sheds what cannot finish in time and serves
//! the rest, some of it at degraded rungs: strictly higher
//! goodput-at-deadline, strictly lower p95, zero silent losses, and
//! byte-identical reruns.

use flashps::rung_strategy;
use flashps::system::FlashPs;
use fps_bench::{save_artifact, system_for};
use fps_diffusion::{Image, ModelConfig, Strategy};
use fps_json::{Json, ToJson};
use fps_metrics::{RungServed, SloReport, Table};
use fps_overload::Rung;
use fps_quality::ssim;
use fps_serving::cluster::{ClusterConfig, ClusterSim, RunReport};
use fps_serving::router::LeastLoadedRouter;
use fps_serving::{CostModel, EngineKind, GpuSpec};
use fps_simtime::SimDuration;
use fps_trace::{bubble_in_window, chrome_trace_string, percentile, Clock, TraceSink};
use fps_workload::trace::ArrivalProcess;
use fps_workload::{QualityBenchmark, RatioDistribution, Trace, TraceConfig};

const DEADLINE_SECS: f64 = 30.0;
const WORKERS: usize = 2;

fn slo_report(label: &str, submitted: u64, r: &RunReport, quality: &[(String, f64)]) -> SloReport {
    let shed = r.shed;
    let deadline_rejected = r.deadline_rejections();
    let other_rejected = r.rejected.len() as u64 - shed - deadline_rejected;
    let rungs = r
        .rung_counts()
        .into_iter()
        .map(|(rung, served)| {
            let label = match rung {
                Some(rg) => rg.label().to_string(),
                None => "no-ladder".to_string(),
            };
            let q = quality.iter().find(|(l, _)| *l == label).map(|&(_, q)| q);
            RungServed::new(label, served, q)
        })
        .collect();
    SloReport {
        label: label.to_string(),
        deadline_secs: DEADLINE_SECS,
        submitted,
        served: r.outcomes.len() as u64,
        served_within_deadline: r.served_within(DEADLINE_SECS),
        shed,
        deadline_rejected,
        other_rejected,
        goodput_rps: r.goodput_rps(),
        goodput_at_deadline_rps: r.goodput_at_deadline(DEADLINE_SECS),
        p95_latency_secs: r.p95_latency(),
        mean_latency_secs: r.mean_latency(),
        rungs,
        stages: Vec::new(),
        bubble_fraction: None,
    }
}

/// Fills the trace-derived fields of `slo`: GPU bubble fraction over
/// the run's span window and per-rung queue-wait percentiles from the
/// "queue" spans (grouped by their `rung` arg; spans with no rung arg
/// belong to the "no-ladder" row).
fn apply_trace_aggregates(slo: &mut SloReport, t: &fps_trace::Trace) {
    if let Some((lo, hi)) = t.window() {
        slo.bubble_fraction = Some(bubble_in_window(t, lo, hi, |s| s.cat == "gpu").fraction());
    }
    for rung in &mut slo.rungs {
        let waits: Vec<f64> = t
            .spans_named("queue")
            .filter(|s| s.arg("rung").and_then(Json::as_str).unwrap_or("no-ladder") == rung.label)
            .map(|s| s.duration_ns() as f64 / 1e9)
            .collect();
        if !waits.is_empty() {
            rung.queue_wait_p50_secs = Some(percentile(&waits, 50.0));
            rung.queue_wait_p95_secs = Some(percentile(&waits, 95.0));
        }
    }
}

/// Mean SSIM of each rung's output against the full-recompute
/// reference, on the tiny numeric model over VITON-HD-like cases.
fn rung_quality(cases: usize) -> Vec<(String, f64)> {
    // The tiny model's 4-step schedule is too coarse for step
    // skipping to degrade gracefully; a 12-step schedule keeps the
    // probe fast while giving the ladder rungs room to differ.
    let mut cfg = ModelConfig::tiny();
    cfg.steps = 12;
    let bench = QualityBenchmark::viton_hd_like(cases, cfg.pixel_h(), cfg.pixel_w(), 24);
    // The premium rung serves cached-K/V attention, which needs K/V
    // captured at template priming.
    let mut kv_config = flashps::FlashPsConfig::new(cfg.clone());
    kv_config.capture_kv = true;
    let mut system = FlashPs::new(kv_config).expect("system");
    let mut seen = std::collections::HashSet::new();
    for case in &bench.cases {
        if seen.insert(case.template_id) {
            let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), case.template_seed);
            system
                .register_template(case.template_id, &img)
                .expect("register");
        }
    }
    // The deepest rung also runs a shortened schedule: a second system
    // over the same templates with 0.6× the denoising steps.
    let mut reduced_cfg = cfg.clone();
    reduced_cfg.steps = ((cfg.steps as f64) * Rung::ReducedSteps.steps_factor())
        .round()
        .max(1.0) as usize;
    let mut reduced_system = system_for(reduced_cfg, 0);
    let mut seen = std::collections::HashSet::new();
    for case in &bench.cases {
        if seen.insert(case.template_id) {
            let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), case.template_seed);
            reduced_system
                .register_template(case.template_id, &img)
                .expect("register");
        }
    }

    let reference: Vec<Image> = bench
        .cases
        .iter()
        .map(|c| {
            system
                .edit_with_strategy(
                    c.template_id,
                    &c.mask,
                    &c.prompt,
                    c.seed,
                    &Strategy::FullRecompute,
                )
                .expect("reference edit")
                .image
        })
        .collect();

    Rung::ALL
        .iter()
        .map(|&rung| {
            let sys = if rung == Rung::ReducedSteps {
                &reduced_system
            } else {
                &system
            };
            let mean: f64 = bench
                .cases
                .iter()
                .zip(reference.iter())
                .map(|(c, r)| {
                    let strategy = rung_strategy(rung, sys, c.mask.ratio(), cfg.steps);
                    let out = sys
                        .edit_with_strategy(c.template_id, &c.mask, &c.prompt, c.seed, &strategy)
                        .expect("rung edit")
                        .image;
                    ssim(&out, r).expect("ssim")
                })
                .sum::<f64>()
                / cases as f64;
            (rung.label().to_string(), mean)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| args.get(i + 1).expect("--trace-out needs a path").clone());
    let quality_cases = if quick { 4 } else { 12 };

    // A seeded burst that saturates two H800 workers: ~4.5 rps of
    // VITON-HD-ratio edits against ~2 rps of sustainable capacity.
    let trace = Trace::generate(&TraceConfig {
        rps: 5.0,
        arrivals: ArrivalProcess::bursty_default(),
        duration_secs: 120.0,
        ratio_dist: RatioDistribution::VitonHd,
        num_templates: 8,
        zipf_s: 1.0,
        seed: 24,
    });
    let submitted = trace.len() as u64;
    let mean_ratio =
        trace.requests.iter().map(|r| r.mask_ratio).sum::<f64>() / trace.len().max(1) as f64;
    let cost = || CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl());

    let on_config = || {
        ClusterConfig::with_overload_control(
            cost(),
            WORKERS,
            mean_ratio,
            SimDuration::from_secs_f64(DEADLINE_SECS),
        )
    };
    // The OFF arm serves the same premium engine with no controller:
    // everything queues, nothing sheds, nothing degrades.
    let off_config = || {
        let mut cfg = ClusterConfig::flashps_default(cost(), WORKERS);
        cfg.engine = EngineKind::FlashPs { kv: true };
        cfg
    };

    let run = |cfg: ClusterConfig| -> RunReport {
        let mut router = LeastLoadedRouter;
        ClusterSim::run(cfg, &trace, &mut router).expect("cluster run")
    };
    // The first run of each arm records a virtual-clock trace; the
    // replays run untraced, which doubles as a passivity check
    // (tracing must not change outcomes).
    let traced_run = |cfg: ClusterConfig, sink: &TraceSink| -> RunReport {
        let mut cfg = cfg;
        cfg.trace = sink.clone();
        run(cfg)
    };

    let on_sink = TraceSink::recording(Clock::Virtual);
    let off_sink = TraceSink::recording(Clock::Virtual);
    let on = traced_run(on_config(), &on_sink);
    let off = traced_run(off_config(), &off_sink);
    let on_trace = on_sink.drain().expect("ON arm trace");
    let off_trace = off_sink.drain().expect("OFF arm trace");

    // Determinism: both arms replay byte-identically.
    let on_replay = run(on_config());
    assert_eq!(
        on.outcomes, on_replay.outcomes,
        "ON arm must replay identically"
    );
    assert_eq!(
        on.rejected, on_replay.rejected,
        "ON arm must replay identically"
    );
    let off_replay = run(off_config());
    assert_eq!(
        off.outcomes, off_replay.outcomes,
        "OFF arm must replay identically"
    );

    let quality = rung_quality(quality_cases);
    let mut on_slo = slo_report("overload-on", submitted, &on, &quality);
    let mut off_slo = slo_report("overload-off", submitted, &off, &quality);
    apply_trace_aggregates(&mut on_slo, &on_trace);
    apply_trace_aggregates(&mut off_slo, &off_trace);

    if let Some(path) = &trace_out {
        std::fs::write(path, chrome_trace_string(&on_trace)).expect("write --trace-out");
        eprintln!("wrote ON-arm chrome trace to {path}");
    }

    // Conservation on both arms, and the headline comparison.
    assert_eq!(on_slo.lost(), 0, "ON arm lost requests");
    assert_eq!(off_slo.lost(), 0, "OFF arm lost requests");
    assert!(on_slo.shed > 0, "saturation must shed at admission");
    assert!(
        on_slo.goodput_at_deadline_rps > off_slo.goodput_at_deadline_rps,
        "overload control must win on goodput at the deadline: {} vs {}",
        on_slo.goodput_at_deadline_rps,
        off_slo.goodput_at_deadline_rps
    );
    assert!(
        on_slo.p95_latency_secs < off_slo.p95_latency_secs,
        "overload control must win on p95: {} vs {}",
        on_slo.p95_latency_secs,
        off_slo.p95_latency_secs
    );
    for (label, q) in &quality {
        assert!(
            q.is_finite() && *q > 0.0 && *q <= 1.0 + 1e-9,
            "{label}: SSIM {q}"
        );
    }

    let mut out =
        String::from("Overload ablation: SLO attainment with and without overload control\n\n");
    out.push_str(&format!(
        "trace: bursty VITON-HD ratios, {} requests over 120s (offered ~{:.1} rps), \
         {} workers, deadline {}s\n\n",
        submitted,
        submitted as f64 / 120.0,
        WORKERS,
        DEADLINE_SECS
    ));
    let mut table = Table::new(&[
        "arm",
        "served",
        "in-SLO",
        "shed",
        "deadline-rej",
        "goodput@SLO(req/s)",
        "p95(s)",
        "attainment",
        "gpu-bubble",
    ]);
    for r in [&on_slo, &off_slo] {
        table.row(&[
            r.label.clone(),
            format!("{}", r.served),
            format!("{}", r.served_within_deadline),
            format!("{}", r.shed),
            format!("{}", r.deadline_rejected),
            format!("{:.3}", r.goodput_at_deadline_rps),
            format!("{:.2}", r.p95_latency_secs),
            format!("{:.3}", r.attainment()),
            r.bubble_fraction
                .map(|b| format!("{b:.3}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str(&table.render());

    out.push_str("\nDegradation-ladder service mix (ON arm), per-rung quality and queue wait:\n");
    let mut rung_table = Table::new(&[
        "rung",
        "served",
        "SSIM vs full recompute",
        "queue-wait p50(s)",
        "p95(s)",
    ]);
    let fmt_secs = |v: Option<f64>| v.map(|s| format!("{s:.2}")).unwrap_or_else(|| "-".into());
    for r in &on_slo.rungs {
        rung_table.row(&[
            r.label.clone(),
            format!("{}", r.served),
            r.quality
                .map(|q| format!("{q:.3}"))
                .unwrap_or_else(|| "-".into()),
            fmt_secs(r.queue_wait_p50_secs),
            fmt_secs(r.queue_wait_p95_secs),
        ]);
    }
    out.push_str(&rung_table.render());
    out.push_str(
        "\nThe OFF arm queues the whole burst: most answers arrive after the deadline.\n\
         The ON arm sheds infeasible work at admission, rejects queue-expired requests\n\
         early, and serves the remainder — partly at degraded rungs — inside the SLO.\n\
         Rung compute cost falls monotonically with depth; SSIM on the tiny synthetic\n\
         model does not (step-skip quality depends on *which* steps are skipped), so\n\
         the quality column is reported per rung rather than asserted monotone.\n",
    );
    println!("{out}");
    save_artifact("ablation_overload.txt", &out);
    save_artifact(
        "ablation_overload.json",
        &vec![on_slo, off_slo].to_json().to_string_pretty(),
    );
}
