//! Fig. 12 — end-to-end request serving performance.
//!
//! For each evaluation setup (SD2.1/A10, SDXL/H800, Flux/H800) and
//! each system (Diffusers, FISEdit where supported, TeaCache,
//! FlashPS), sweeps the offered load and reports mean/P95 latency,
//! queueing, and throughput on an 8-worker cluster. The rightmost
//! panel (normalized queueing at the reference RPS) is included.
//!
//! Reproduces: FlashPS lowest latency across the sweep — the paper
//! reports up to 14.7× vs Diffusers, 4× vs FISEdit, 6× vs TeaCache,
//! and P95 reductions of 88/71/60%.

use flashps::experiment::{fig12_grid, to_json};
use fps_baselines::eval_setup;
use fps_bench::save_artifact;
use fps_metrics::{line_plot, Series, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (duration, workers) = if quick { (120.0, 4) } else { (600.0, 8) };
    let mut out = String::from("Fig. 12 reproduction: end-to-end serving performance\n\n");
    let mut all_points = Vec::new();
    for setup in eval_setup() {
        // Per-model RPS grids: bigger models saturate at lower rates.
        // Ranges span from light load to beyond the slowest baseline's
        // cluster capacity, like the paper's sweeps.
        let rps_values: Vec<f64> = if quick {
            match setup.model.name.as_str() {
                "flux" => vec![0.25, 0.5, 1.0, 1.5],
                _ => vec![0.5, 1.0, 2.0, 3.0],
            }
        } else {
            match setup.model.name.as_str() {
                "flux" => vec![0.25, 0.5, 1.0, 2.0],
                _ => vec![1.0, 2.0, 4.0, 6.0],
            }
        };
        let points = fig12_grid(&setup, &rps_values, workers, duration).expect("grid");
        let mut table = Table::new(&[
            "system",
            "rps",
            "mean(s)",
            "p95(s)",
            "queue(s)",
            "tput(req/s)",
            "served",
        ]);
        for p in &points {
            table.row(&[
                p.system.clone(),
                format!("{:.2}", p.rps),
                format!("{:.2}", p.mean_latency),
                format!("{:.2}", p.p95_latency),
                format!("{:.2}", p.mean_queueing),
                format!("{:.2}", p.throughput),
                format!("{}", p.served),
            ]);
        }
        out.push_str(&format!(
            "== {} on {} ({} workers) ==\n{}",
            setup.model.name,
            setup.gpu.name,
            workers,
            table.render()
        ));
        // Speedup summary at the highest common RPS.
        let top_rps = *rps_values.last().expect("non-empty");
        let at = |sys: &str| {
            points
                .iter()
                .find(|p| p.system == sys && (p.rps - top_rps).abs() < 1e-9)
                .map(|p| p.mean_latency)
        };
        if let Some(flash) = at("flashps") {
            let mut line = format!("speedups at RPS {top_rps}: ");
            for sys in ["diffusers", "fisedit", "teacache"] {
                if let Some(v) = at(sys) {
                    line.push_str(&format!("{sys} {:.1}x  ", v / flash));
                }
            }
            out.push_str(&line);
            out.push('\n');
        }
        // Rightmost panel: normalized queueing at the top RPS.
        let mut qpanel = String::from("normalized queueing at top RPS: ");
        let flash_q = points
            .iter()
            .find(|p| p.system == "flashps" && (p.rps - top_rps).abs() < 1e-9)
            .map(|p| p.mean_queueing.max(1e-9))
            .unwrap_or(1.0);
        for p in points.iter().filter(|p| (p.rps - top_rps).abs() < 1e-9) {
            qpanel.push_str(&format!("{} {:.1}x  ", p.system, p.mean_queueing / flash_q));
        }
        out.push_str(&qpanel);
        out.push('\n');
        // ASCII rendition of the latency-vs-RPS curves.
        let mut series = Vec::new();
        for sys in ["diffusers", "fisedit", "teacache", "flashps"] {
            let pts: Vec<(f64, f64)> = points
                .iter()
                .filter(|p| p.system == sys)
                .map(|p| (p.rps, p.mean_latency))
                .collect();
            if !pts.is_empty() {
                series.push(Series::new(sys, pts));
            }
        }
        out.push_str(&line_plot(
            "mean latency (s) vs offered RPS",
            &series,
            64,
            14,
        ));
        out.push('\n');
        all_points.extend(points);
    }
    println!("{out}");
    save_artifact("fig12_e2e.txt", &out);
    save_artifact("fig12_e2e.json", &to_json(&all_points));
}
