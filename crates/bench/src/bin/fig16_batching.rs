//! Fig. 16-left + §6.4 — batching strategies on one Flux/H800 worker.
//!
//! Compares static batching, naive continuous batching, and FlashPS's
//! disaggregated continuous batching at RPS 0.5 with max batch 8:
//! P95 request latency, P95 inference latency, and interruption
//! statistics.
//!
//! Reproduces: static +35% and naive-CB +40% P95 over disaggregated
//! CB; naive-CB interrupts requests ~6 (median) / ~8 (P95) times.

use fps_baselines::{eval_setup, SystemKind};
use fps_bench::save_artifact;
use fps_metrics::stats::percentile;
use fps_metrics::Table;
use fps_serving::{BatchingPolicy, ClusterSim};
use fps_workload::{RatioDistribution, Trace, TraceConfig};

fn main() {
    let setup = &eval_setup()[2]; // Flux on H800, per the paper.
                                  // The paper drives one Flux worker at RPS 0.5; our calibrated Flux
                                  // worker saturates near 0.28 req/s, so the equivalent operating
                                  // point (~80% utilization) is RPS 0.22.
    let trace = Trace::generate(&TraceConfig {
        rps: 0.2,
        arrivals: fps_workload::trace::ArrivalProcess::Poisson,
        duration_secs: 1200.0,
        ratio_dist: RatioDistribution::ProductionTrace,
        num_templates: 8,
        zipf_s: 1.0,
        seed: 0x16,
    });
    let mut out = String::from(
        "Fig. 16-left reproduction: batching strategies (Flux/H800, 1 worker, ~80% load)\n\n",
    );
    let mut table = Table::new(&[
        "batching",
        "p95-req(s)",
        "p95-inf(s)",
        "median-intr",
        "p95-intr",
        "vs-disagg",
    ]);
    let mut p95s = Vec::new();
    for policy in [
        BatchingPolicy::Static,
        BatchingPolicy::ContinuousNaive,
        BatchingPolicy::ContinuousDisaggregated,
    ] {
        let mut cfg = setup
            .cluster_config(SystemKind::FlashPs, 1)
            .expect("supported");
        cfg.batching = policy;
        let mut router = fps_serving::LeastLoadedRouter;
        let report = ClusterSim::run(cfg, &trace, &mut router).expect("run");
        let p95_req = report.p95_latency();
        let p95_inf = report
            .recorder
            .inference_summary()
            .map(|s| s.p95)
            .unwrap_or(f64::NAN);
        let ints: Vec<f64> = report
            .outcomes
            .iter()
            .map(|o| o.interruptions as f64)
            .collect();
        p95s.push((policy.label(), p95_req));
        table.row(&[
            policy.label().to_string(),
            format!("{p95_req:.2}"),
            format!("{p95_inf:.2}"),
            format!("{:.0}", percentile(&ints, 50.0)),
            format!("{:.0}", percentile(&ints, 95.0)),
            String::new(),
        ]);
    }
    // Fill the comparison column against disaggregated CB.
    let disagg = p95s
        .iter()
        .find(|(l, _)| *l == "disagg-cb")
        .map(|(_, v)| *v)
        .expect("present");
    let mut final_table = Table::new(&["batching", "p95-req(s)", "vs-disagg"]);
    for (label, v) in &p95s {
        final_table.row(&[
            label.to_string(),
            format!("{v:.2}"),
            format!("+{:.0}%", (v / disagg - 1.0) * 100.0),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(&final_table.render());
    out.push_str(
        "\nPaper: static +35%, naive continuous +40% P95 over FlashPS's disaggregated\n\
         continuous batching; median/P95 interruptions 6/8 under naive CB.\n",
    );
    println!("{out}");
    save_artifact("fig16_batching.txt", &out);
}
