//! Fig. 16-right + §6.5 — load-balancing policies.
//!
//! Compares request-granularity, token-granularity, and mask-aware
//! (Algorithm 2) balancing on a 4-worker Flux/H800 cluster at low
//! (0.25 RPS/worker) and high (0.5 RPS/worker) load.
//!
//! Reproduces: comparable at low load; at high load the baselines'
//! tail latency inflates by up to ~35% because they ignore the
//! mask-ratio heterogeneity of the work they place.

use flashps::experiment::{run_serving, RouterKind, ServingRun};
use fps_baselines::{eval_setup, SystemKind};
use fps_bench::save_artifact;
use fps_metrics::Table;
use fps_workload::trace::ArrivalProcess;
use fps_workload::RatioDistribution;

fn main() {
    let setup = &eval_setup()[2]; // Flux on H800.
    let workers = 4usize;
    let mut out = String::from(
        "Fig. 16-right reproduction: load-balancing policies (Flux/H800, 4 workers)\n\n",
    );
    for per_worker_rps in [0.15, 0.25] {
        let rps = per_worker_rps * workers as f64;
        let mut table = Table::new(&["policy", "p95-req(s)", "mean(s)", "vs-mask-aware"]);
        let mut results = Vec::new();
        for router in [
            RouterKind::RequestCount,
            RouterKind::TokenCount,
            RouterKind::MaskAware,
        ] {
            let run = ServingRun {
                system: SystemKind::FlashPs,
                router,
                workers,
                rps,
                arrivals: ArrivalProcess::Poisson,
                duration_secs: 900.0,
                ratio_dist: RatioDistribution::ProductionTrace,
                seed: 0x165,
                ..ServingRun::default()
            };
            let p = run_serving(setup, &run).expect("run").expect("supported");
            results.push((router.label(), p.p95_latency, p.mean_latency));
        }
        let aware = results
            .iter()
            .find(|(l, _, _)| *l == "mask-aware")
            .map(|(_, v, _)| *v)
            .expect("present");
        for (label, p95, mean) in &results {
            table.row(&[
                label.to_string(),
                format!("{p95:.2}"),
                format!("{mean:.2}"),
                format!("{:+.0}%", (p95 / aware - 1.0) * 100.0),
            ]);
        }
        out.push_str(&format!(
            "== RPS {per_worker_rps}/worker ({rps} total) ==\n{}\n",
            table.render()
        ));
    }
    out.push_str(
        "Paper: comparable at RPS 0.25/worker; baselines up to +35% tail latency at\n\
         RPS 0.5/worker. Mask-aware balancing decreases tail latency by up to 26%.\n",
    );
    println!("{out}");
    save_artifact("fig16_balance.txt", &out);
}
