//! Fig. 15 — mask-aware editing latency vs mask ratio.
//!
//! Left (kernel level): real wall-clock timings of the numeric
//! substrate's masked attention/linear/FFN kernels at toy scale —
//! latency grows with the mask ratio, consistent with Table 1.
//!
//! Right (image level): analytic image-editing latency for
//! SD2.1/SDXL/Flux under the cost model, with the speedup at the
//! paper's reference ratio m = 0.2 (paper: 1.3/2.2/1.9×).

use std::time::Instant;

use fps_baselines::eval_setup;
use fps_bench::save_artifact;
use fps_diffusion::flops::masked_tokens;
use fps_diffusion::ModelConfig;
use fps_metrics::Table;
use fps_serving::cost::BatchItem;
use fps_tensor::ops::{gelu, matmul, matmul_bt, softmax_rows};
use fps_tensor::rng::DetRng;
use fps_tensor::Tensor;

/// Times one masked transformer-kernel bundle (QKV projection,
/// attention scores + values, FFN) at `m` of `l` tokens; returns
/// microseconds averaged over `reps`.
fn kernel_micros(l: usize, h: usize, m: f64, reps: usize) -> f64 {
    let mut rng = DetRng::new(15);
    let ml = ((m * l as f64).round() as usize).clamp(1, l);
    let x = Tensor::randn([ml, h], &mut rng);
    let w = Tensor::xavier(h, h, &mut rng);
    let w1 = Tensor::xavier(h, 4 * h, &mut rng);
    let w2 = Tensor::xavier(4 * h, h, &mut rng);
    let start = Instant::now();
    for _ in 0..reps {
        let q = matmul(&x, &w).expect("q");
        let k = matmul(&x, &w).expect("k");
        let v = matmul(&x, &w).expect("v");
        let scores = softmax_rows(&matmul_bt(&q, &k).expect("scores")).expect("softmax");
        let ctx = matmul(&scores, &v).expect("ctx");
        let ff = matmul(&gelu(&matmul(&ctx, &w1).expect("ff1")), &w2).expect("ff2");
        std::hint::black_box(ff);
    }
    start.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn main() {
    let ratios = [0.1, 0.2, 0.35, 0.5, 0.75, 1.0];
    let mut out = String::from("Fig. 15 reproduction: latency vs mask ratio\n\n");

    // Kernel level: real timings at a mid-size toy scale.
    let (l, h) = (256usize, 128usize);
    let mut table = Table::new(&["mask", "masked-tokens", "kernel(us)", "vs-full"]);
    let full = kernel_micros(l, h, 1.0, 10);
    for &m in &ratios {
        let t = kernel_micros(l, h, m, 10);
        table.row(&[
            format!("{m:.2}"),
            format!("{}", ((m * l as f64) as usize).max(1)),
            format!("{t:.0}"),
            format!("{:.2}x", t / full),
        ]);
    }
    out.push_str(&format!(
        "== kernel level (real timings, L={l}, H={h}) ==\n{}",
        table.render()
    ));
    out.push_str("Kernel latency falls with the mask ratio, per Table 1.\n\n");

    // Image level: analytic editing latency per model.
    let mut table = Table::new(&["model", "mask", "flashps(s)", "full(s)", "speedup"]);
    for setup in eval_setup() {
        let cm = setup.cost_model();
        let steps = cm.model.steps as f64;
        let full_lat = cm.step_latency_full(1).as_secs_f64() * steps;
        for &m in &ratios {
            let (aware, _) = cm.step_latency_mask_aware(&[BatchItem { mask_ratio: m }], false);
            let aware_lat = aware.as_secs_f64() * steps;
            table.row(&[
                cm.model.name.clone(),
                format!("{m:.2}"),
                format!("{aware_lat:.2}"),
                format!("{full_lat:.2}"),
                format!("{:.2}x", full_lat / aware_lat),
            ]);
        }
    }
    out.push_str(&format!(
        "== image level (cost model) ==\n{}",
        table.render()
    ));

    // Reference point: speedups at m = 0.2.
    let mut line = String::from("speedup at m=0.2: ");
    for setup in eval_setup() {
        let cm = setup.cost_model();
        let full_lat = cm.step_latency_full(1).as_secs_f64();
        let (aware, _) = cm.step_latency_mask_aware(&[BatchItem { mask_ratio: 0.2 }], false);
        line.push_str(&format!(
            "{} {:.2}x  ",
            cm.model.name,
            full_lat / aware.as_secs_f64()
        ));
    }
    out.push_str(&line);
    out.push_str("(paper: SD2.1 1.3x, SDXL 2.2x, Flux 1.9x)\n");

    // Cross-check the masked-token clamp used throughout.
    let cfg = ModelConfig::paper_sdxl();
    assert_eq!(masked_tokens(&cfg, 1.0), cfg.tokens());
    println!("{out}");
    save_artifact("fig15_mask_latency.txt", &out);
}
