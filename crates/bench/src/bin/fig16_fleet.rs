//! Fig. 16 (fleet): template-affinity routing vs round-robin and
//! random under Zipf-skewed multi-tenant load.
//!
//! One seeded [`FleetTrace`] — two tenants, Zipf(1.0) template
//! popularity, diurnal arrival modulation — is played through the same
//! four-shard fleet under each routing strategy. Routing is the *only*
//! difference: every run pre-primes the same per-shard caches by ring
//! ownership, uses the same admission control, the same worker pools.
//!
//! Two claims are asserted every run (smoke included, so
//! `scripts/check.sh` gates them):
//!
//! 1. **Affinity wins** — bounded-load template affinity strictly
//!    beats round-robin AND random on activation-cache hit rate and on
//!    goodput@SLO. A cache miss recomputes the full latent (mask ratio
//!    1.0 instead of the request's own), so losing affinity costs real
//!    service time, which costs deadline attainment.
//! 2. **Replays are byte-identical** — each strategy is run twice on
//!    the calendar-queue scheduler and once on the binary heap; all
//!    three reports must serialize to the same bytes.
//!
//! Flags: `--smoke` shrinks the trace and writes no artifacts; the
//! full run saves `results/fig16_fleet.txt` and
//! `results/fig16_fleet.json`.

use fps_bench::save_artifact;
use fps_fleet::{FleetConfig, FleetReport, FleetSim, RouteStrategy};
use fps_json::{Json, ToJson};
use fps_metrics::Table;
use fps_workload::{DiurnalConfig, FleetTrace, FleetTraceConfig, TenantSpec};

fn fleet_config(strategy: RouteStrategy) -> FleetConfig {
    FleetConfig {
        shards: 4,
        workers_per_shard: 2,
        max_batch: 4,
        cache_capacity: 24,
        // Tight enough that queue buildup converts to deadline misses:
        // a full-recompute request takes ~3.6 virtual seconds of
        // service, so a shard running behind blows this quickly.
        deadline_secs: 4.5,
        // Fixed quality: the ladder would let miss-heavy shards cut
        // denoising steps, hiding the cache-miss penalty as quality
        // loss that goodput@SLO cannot see.
        allow_degradation: false,
        strategy,
        ..Default::default()
    }
}

/// Runs one strategy three times — calendar, calendar again, heap —
/// and asserts all three reports serialize identically.
fn run_strategy(strategy: RouteStrategy, trace: &FleetTrace) -> FleetReport {
    let report = FleetSim::run(fleet_config(strategy), trace);
    let bytes = report.to_json().to_string_compact();
    let replay = FleetSim::run(fleet_config(strategy), trace)
        .to_json()
        .to_string_compact();
    assert_eq!(bytes, replay, "{}: replay diverged", strategy.name());
    let heap = FleetSim::run_on_heap(fleet_config(strategy), trace)
        .to_json()
        .to_string_compact();
    assert_eq!(
        bytes,
        heap,
        "{}: calendar and heap runs diverged",
        strategy.name()
    );
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration_secs = if smoke { 180.0 } else { 900.0 };
    let trace = FleetTrace::generate(&FleetTraceConfig {
        tenants: vec![
            TenantSpec::new("studio", 4.0, 64),
            TenantSpec::new("retail", 3.5, 48),
        ],
        duration_secs,
        diurnal: Some(DiurnalConfig {
            period_secs: duration_secs / 2.0,
            amplitude: 0.4,
            phase: 0.0,
        }),
        seed: 0x16F1EE7,
    });

    let strategies = [
        RouteStrategy::Affinity { load_factor: 1.25 },
        RouteStrategy::RoundRobin,
        RouteStrategy::Random,
    ];
    let reports: Vec<FleetReport> = strategies
        .iter()
        .map(|&s| run_strategy(s, &trace))
        .collect();

    let mut table = Table::new(&[
        "strategy",
        "hit-rate",
        "goodput@slo(rps)",
        "p95(s)",
        "attainment",
        "shed",
        "spills",
    ]);
    for r in &reports {
        table.row(&[
            r.strategy.to_string(),
            format!("{:.3}", r.hit_rate()),
            format!("{:.3}", r.fleet.fleet.goodput_at_deadline_rps),
            format!("{:.2}", r.fleet.fleet.p95_latency_secs),
            format!("{:.3}", r.fleet.fleet.attainment()),
            format!("{}", r.fleet.fleet.shed + r.fleet.fleet.deadline_rejected),
            format!("{}", r.spills),
        ]);
    }
    let mut out = format!(
        "Fig. 16 (fleet): routing strategies over one Zipf(1.0) diurnal trace\n\
         ({} requests, {} tenants, 4 shards x 2 workers, cache 24 templates/shard)\n\n",
        trace.trace.len(),
        2,
    );
    out.push_str(&table.render());
    out.push_str(
        "\nSame trace, same caches, same admission control - only the shard choice\n\
         differs. Affinity keeps repeat edits of a template on the shard whose\n\
         activation cache holds it; a miss recomputes the full latent, so the\n\
         round-robin and random baselines pay full-recompute service times and\n\
         lose goodput@SLO. All strategies replay byte-identically on both the\n\
         calendar-queue and binary-heap schedulers (asserted every run).\n",
    );
    println!("{out}");
    if std::env::args().any(|a| a == "--per-shard") {
        for r in &reports {
            println!("-- {} --", r.strategy);
            for sr in &r.shard_reports {
                println!(
                    "shard {}: submitted {} served {} within {} shed {} dl-rej {} p95 {:.2}",
                    sr.shard,
                    sr.report.submitted,
                    sr.report.served,
                    sr.report.served_within_deadline,
                    sr.report.shed,
                    sr.report.deadline_rejected,
                    sr.report.p95_latency_secs
                );
            }
        }
    }

    let affinity = &reports[0];
    for baseline in &reports[1..] {
        assert!(
            affinity.hit_rate() > baseline.hit_rate(),
            "affinity hit rate {:.3} not above {} {:.3}",
            affinity.hit_rate(),
            baseline.strategy,
            baseline.hit_rate()
        );
        assert!(
            affinity.fleet.fleet.goodput_at_deadline_rps
                > baseline.fleet.fleet.goodput_at_deadline_rps,
            "affinity goodput@SLO {:.3} not above {} {:.3}",
            affinity.fleet.fleet.goodput_at_deadline_rps,
            baseline.strategy,
            baseline.fleet.fleet.goodput_at_deadline_rps
        );
    }

    if !smoke {
        let json = Json::object()
            .with("figure", "fig16_fleet")
            .with(
                "trace",
                Json::object()
                    .with("requests", trace.trace.len() as u64)
                    .with("duration_secs", duration_secs)
                    .with("zipf_s", 1.0)
                    .with("diurnal_amplitude", 0.4),
            )
            .with(
                "strategies",
                Json::Array(reports.iter().map(ToJson::to_json).collect()),
            );
        save_artifact("fig16_fleet.json", &(json.to_string_pretty() + "\n"));
        save_artifact("fig16_fleet.txt", &out);
    }
}
