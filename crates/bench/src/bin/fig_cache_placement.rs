//! Cache placement & feedback routing: what popularity-aware replica
//! placement and hit-rate feedback buy over the PR 7 defaults.
//!
//! Three experiments over the same four-shard fleet:
//!
//! - **Fingerprint** — the refactor's safety net: the exact PR 7
//!   configuration (ring-order placement, unbounded budget, blind
//!   affinity, a seeded crash storm) must reproduce a frozen behavior
//!   fingerprint byte-for-byte. The fingerprint was captured on the
//!   pre-refactor `ReplicatedStore`; if this assert fires, the
//!   `PlacementPolicy` split changed legacy behavior.
//! - **Placement sweep** — ring-order vs popularity placement at
//!   Zipf {0.6, 1.0, 1.4} under diurnal load, a seeded replica-wipe
//!   plan, and an *equal, binding* per-shard replica budget (half of
//!   full replication). Ring-order admits in template-id order, so the
//!   budget fills with whichever ids hash first — including each
//!   tenant's cold tail; popularity admits hottest-first, so the same
//!   bytes shield the templates that save the most recomputes.
//! - **Routing** — blind bounded-load affinity vs feedback affinity on
//!   identical placement under a seeded *slow-disk* plan (a storage
//!   gray failure: the shard stays alive and routable, but its disk
//!   promotes run several times slower). Health-based routing can't
//!   see it; the feedback router prices the slow promotes into its
//!   per-(shard, template) fetch-cost EWMA and steers non-resident
//!   templates to shards whose disks are still fast.
//!
//! Four claims are asserted every run (smoke included, so
//! `scripts/check.sh` gates them):
//!
//! 1. **Ring-order is the legacy store** — frozen-fingerprint equality
//!    on the seeded PR 7 replay.
//! 2. **Popularity beats ring-order** — strictly higher effective hit
//!    rate at Zipf(1.0) with equal total capacity.
//! 3. **Feedback beats blind affinity** — strictly lower cache-fetch
//!    p95 under the same slow-disk plan.
//! 4. **Replays are byte-identical** — every arm runs twice on the
//!    calendar queue and once on the binary heap, and every accepted
//!    request is accounted (conservation restated at the bench level).
//!
//! Flags: `--smoke` shrinks the sweep; the full run saves
//! `results/fig_cache_placement.txt` and `.json`.

use fps_bench::save_artifact;
use fps_chaos::FleetFaultProfile;
use fps_fleet::{FleetConfig, FleetReport, FleetSim, RouteStrategy};
use fps_json::{Json, ToJson};
use fps_maskcache::PlacementSpec;
use fps_metrics::Table;
use fps_simtime::SimTime;
use fps_workload::{DiurnalConfig, FleetTrace, FleetTraceConfig, TenantSpec};

const SHARDS: u32 = 4;
/// Pre-refactor behavior fingerprint: captured from the PR 7
/// `ReplicatedStore` (first-R-of-ring placement hardwired, no budget,
/// no feedback) on the seeded replay below, before `PlacementPolicy`
/// existed. Gate 1 replays the same config through the refactored
/// stack and must reproduce these bytes exactly.
const FROZEN_FINGERPRINT: &str = "{\"strategy\":\"affinity\",\"submitted\":995,\"served\":991,\"served_within_deadline\":991,\"shed\":0,\"deadline_rejected\":0,\"goodput_at_deadline_rps\":5.453188046726741,\"p95_latency_secs\":2.2595703124999997,\"cache_hits\":650,\"failover_hits\":343,\"cache_misses\":2,\"spills\":1,\"rerouted\":4,\"crash_failed\":0,\"parked_failed\":0,\"re_primed\":127,\"breaker_short_circuits\":0,\"shards\":[{\"shard\":0,\"submitted\":492,\"served\":492,\"shed\":0,\"deadline_rejected\":0,\"other_rejected\":0},{\"shard\":1,\"submitted\":185,\"served\":184,\"shed\":0,\"deadline_rejected\":0,\"other_rejected\":1},{\"shard\":2,\"submitted\":120,\"served\":117,\"shed\":0,\"deadline_rejected\":0,\"other_rejected\":3},{\"shard\":3,\"submitted\":198,\"served\":198,\"shed\":0,\"deadline_rejected\":0,\"other_rejected\":0}]}";

/// Projects a report onto the fields the frozen fingerprint pins —
/// behavior (routing, serving, cache traffic, fault handling), not the
/// new observability fields this PR added.
fn fingerprint(r: &FleetReport) -> String {
    let shards: Vec<Json> = r
        .shard_reports
        .iter()
        .map(|s| {
            Json::object()
                .with("shard", s.shard as u64)
                .with("submitted", s.report.submitted)
                .with("served", s.report.served)
                .with("shed", s.report.shed)
                .with("deadline_rejected", s.report.deadline_rejected)
                .with("other_rejected", s.report.other_rejected)
        })
        .collect();
    Json::object()
        .with("strategy", r.strategy)
        .with("submitted", r.fleet.fleet.submitted)
        .with("served", r.fleet.fleet.served)
        .with(
            "served_within_deadline",
            r.fleet.fleet.served_within_deadline,
        )
        .with("shed", r.fleet.fleet.shed)
        .with("deadline_rejected", r.fleet.fleet.deadline_rejected)
        .with(
            "goodput_at_deadline_rps",
            r.fleet.fleet.goodput_at_deadline_rps,
        )
        .with("p95_latency_secs", r.fleet.fleet.p95_latency_secs)
        .with("cache_hits", r.cache_hits)
        .with("failover_hits", r.failover_hits)
        .with("cache_misses", r.cache_misses)
        .with("spills", r.spills)
        .with("rerouted", r.rerouted)
        .with("crash_failed", r.crash_failed)
        .with("parked_failed", r.parked_failed)
        .with("re_primed", r.re_primed)
        .with("breaker_short_circuits", r.breaker_short_circuits)
        .with("shards", Json::Array(shards))
        .to_string_compact()
}

/// The exact PR 7 configuration the fingerprint was captured on.
fn legacy_config() -> (FleetConfig, FleetTrace) {
    let horizon = 180.0;
    let trace = FleetTrace::generate(&FleetTraceConfig {
        tenants: vec![
            TenantSpec::new("studio", 3.0, 48),
            TenantSpec::new("retail", 2.5, 32),
        ],
        duration_secs: horizon,
        diurnal: None,
        seed: 0xCACE,
    });
    let config = FleetConfig {
        shards: SHARDS,
        workers_per_shard: 2,
        max_batch: 4,
        cache_capacity: 12,
        deadline_secs: 4.5,
        allow_degradation: false,
        strategy: RouteStrategy::Affinity { load_factor: 1.25 },
        replicas: 2,
        reprime_on_churn: true,
        retry_budget: 2,
        recovery_window_secs: 10.0,
        faults: FleetFaultProfile::CrashStorm.plan(
            0xF1A9,
            SimTime::from_nanos((horizon * 1e9) as u64),
            SHARDS,
        ),
        ..Default::default()
    };
    (config, trace)
}

/// Diurnal two-tenant trace with per-sweep Zipf skew; tenants get
/// disjoint template ranges, so ring-order's id-order admission spends
/// budget on tenant 0's cold tail before tenant 1's hot head.
fn sweep_trace(zipf_s: f64, duration_secs: f64) -> FleetTrace {
    let tenant = |name: &str, rps: f64, n: usize| TenantSpec {
        zipf_s,
        ..TenantSpec::new(name, rps, n)
    };
    FleetTrace::generate(&FleetTraceConfig {
        tenants: vec![tenant("studio", 3.0, 48), tenant("retail", 2.5, 32)],
        duration_secs,
        diurnal: Some(DiurnalConfig {
            period_secs: duration_secs / 2.0,
            amplitude: 0.4,
            phase: 0.0,
        }),
        seed: 0x9ACE,
    })
}

fn sweep_config(
    placement: PlacementSpec,
    strategy: RouteStrategy,
    horizon_secs: f64,
) -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        workers_per_shard: 2,
        max_batch: 4,
        cache_capacity: 12,
        deadline_secs: 4.5,
        allow_degradation: false,
        strategy,
        replicas: 2,
        reprime_on_churn: true,
        retry_budget: 2,
        recovery_window_secs: 10.0,
        placement,
        // Equal, binding budget in every arm: half of full replication
        // (80 templates x R=2 over 4 shards = 40 copies/shard full).
        replica_budget_templates: Some(20),
        faults: FleetFaultProfile::ReplicaWipe.plan(
            0xB10C,
            SimTime::from_nanos((horizon_secs * 1e9) as u64),
            SHARDS,
        ),
        ..Default::default()
    }
}

/// Runs one arm three times — calendar, calendar again, heap — and
/// asserts byte-identity plus request conservation.
fn run_checked(label: &str, config: impl Fn() -> FleetConfig, trace: &FleetTrace) -> FleetReport {
    let report = FleetSim::run(config(), trace);
    let bytes = report.to_json().to_string_compact();
    let replay = FleetSim::run(config(), trace).to_json().to_string_compact();
    assert_eq!(bytes, replay, "{label}: replay diverged");
    let heap = FleetSim::run_on_heap(config(), trace)
        .to_json()
        .to_string_compact();
    assert_eq!(bytes, heap, "{label}: calendar and heap runs diverged");
    let f = &report.fleet.fleet;
    let accounted =
        f.served + f.shed + f.deadline_rejected + report.crash_failed + report.parked_failed;
    assert_eq!(
        accounted,
        trace.trace.len() as u64,
        "{label}: {} of {} requests unaccounted",
        trace.trace.len() as u64 - accounted,
        trace.trace.len()
    );
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration_secs = if smoke { 240.0 } else { 600.0 };

    // Gate 1: the refactored stack replays the PR 7 fingerprint.
    let (_, legacy_trace) = legacy_config();
    let legacy = run_checked("legacy", || legacy_config().0, &legacy_trace);
    assert_eq!(legacy.policy, "ring-order");
    assert_eq!(legacy.replans, 0, "ring-order must never replan");
    let fp = fingerprint(&legacy);
    assert_eq!(
        fp, FROZEN_FINGERPRINT,
        "ring-order diverged from the pre-refactor store on the seeded replay"
    );

    // Placement sweep: ring-order vs popularity at three skews.
    let skews = [0.6, 1.0, 1.4];
    let mut placement_rows: Vec<(f64, FleetReport, FleetReport)> = Vec::new();
    for &s in &skews {
        let trace = sweep_trace(s, duration_secs);
        let ring = run_checked(
            "ring-order",
            || {
                sweep_config(
                    PlacementSpec::RingOrder,
                    RouteStrategy::Affinity { load_factor: 1.25 },
                    duration_secs,
                )
            },
            &trace,
        );
        let pop = run_checked(
            "popularity",
            || {
                sweep_config(
                    PlacementSpec::Popularity,
                    RouteStrategy::Affinity { load_factor: 1.25 },
                    duration_secs,
                )
            },
            &trace,
        );
        assert_eq!(ring.policy, "ring-order");
        assert_eq!(pop.policy, "popularity");
        assert!(pop.replans > 0, "popularity never replanned at s={s}");
        placement_rows.push((s, ring, pop));
    }

    // Routing: blind affinity vs feedback affinity, identical placement
    // (ring-order, unbounded budget — placement held fixed so the only
    // variable is the router) under a seeded slow-disk plan. A wipe's
    // discovery cost is one-shot — write-through warms the serving
    // shard, so no router can dodge it twice — but a disk *gray
    // failure* recurs: the shard stays routable and health-silent
    // while every LRU promote on it pays the degradation factor.
    // Blind affinity keeps walking ring order and re-pays the slow
    // promotes for the whole window; feedback prices them into the
    // fetch-cost EWMA and steers non-resident templates to shards
    // whose disks are still fast.
    const ROUTING_ZIPF: f64 = 0.8;
    const ROUTING_CAPACITY: usize = 16;
    let routing_trace = sweep_trace(ROUTING_ZIPF, duration_secs);
    let routing_config = |strategy: RouteStrategy| {
        let mut c = sweep_config(PlacementSpec::RingOrder, strategy, duration_secs);
        c.replica_budget_templates = None;
        c.cache_capacity = ROUTING_CAPACITY;
        c.faults = FleetFaultProfile::SlowDisk.plan(
            0xD15C,
            SimTime::from_nanos((duration_secs * 1e9) as u64),
            SHARDS,
        );
        c
    };
    let blind = run_checked(
        "blind-affinity",
        || routing_config(RouteStrategy::Affinity { load_factor: 1.25 }),
        &routing_trace,
    );
    let feedback = run_checked(
        "feedback-affinity",
        || routing_config(RouteStrategy::FeedbackAffinity { load_factor: 1.25 }),
        &routing_trace,
    );
    let mut table = Table::new(&[
        "zipf",
        "placement",
        "eff-hit",
        "cache-p95(s)",
        "goodput@slo(rps)",
        "replans",
        "evictions",
        "re-primed",
    ]);
    for (s, ring, pop) in &placement_rows {
        for r in [ring, pop] {
            table.row(&[
                format!("{s:.1}"),
                r.policy.to_string(),
                format!("{:.3}", r.effective_hit_rate()),
                format!("{:.3}", r.cache_fetch_p95_secs),
                format!("{:.3}", r.fleet.fleet.goodput_at_deadline_rps),
                format!("{}", r.replans),
                format!("{}", r.replica_evictions),
                format!("{}", r.re_primed),
            ]);
        }
    }
    let mut routing_table = Table::new(&[
        "routing",
        "cache-p95(s)",
        "eff-hit",
        "hits",
        "failovers",
        "misses",
        "goodput@slo(rps)",
        "p95-latency(s)",
    ]);
    for r in [&blind, &feedback] {
        routing_table.row(&[
            r.strategy.to_string(),
            format!("{:.3}", r.cache_fetch_p95_secs),
            format!("{:.3}", r.effective_hit_rate()),
            format!("{}", r.cache_hits),
            format!("{}", r.failover_hits),
            format!("{}", r.cache_misses),
            format!("{:.3}", r.fleet.fleet.goodput_at_deadline_rps),
            format!("{:.3}", r.fleet.fleet.p95_latency_secs),
        ]);
    }

    let mut out = format!(
        "Cache placement & feedback routing over {SHARDS} shards\n\
         (R=2, diurnal load; placement sweep: per-shard budget 20 templates\n\
         = half of full replication under a seeded replica-wipe plan;\n\
         routing: unbounded budget under a seeded slow-disk plan)\n\n\
         Legacy fingerprint: ring-order reproduces the pre-refactor store\n\
         byte-for-byte on the seeded PR 7 replay (asserted).\n\n"
    );
    out.push_str(&table.render());
    out.push_str(
        "\nBoth policies hold the same bytes; only admission order differs.\n\
         Ring-order admits in template-id order, so the binding budget fills\n\
         with each tenant's cold tail as readily as its hot head; popularity\n\
         admits hottest-first, so wipes land on templates whose replicas\n\
         survive elsewhere. The gap widens with skew: at Zipf(1.4) a few\n\
         templates carry most requests and placing exactly those is most of\n\
         the win; at Zipf(0.6) popularity converges toward ring-order.\n\n",
    );
    out.push_str(&routing_table.render());
    out.push_str(
        "\nSame trace, same placement, a seeded slow-disk plan - only the\n\
         router differs. The degraded shards stay alive and routable, so\n\
         health-based routing sees nothing; every LRU promote on them pays\n\
         the degradation factor for the whole window. Blind affinity keeps\n\
         walking ring order and re-pays the slow promotes on every\n\
         turnover; feedback prices them into the per-(shard, template)\n\
         fetch-cost EWMA and steers non-resident templates to shards whose\n\
         disks are still fast, so its p95 stays at the healthy promote\n\
         cost. All arms replay byte-identically on both schedulers, and\n\
         every accepted request is accounted (asserted every run).\n",
    );
    println!("{out}");

    // Gate 2: popularity strictly beats ring-order at Zipf(1.0).
    let (_, ring_1, pop_1) = placement_rows
        .iter()
        .find(|(s, _, _)| *s == 1.0)
        .expect("Zipf(1.0) is in the sweep");
    assert!(
        pop_1.effective_hit_rate() > ring_1.effective_hit_rate(),
        "popularity effective hit rate {:.4} not above ring-order {:.4} at Zipf(1.0)",
        pop_1.effective_hit_rate(),
        ring_1.effective_hit_rate()
    );

    // Gate 3: feedback strictly beats blind affinity on cache-fetch p95.
    assert!(
        feedback.cache_fetch_p95_secs < blind.cache_fetch_p95_secs,
        "feedback cache-fetch p95 {:.4}s not below blind affinity {:.4}s",
        feedback.cache_fetch_p95_secs,
        blind.cache_fetch_p95_secs
    );

    if !smoke {
        let json = Json::object()
            .with("figure", "fig_cache_placement")
            .with("fingerprint", fp)
            .with(
                "trace",
                Json::object()
                    .with("duration_secs", duration_secs)
                    .with("tenants", 2u64)
                    .with("templates", 80u64)
                    .with("replica_budget_templates", 20u64),
            )
            .with(
                "placement_sweep",
                Json::Array(
                    placement_rows
                        .iter()
                        .flat_map(|(s, ring, pop)| {
                            [ring, pop].into_iter().map(move |r| {
                                Json::object()
                                    .with("zipf_s", *s)
                                    .with("report", r.to_json())
                            })
                        })
                        .collect(),
                ),
            )
            .with(
                "routing",
                Json::Array(
                    [&blind, &feedback]
                        .into_iter()
                        .map(|r| r.to_json())
                        .collect(),
                ),
            );
        save_artifact(
            "fig_cache_placement.json",
            &(json.to_string_pretty() + "\n"),
        );
        save_artifact("fig_cache_placement.txt", &out);
    }
}
