//! Fig. 9 from traces — GPU bubble fraction of the cache-loading
//! schedules, measured on span timelines instead of closed-form
//! latency.
//!
//! For each evaluation setup, replays one denoise request per loading
//! scheme — the Algorithm 1 DP plan, the strawman block-wise pipeline,
//! and the naive load-everything-first schedule — into a shared
//! virtual-clock trace (`fps_bench::tracereplay`), then measures each
//! scheme's bubble fraction with `fps_trace::bubble_in_window` over
//! its request window. Expected shape, asserted at the headline
//! VITON-HD mask ratio: the DP timeline is bubble-free (< 2% idle GPU)
//! while the naive timeline stalls the GPU for the whole load phase
//! (> 20% idle). The replay is pure virtual-time arithmetic, so reruns
//! are byte-identical — also asserted, on the exported Chrome JSON.
//!
//! Flags: `--smoke` restricts to the first setup and the headline
//! ratio (used by `scripts/check.sh`); `--trace-out <path>` writes the
//! first setup's combined Chrome trace for chrome://tracing/Perfetto.

use fps_baselines::eval_setup;
use fps_bench::save_artifact;
use fps_bench::tracereplay::{replay_request, ReplayTracks};
use fps_maskcache::pipeline::plan_uniform;
use fps_metrics::Table;
use fps_serving::cost::BatchItem;
use fps_trace::{bubble_in_window, chrome_trace_string, critical_path, Clock, Trace, TraceSink};

/// The paper's VITON-HD mean mask ratio — the headline operating point
/// the bubble assertions run at.
const HEADLINE_RATIO: f64 = 0.11;

struct SchemeBubble {
    label: &'static str,
    bubble: f64,
    latency_secs: f64,
}

/// Replays all three schemes for one (setup, mask ratio) point into a
/// fresh trace and returns (trace, per-scheme bubbles).
fn replay_point(cm: &fps_serving::CostModel, ratio: f64) -> (Trace, Vec<SchemeBubble>) {
    let costs = cm.mask_aware_block_costs(&[BatchItem { mask_ratio: ratio }], false);
    let n = cm.model.blocks;
    let steps = cm.model.steps;
    let per_block = vec![costs; n];
    let dp_plan = plan_uniform(n, costs);
    let all_cached = vec![true; n];

    let sink = TraceSink::recording(Clock::Virtual);
    let schemes: [(&'static str, &[bool], bool); 3] = [
        ("dp", &dp_plan.use_cache, false),
        ("strawman", &all_cached, false),
        ("naive", &all_cached, true),
    ];
    for (pid, (label, plan, front_load)) in schemes.iter().enumerate() {
        let tracks = ReplayTracks::labelled(&sink, pid as u32, label);
        replay_request(&sink, tracks, 0, steps, &per_block, plan, *front_load);
    }
    let t = sink.drain().expect("recording sink");
    assert_eq!(t.dropped, 0, "replay must fit the ring buffers");

    let bubbles = schemes
        .iter()
        .enumerate()
        .map(|(pid, (label, _, _))| {
            let root = t
                .spans
                .iter()
                .find(|s| s.name == "request" && s.track.process == pid as u32)
                .expect("each scheme emits a request root");
            let b = bubble_in_window(&t, root.start_ns, root.end_ns, |s| {
                s.cat == "gpu" && s.track.process == pid as u32
            });
            // Critical-path sanity on the replayed tree: the path
            // through the spans never exceeds the request window.
            let path: u64 = critical_path(&t, root.id).iter().map(|s| s.nanos()).sum();
            assert!(
                path <= root.duration_ns(),
                "{label}: critical path overflow"
            );
            SchemeBubble {
                label,
                bubble: b.fraction(),
                latency_secs: root.duration_ns() as f64 / 1e9,
            }
        })
        .collect();
    (t, bubbles)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| args.get(i + 1).expect("--trace-out needs a path").clone());

    // The bubble assertions run on the paper's headline platform,
    // SDXL on H800 (Fig. 4-left's +102% naive overhead is measured
    // there); smoke mode replays only that setup.
    let setups: Vec<_> = if smoke {
        eval_setup()
            .into_iter()
            .filter(|s| s.model.name == "sdxl")
            .collect()
    } else {
        eval_setup()
    };
    let ratios: &[f64] = if smoke {
        &[HEADLINE_RATIO]
    } else {
        &[0.05, HEADLINE_RATIO, 0.35, 0.8]
    };

    let mut out = String::from(
        "Fig. 9 from traces: GPU bubble fraction per loading scheme, measured on spans\n\n",
    );
    let mut first_trace: Option<Trace> = None;
    for setup in &setups {
        let cm = setup.cost_model();
        let mut table = Table::new(&["mask", "scheme", "latency(s)", "gpu-bubble"]);
        for &ratio in ratios {
            let (t, bubbles) = replay_point(&cm, ratio);
            // Determinism: the same point replays to byte-identical
            // Chrome JSON.
            let (t2, _) = replay_point(&cm, ratio);
            assert_eq!(
                chrome_trace_string(&t),
                chrome_trace_string(&t2),
                "replay must be byte-identical across reruns"
            );
            for s in &bubbles {
                table.row(&[
                    format!("{ratio:.2}"),
                    s.label.to_string(),
                    format!("{:.4}", s.latency_secs),
                    format!("{:.3}", s.bubble),
                ]);
                assert!(
                    (0.0..=1.0).contains(&s.bubble),
                    "{}: bubble {} out of range",
                    s.label,
                    s.bubble
                );
            }
            let dp = bubbles.iter().find(|s| s.label == "dp").unwrap();
            let naive = bubbles.iter().find(|s| s.label == "naive").unwrap();
            let strawman = bubbles.iter().find(|s| s.label == "strawman").unwrap();
            // The DP never loses to the strawman on the measured
            // timeline either.
            assert!(
                dp.latency_secs <= strawman.latency_secs + 1e-12,
                "dp slower than strawman at mask {ratio}"
            );
            let headline = (ratio - HEADLINE_RATIO).abs() < 1e-9 && cm.model.name == "sdxl";
            if headline {
                assert!(
                    dp.bubble < 0.02,
                    "DP must be bubble-free at the headline ratio: {}",
                    dp.bubble
                );
                assert!(
                    naive.bubble > 0.20,
                    "naive must stall the GPU at the headline ratio: {}",
                    naive.bubble
                );
            }
            if headline && first_trace.is_none() {
                first_trace = Some(t);
            }
        }
        out.push_str(&format!(
            "== {} on {} ({} blocks, {} steps) ==\n{}\n",
            cm.model.name,
            cm.gpu.name,
            cm.model.blocks,
            cm.model.steps,
            table.render()
        ));
    }
    out.push_str(
        "Bubble = idle GPU inside the request window / window, measured from spans.\n\
         The DP timeline stays bubble-free at production mask ratios; the naive\n\
         schedule idles the GPU for its whole serialized load phase.\n",
    );

    if let Some(path) = &trace_out {
        let t = first_trace.as_ref().expect("headline point was replayed");
        std::fs::write(path, chrome_trace_string(t)).expect("write --trace-out");
        eprintln!("wrote combined schedule trace to {path}");
    }

    println!("{out}");
    if !smoke {
        save_artifact("trace_bubbles.txt", &out);
    }
}
