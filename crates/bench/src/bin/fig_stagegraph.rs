//! Stage-graph disaggregation: staged pools vs a monolithic pool
//! under a CPU-heavy seeded burst (§4.3 generalized to micro-serving).
//!
//! One seeded bursty [`Trace`] is played through the same virtual-time
//! machinery twice. The **staged** arm runs the five-stage graph —
//! preprocess → text-encode → denoise → vae-decode → postprocess —
//! with its own pool and bounded queue per stage, continuous batching
//! at the denoise step boundaries, and per-stage control planes. The
//! **monolithic** arm folds every CPU phase inline onto the same
//! denoise workers, exactly like a single-pool server. CPU costs are
//! scaled up (heavy pre/post work) so the arms differ only in *where*
//! that work runs.
//!
//! Claims asserted every run (smoke included, so `scripts/check.sh`
//! gates them):
//!
//! 1. **Disaggregation wins goodput@SLO** — the staged arm strictly
//!    beats the monolithic arm at equal denoise resources: inline CPU
//!    time stalls the GPU between batches, converting to deadline
//!    misses under the burst.
//! 2. **The GPU bubble shrinks** — the staged denoise pool's idle
//!    fraction is strictly below the monolithic arm's, and the
//!    span-derived bubble (fps-trace `bubble_in_window` over
//!    `stage_exec` spans) agrees with the analytic accounting.
//! 3. **Tracing is passive** — the traced staged run serializes to the
//!    same bytes as the untraced one.
//! 4. **Replays are byte-identical** — calendar queue twice plus
//!    binary heap once, same bytes.
//! 5. **Outputs are byte-identical** — on the real (tiny) pipeline,
//!    the staged server, the monolithic server, and the synchronous
//!    API produce the same image for the same seed.
//!
//! Flags: `--smoke` shrinks the trace and writes no artifacts; the
//! full run saves `results/fig_stagegraph.txt` and
//! `results/fig_stagegraph.json`.
//!
//! [`Trace`]: fps_workload::Trace

use flashps::{EditJob, FlashPs, FlashPsConfig, ServerConfig, StagedServerConfig, ThreadedServer};
use fps_bench::save_artifact;
use fps_diffusion::{Image, ModelConfig};
use fps_json::{Json, ToJson};
use fps_metrics::Table;
use fps_simtime::SimDuration;
use fps_stagegraph::{StageGraph, StageGraphConfig, StageGraphSim, StagedRunReport};
use fps_trace::{bubble_in_window, Clock, TraceSink, Track};
use fps_workload::{RatioDistribution, Trace, TraceConfig};

/// Heavy CPU pre/post work: the regime §4.3 disaggregation targets.
const CPU_HEAVY_SECS: f64 = 2.0;
const DEADLINE_SECS: f64 = 60.0;

fn cpu_heavy(mut cfg: StageGraphConfig) -> StageGraphConfig {
    cfg.cpu.preprocess = SimDuration::from_secs_f64(CPU_HEAVY_SECS);
    cfg.cpu.postprocess = SimDuration::from_secs_f64(CPU_HEAVY_SECS);
    cfg.deadline_secs = DEADLINE_SECS;
    cfg
}

/// The staged arm: dedicated CPU pools, one denoise GPU with four
/// batch lanes, single-worker encode/decode stages.
fn staged_config() -> StageGraphConfig {
    cpu_heavy(StageGraphConfig::staged(StageGraph::full(4, 1, 4, 8)))
}

/// The monolithic arm: the *same* denoise resources (one worker, four
/// lanes), with CPU work inline on the worker.
fn monolithic_config() -> StageGraphConfig {
    cpu_heavy(StageGraphConfig::monolithic(1, 4, 8))
}

/// Runs one arm three times — calendar, calendar again, heap — and
/// asserts all three reports serialize identically.
fn run_arm(config: impl Fn() -> StageGraphConfig, trace: &Trace) -> StagedRunReport {
    let report = StageGraphSim::run(config(), trace);
    let bytes = report.to_json().to_string_compact();
    let replay = StageGraphSim::run(config(), trace)
        .to_json()
        .to_string_compact();
    assert_eq!(bytes, replay, "{}: replay diverged", report.label);
    let heap = StageGraphSim::run_on_heap(config(), trace)
        .to_json()
        .to_string_compact();
    assert_eq!(
        bytes, heap,
        "{}: calendar and heap runs diverged",
        report.label
    );
    report
}

/// Real-pipeline byte identity: the staged server, the monolithic
/// server, and the synchronous API must produce the same image for the
/// same seed and rung (claim 5).
fn assert_image_identity() {
    let system = || {
        let cfg = ModelConfig::tiny();
        let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
        sys.register_template(0, &img).unwrap();
        sys
    };
    let job = || EditJob {
        template_id: 0,
        masked_idx: vec![1, 2, 5, 6],
        prompt: "edit".into(),
        seed: 42,
        guidance: None,
    };
    let direct = system().edit_tokens(0, &[1, 2, 5, 6], "edit", 42).unwrap();
    let mono = ThreadedServer::start(system(), ServerConfig::default());
    let staged = ThreadedServer::start_staged(
        system(),
        ServerConfig::default(),
        StagedServerConfig::default(),
    );
    let m = mono.submit(job()).unwrap().wait().unwrap();
    let s = staged.submit(job()).unwrap().wait().unwrap();
    assert_eq!(
        m.output.image, direct.output.image,
        "monolithic server diverged from the synchronous API"
    );
    assert_eq!(
        s.output.image, direct.output.image,
        "staged server diverged from the synchronous API"
    );
    mono.shutdown();
    staged.shutdown();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration_secs = if smoke { 150.0 } else { 600.0 };
    let trace = Trace::generate(&TraceConfig {
        rps: 1.2,
        arrivals: fps_workload::trace::ArrivalProcess::bursty_default(),
        duration_secs,
        ratio_dist: RatioDistribution::Uniform { lo: 0.05, hi: 0.3 },
        num_templates: 16,
        zipf_s: 0.9,
        seed: 0x57A6E,
    });

    let staged = run_arm(staged_config, &trace);
    let mono = run_arm(monolithic_config, &trace);

    // Span-derived bubble attribution (claim 2's second half): replay
    // the staged arm with a virtual-clock sink and measure each
    // stage's idle fraction from its `stage_exec` spans. Tracing must
    // not change a byte of the outcome (claim 3).
    let sink = TraceSink::recording(Clock::Virtual);
    let mut traced_cfg = staged_config();
    traced_cfg.trace = sink.clone();
    let traced = StageGraphSim::run(traced_cfg, &trace);
    assert_eq!(
        traced.to_json().to_string_compact(),
        staged.to_json().to_string_compact(),
        "tracing changed the staged outcome"
    );
    let spans = sink.drain().expect("recording sink drains");
    let window_hi = (traced.makespan_secs * 1e9) as u64;
    let span_bubble: Vec<(String, f64)> = staged
        .stage_reports
        .iter()
        .enumerate()
        .map(|(ix, s)| {
            let b = bubble_in_window(&spans, 0, window_hi, |sp| {
                sp.name == "stage_exec" && sp.track == Track::new(4, ix as u32)
            });
            (s.stage.to_string(), b.fraction())
        })
        .collect();
    // The denoise pool has one worker, so the span cover and the
    // analytic busy-seconds must agree closely.
    let denoise_ix = 2;
    let analytic = staged.stage_reports[denoise_ix].utilization;
    let span_util = 1.0 - span_bubble[denoise_ix].1;
    assert!(
        (analytic - span_util).abs() < 0.05,
        "span-derived denoise utilization {span_util:.3} disagrees with analytic {analytic:.3}"
    );

    assert_image_identity();

    let mut table = Table::new(&[
        "arm",
        "goodput@slo(rps)",
        "p95(s)",
        "served",
        "shed",
        "dl-rej",
        "gpu-bubble",
    ]);
    for r in [&staged, &mono] {
        table.row(&[
            r.label.clone(),
            format!("{:.3}", r.slo.goodput_at_deadline_rps),
            format!("{:.2}", r.slo.p95_latency_secs),
            format!("{}", r.slo.served),
            format!("{}", r.slo.shed),
            format!("{}", r.slo.deadline_rejected),
            format!("{:.3}", r.gpu_bubble_fraction),
        ]);
    }
    let mut edge_table = Table::new(&[
        "edge",
        "handoffs",
        "max-depth",
        "bubble(analytic)",
        "bubble(spans)",
    ]);
    for (i, e) in staged.edges.iter().enumerate() {
        table_row_edge(&mut edge_table, e, span_bubble.get(i + 1));
    }
    let mut out = format!(
        "Stage-graph disaggregation under a CPU-heavy burst\n\
         ({} requests, bursty arrivals, {CPU_HEAVY_SECS}s preprocess + {CPU_HEAVY_SECS}s postprocess,\n\
         deadline {DEADLINE_SECS}s, equal denoise resources: 1 GPU x 4 lanes)\n\n",
        trace.len(),
    );
    out.push_str(&table.render());
    out.push_str("\nPer-edge starvation (staged arm):\n");
    out.push_str(&edge_table.render());
    out.push_str(
        "\nSame seeded trace, same denoise pool - the monolithic arm pays session\n\
         setup and decode inline on the GPU worker, so every completion stalls\n\
         the batch; the staged arm overlaps CPU work with denoising across\n\
         bounded queues. Both arms replay byte-identically on the calendar and\n\
         heap schedulers; the staged server's images match the monolithic\n\
         server's and the synchronous API's, byte for byte (asserted, smoke\n\
         included). Span-derived bubbles (stage_exec cover) agree with the\n\
         analytic accounting.\n",
    );
    println!("{out}");

    assert!(
        staged.slo.goodput_at_deadline_rps > mono.slo.goodput_at_deadline_rps,
        "staged goodput@SLO {:.3} not above monolithic {:.3}",
        staged.slo.goodput_at_deadline_rps,
        mono.slo.goodput_at_deadline_rps
    );
    assert!(
        staged.gpu_bubble_fraction < mono.gpu_bubble_fraction,
        "staged GPU bubble {:.3} not below monolithic {:.3}",
        staged.gpu_bubble_fraction,
        mono.gpu_bubble_fraction
    );

    if !smoke {
        let json = Json::object()
            .with("figure", "fig_stagegraph")
            .with(
                "trace",
                Json::object()
                    .with("requests", trace.len() as u64)
                    .with("duration_secs", duration_secs)
                    .with("cpu_heavy_secs", CPU_HEAVY_SECS)
                    .with("deadline_secs", DEADLINE_SECS),
            )
            .with("staged", staged.to_json())
            .with("monolithic", mono.to_json())
            .with(
                "span_bubble",
                Json::Array(
                    span_bubble
                        .iter()
                        .map(|(stage, f)| {
                            Json::object()
                                .with("stage", stage.as_str())
                                .with("bubble_fraction", *f)
                        })
                        .collect(),
                ),
            );
        save_artifact("fig_stagegraph.json", &(json.to_string_pretty() + "\n"));
        save_artifact("fig_stagegraph.txt", &out);
    }
}

fn table_row_edge(table: &mut Table, e: &fps_stagegraph::EdgeReport, span: Option<&(String, f64)>) {
    table.row(&[
        e.label.clone(),
        format!("{}", e.handoffs),
        format!("{}", e.max_depth),
        format!("{:.3}", e.bubble_fraction),
        span.map(|(_, f)| format!("{f:.3}"))
            .unwrap_or_else(|| "-".into()),
    ]);
}
