//! §7 ablation — continuous batching is independent of mask usage.
//!
//! The paper's discussion notes that FlashPS's continuous batching
//! "can be seamlessly integrated into existing diffusion model serving
//! systems, enhancing serving performance" even without mask-aware
//! computation. This binary retrofits disaggregated continuous
//! batching onto the Diffusers and TeaCache baselines and measures the
//! queueing/latency improvement.

use fps_baselines::{eval_setup, SystemKind};
use fps_bench::save_artifact;
use fps_metrics::Table;
use fps_serving::{BatchingPolicy, ClusterSim, LeastLoadedRouter};
use fps_workload::trace::ArrivalProcess;
use fps_workload::{RatioDistribution, Trace, TraceConfig};

fn main() {
    // SDXL on H800. Each baseline is driven near its own saturation
    // point (their capacities differ ~2×), where batching policy
    // matters most.
    let setup = &eval_setup()[1];
    let trace_at = |rps: f64| {
        Trace::generate(&TraceConfig {
            rps,
            arrivals: ArrivalProcess::Poisson,
            duration_secs: 600.0,
            ratio_dist: RatioDistribution::ProductionTrace,
            num_templates: 8,
            zipf_s: 1.0,
            seed: 0xCB,
        })
    };
    let mut out = String::from(
        "§7 ablation: retrofitting continuous batching onto baselines (SDXL/H800, 2 workers)\n\n",
    );
    let mut table = Table::new(&[
        "system",
        "batching",
        "mean(s)",
        "p95(s)",
        "queue(s)",
        "improvement",
    ]);
    for (system, rps) in [(SystemKind::Diffusers, 0.45), (SystemKind::TeaCache, 1.5)] {
        let trace = trace_at(rps);
        let mut means = Vec::new();
        for batching in [
            BatchingPolicy::Static,
            BatchingPolicy::ContinuousDisaggregated,
        ] {
            let mut cfg = setup.cluster_config(system, 2).expect("supported");
            cfg.batching = batching;
            let mut router = LeastLoadedRouter;
            let report = ClusterSim::run(cfg, &trace, &mut router).expect("run");
            means.push(report.mean_latency());
            table.row(&[
                system.label().to_string(),
                batching.label().to_string(),
                format!("{:.2}", report.mean_latency()),
                format!("{:.2}", report.p95_latency()),
                format!("{:.2}", report.mean_queueing()),
                if batching == BatchingPolicy::ContinuousDisaggregated {
                    format!("{:.1}x lower mean", means[0] / report.mean_latency())
                } else {
                    String::new()
                },
            ]);
        }
        assert!(
            means[1] <= means[0],
            "{}: CB must not hurt ({} vs {})",
            system.label(),
            means[1],
            means[0]
        );
    }
    out.push_str(&table.render());
    out.push_str(
        "\nContinuous batching helps the mask-agnostic baselines too, as §7 claims —\n\
         but without mask-aware computation a single request still saturates the GPU,\n\
         so the gain is far smaller than FlashPS's combined design.\n",
    );
    println!("{out}");
    save_artifact("ablation_cb_baselines.txt", &out);
}
