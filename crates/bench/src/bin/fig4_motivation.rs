//! Fig. 4 — the three motivating experiments.
//!
//! - **loading**: inference latency of a request under naive loading /
//!   FlashPS's bubble-free pipeline / ideal (paper: naive adds +102%
//!   on SDXL/H800; FlashPS ≈ ideal).
//! - **queuing**: mean queueing time under static vs FlashPS continuous
//!   batching across request rates (paper: ~2× longer under static).
//! - **balance**: P95 latency under naive (request-count) vs
//!   mask-aware load balancing (paper: naive +32%).
//!
//! Run with no argument to produce all three panels.

use flashps::experiment::{run_serving, RouterKind, ServingRun};
use fps_baselines::{eval_setup, SystemKind};
use fps_bench::save_artifact;
use fps_maskcache::pipeline::plan_uniform;
use fps_metrics::Table;
use fps_serving::cost::BatchItem;
use fps_serving::BatchingPolicy;
use fps_workload::RatioDistribution;

fn panel_loading() -> String {
    let mut out = String::from("Fig. 4-left: request inference latency by loading method\n");
    let setup = &eval_setup()[1]; // SDXL on H800, as in the paper.
    let cm = setup.cost_model();
    let mut table = Table::new(&[
        "mask",
        "ideal(s)",
        "flashps(s)",
        "naive(s)",
        "naive-overhead",
    ]);
    for m in [0.05, 0.11, 0.2, 0.35] {
        let batch = [BatchItem { mask_ratio: m }];
        let costs = cm.mask_aware_block_costs(&batch, false);
        let ideal = costs.compute_cached.as_secs_f64() * cm.model.blocks as f64;
        let plan = plan_uniform(cm.model.blocks, costs);
        let flashps = plan.latency.as_secs_f64();
        let naive = cm.step_latency_naive_loading(&batch).as_secs_f64();
        let steps = cm.model.steps as f64;
        table.row(&[
            format!("{m:.2}"),
            format!("{:.3}", ideal * steps),
            format!("{:.3}", flashps * steps),
            format!("{:.3}", naive * steps),
            format!("+{:.0}%", (naive / ideal - 1.0) * 100.0),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("Paper: naive +102% on SDXL/H800; FlashPS within a few % of ideal.\n\n");
    out
}

fn panel_queuing() -> String {
    let mut out =
        String::from("Fig. 4-middle: queueing time, static vs continuous batching (Flux/H800)\n");
    let setup = &eval_setup()[2]; // Flux on H800, as in the paper.
    let mut table = Table::new(&["rps", "static-queue(s)", "cb-queue(s)", "static/cb"]);
    for rps in [0.1, 0.2, 0.3, 0.4] {
        let mut static_cfg = setup
            .cluster_config(SystemKind::FlashPs, 2)
            .expect("supported");
        static_cfg.batching = BatchingPolicy::Static;
        let cb_cfg = setup
            .cluster_config(SystemKind::FlashPs, 2)
            .expect("supported");
        let trace = fps_workload::Trace::generate(&fps_workload::TraceConfig {
            rps,
            arrivals: fps_workload::trace::ArrivalProcess::Poisson,
            duration_secs: 400.0,
            ratio_dist: RatioDistribution::ProductionTrace,
            num_templates: 8,
            zipf_s: 1.0,
            seed: 0x44,
        });
        let mut r1 = RouterKind::RequestCount
            .build(&static_cfg.cost)
            .expect("router");
        let st = fps_serving::ClusterSim::run(static_cfg, &trace, r1.as_mut()).expect("run");
        let mut r2 = RouterKind::RequestCount
            .build(&cb_cfg.cost)
            .expect("router");
        let cb = fps_serving::ClusterSim::run(cb_cfg, &trace, r2.as_mut()).expect("run");
        table.row(&[
            format!("{rps:.2}"),
            format!("{:.2}", st.mean_queueing()),
            format!("{:.2}", cb.mean_queueing()),
            format!("{:.2}x", st.mean_queueing() / cb.mean_queueing().max(1e-9)),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("Paper: static batching ≈ 2x the queueing of continuous batching.\n\n");
    out
}

fn panel_balance() -> String {
    let mut out =
        String::from("Fig. 4-right: P95 latency, naive vs mask-aware load balance (Flux/H800)\n");
    let setup = &eval_setup()[2];
    let mut table = Table::new(&["rps", "naive-P95(s)", "mask-aware-P95(s)", "overhead"]);
    for rps in [0.8, 1.08] {
        let mut row = vec![format!("{rps:.1}")];
        let mut values = Vec::new();
        // "Naive" in Fig. 4-right means uniform assignment — round
        // robin — which ignores both queue depth and mask sizes.
        for router in [RouterKind::RoundRobin, RouterKind::MaskAware] {
            let run = ServingRun {
                system: SystemKind::FlashPs,
                router,
                workers: 4,
                rps,
                arrivals: fps_workload::trace::ArrivalProcess::Poisson,
                duration_secs: 400.0,
                ratio_dist: RatioDistribution::ProductionTrace,
                seed: 0x88,
                ..ServingRun::default()
            };
            let p = run_serving(setup, &run).expect("run").expect("supported");
            values.push(p.p95_latency);
            row.push(format!("{:.2}", p.p95_latency));
        }
        row.push(format!("+{:.0}%", (values[0] / values[1] - 1.0) * 100.0));
        table.row(&row);
    }
    out.push_str(&table.render());
    out.push_str("Paper: naive balancing +32% P95 at high load.\n");
    out
}

fn main() {
    let arg = std::env::args().nth(1);
    let mut out = String::from("Fig. 4 reproduction: motivation experiments\n\n");
    match arg.as_deref() {
        Some("loading") => out.push_str(&panel_loading()),
        Some("queuing") => out.push_str(&panel_queuing()),
        Some("balance") => out.push_str(&panel_balance()),
        _ => {
            out.push_str(&panel_loading());
            out.push_str(&panel_queuing());
            out.push_str(&panel_balance());
        }
    }
    println!("{out}");
    save_artifact("fig4_motivation.txt", &out);
}
