//! Table 2 — quantitative image quality per benchmark and system.
//!
//! Runs the three synthetic benchmark analogues (InstructPix2Pix-like
//! on SD2.1-like, VITON-HD-like on SDXL-like, PIE-Bench-like on
//! Flux-like) through every system, using Diffusers (full recompute)
//! as the reference, and reports CLIP-proxy / pseudo-FID / SSIM.
//!
//! Reproduces: FlashPS closest to the reference on FID and SSIM,
//! ahead of FISEdit and TeaCache; CLIP-proxy comparable to the
//! reference.

use fps_baselines::SystemKind;
use fps_bench::{save_artifact, system_for};
use fps_diffusion::{Image, ModelConfig};
use fps_metrics::Table;
use fps_quality::clip_proxy::clip_proxy_score;
use fps_quality::{frechet_distance, ssim, FeatureExtractor};
use fps_workload::QualityBenchmark;

struct BenchmarkSpec {
    model: ModelConfig,
    benchmark: QualityBenchmark,
}

fn benchmarks(cases: usize) -> Vec<BenchmarkSpec> {
    let sd21 = ModelConfig::sd21_like();
    let sdxl = ModelConfig::sdxl_like();
    let flux = ModelConfig::flux_like();
    vec![
        BenchmarkSpec {
            benchmark: QualityBenchmark::instruct_pix2pix_like(
                cases,
                sd21.pixel_h(),
                sd21.pixel_w(),
                21,
            ),
            model: sd21,
        },
        BenchmarkSpec {
            benchmark: QualityBenchmark::viton_hd_like(cases, sdxl.pixel_h(), sdxl.pixel_w(), 22),
            model: sdxl,
        },
        BenchmarkSpec {
            benchmark: QualityBenchmark::pie_bench_like(cases, flux.pixel_h(), flux.pixel_w(), 23),
            model: flux,
        },
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cases = if quick { 8 } else { 24 };
    let mut out = String::from("Table 2 reproduction: quantitative image quality\n\n");
    let mut table = Table::new(&[
        "model/benchmark",
        "system",
        "CLIP-proxy",
        "pseudo-FID",
        "SSIM",
    ]);
    for spec in benchmarks(cases) {
        let cfg = &spec.model;
        // Register each distinct template once.
        let mut system = system_for(cfg.clone(), 0);
        let mut seen = std::collections::HashSet::new();
        for case in &spec.benchmark.cases {
            if seen.insert(case.template_id) {
                let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), case.template_seed);
                system
                    .register_template(case.template_id, &img)
                    .expect("register");
            }
        }
        let fx = FeatureExtractor::new(cfg, 16).expect("extractor");

        // The Diffusers reference outputs ("ground truth" per §6.2).
        let reference: Vec<Image> = spec
            .benchmark
            .cases
            .iter()
            .map(|c| {
                system
                    .edit_with_strategy(
                        c.template_id,
                        &c.mask,
                        &c.prompt,
                        c.seed,
                        &SystemKind::Diffusers.numeric_strategy(cfg, None),
                    )
                    .expect("reference edit")
                    .image
            })
            .collect();
        let ref_feats = fx.extract_batch(&reference).expect("features");
        let ref_clip: f64 = spec
            .benchmark
            .cases
            .iter()
            .zip(reference.iter())
            .map(|(c, img)| clip_proxy_score(cfg, &c.prompt, img).expect("clip"))
            .sum::<f64>()
            / cases as f64;
        table.row(&[
            format!("{}/{}", cfg.name, spec.benchmark.name),
            "diffusers (ref)".into(),
            format!("{ref_clip:.1}"),
            "-".into(),
            "-".into(),
        ]);

        let mut fid_by_system = Vec::new();
        for sys_kind in [
            SystemKind::FisEdit,
            SystemKind::TeaCache,
            SystemKind::Naive,
            SystemKind::FlashPs,
        ] {
            // FISEdit only exists for SD2.1-class models (§6.1).
            if sys_kind == SystemKind::FisEdit && !sys_kind.supports(cfg) {
                continue;
            }
            // FlashPS uses the DP plan at each request's own ratio.
            let outputs: Vec<Image> = spec
                .benchmark
                .cases
                .iter()
                .map(|c| {
                    let strategy = if sys_kind == SystemKind::FlashPs {
                        let ratio = c.mask.ratio();
                        SystemKind::FlashPs
                            .numeric_strategy(cfg, Some(system.plan_for_ratio(ratio)))
                    } else {
                        sys_kind.numeric_strategy(cfg, None)
                    };
                    system
                        .edit_with_strategy(c.template_id, &c.mask, &c.prompt, c.seed, &strategy)
                        .expect("edit")
                        .image
                })
                .collect();
            let feats = fx.extract_batch(&outputs).expect("features");
            let fid = frechet_distance(&ref_feats, &feats).expect("fid");
            let mean_ssim: f64 = outputs
                .iter()
                .zip(reference.iter())
                .map(|(a, b)| ssim(a, b).expect("ssim"))
                .sum::<f64>()
                / cases as f64;
            let clip: f64 = spec
                .benchmark
                .cases
                .iter()
                .zip(outputs.iter())
                .map(|(c, img)| clip_proxy_score(cfg, &c.prompt, img).expect("clip"))
                .sum::<f64>()
                / cases as f64;
            fid_by_system.push((sys_kind.label(), fid, mean_ssim));
            table.row(&[
                format!("{}/{}", cfg.name, spec.benchmark.name),
                sys_kind.label().into(),
                format!("{clip:.1}"),
                format!("{fid:.3}"),
                format!("{mean_ssim:.3}"),
            ]);
        }
        // Shape check: FlashPS must beat the lossy baselines on SSIM.
        let flash = fid_by_system
            .iter()
            .find(|(l, _, _)| *l == "flashps")
            .expect("flashps ran");
        for (label, _, s) in &fid_by_system {
            if *label != "flashps" {
                assert!(
                    flash.2 >= *s - 1e-6,
                    "flashps SSIM {} must not lose to {label} ({s})",
                    flash.2
                );
            }
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nDiffusers outputs are the reference set (as in the paper). FlashPS tracks\n\
         the reference most closely (highest SSIM, lowest pseudo-FID); FISEdit and\n\
         TeaCache diverge further; naive disregard is worst.\n",
    );
    println!("{out}");
    save_artifact("table2_quality.txt", &out);
}
