//! §4.2 ablation — hierarchical activation storage.
//!
//! Exercises the host/disk tiers: LRU eviction under host-memory
//! pressure, disk→host prefetch that overlaps queueing (the paper's
//! 6.4 s disk load hidden behind multi-second queueing), and the
//! capacity arithmetic of §4.2 (a 2 TiB host stores hundreds of
//! template caches).

use fps_baselines::eval_setup;
use fps_bench::save_artifact;
use fps_maskcache::store::{HierarchicalStore, StoreConfig};
use fps_metrics::Table;
use fps_simtime::SimTime;

fn secs(s: f64) -> SimTime {
    SimTime::from_nanos((s * 1e9) as u64)
}

fn main() {
    let mut out = String::from("§4.2 ablation: hierarchical activation storage\n\n");

    // Capacity arithmetic.
    let mut table = Table::new(&["model", "cache/template(GiB)", "templates-in-2TiB"]);
    for setup in eval_setup() {
        let bytes = setup.model.cache_bytes_total(0.0);
        let gib = bytes as f64 / (1u64 << 30) as f64;
        table.row(&[
            setup.model.name.clone(),
            format!("{gib:.1}"),
            format!("{}", (2u64 << 40) / bytes.max(1)),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("Paper: a 2 TiB host stores up to 787 copies of the Fig. 1 template's cache.\n\n");

    // Eviction and prefetch behaviour under pressure: host fits 3 of
    // 8 templates.
    let per_template: u64 = 10 << 30;
    let mut store = HierarchicalStore::new(StoreConfig {
        host_capacity: 3 * per_template,
        disk_capacity: u64::MAX,
        disk_read_bw: 2.0 * (1u64 << 30) as f64,
    });
    for id in 0..8u64 {
        store
            .insert(id, per_template, SimTime::ZERO, None)
            .expect("insert");
    }
    let evicted = store.stats().evictions;
    out.push_str(&format!(
        "inserted 8 × 10 GiB templates into a 30 GiB host tier: {evicted} LRU evictions, \
         host holds {:.0} GiB.\n",
        store.host_used() as f64 / (1u64 << 30) as f64
    ));

    // A request for a disk-resident template prefetches while queueing.
    let arrival = secs(100.0);
    let ready = store.fetch(0, arrival).expect("fetch");
    let transfer = ready.since(arrival).as_secs_f64();
    out.push_str(&format!(
        "template 0 was disk-resident; prefetch started at arrival and took {transfer:.1} s \
         (paper: 6.4 s for the Fig. 1 template),\n\
         which hides behind the multi-second queueing the paper reports under load.\n",
    ));
    assert!(transfer > 1.0 && transfer < 30.0);
    // After promotion it is a host hit.
    let again = store.fetch(0, secs(200.0)).expect("fetch");
    assert_eq!(again, secs(200.0));
    out.push_str(&format!(
        "second access is a host hit (stats: {:?}).\n",
        store.stats()
    ));
    println!("{out}");
    save_artifact("ablation_storage.txt", &out);
}
