//! Shared helpers for the FlashPS benchmark harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index and EXPERIMENTS.md for the
//! measured results). This library hosts the setup code they share.

pub mod tracereplay;

use std::path::PathBuf;

use flashps::{FlashPs, FlashPsConfig};
use fps_diffusion::{Image, ModelConfig};
use fps_workload::{Mask, MaskShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The directory experiment binaries write artifacts into.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("FLASHPS_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let path = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&path);
    path
}

/// Writes a text artifact into the results directory and echoes its
/// path.
pub fn save_artifact(name: &str, contents: &str) {
    let path = results_dir().join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[failed to save {}: {e}]", path.display()),
    }
}

/// Writes a binary artifact (e.g. a PPM image) into the results
/// directory.
pub fn save_binary_artifact(name: &str, contents: &[u8]) {
    let path = results_dir().join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[failed to save {}: {e}]", path.display()),
    }
}

/// A FlashPS system over the tiny test model with `templates`
/// registered templates — the standard numeric fixture.
pub fn tiny_system(templates: u64) -> FlashPs {
    system_for(ModelConfig::tiny(), templates)
}

/// A FlashPS system over any runnable model config.
pub fn system_for(cfg: ModelConfig, templates: u64) -> FlashPs {
    let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).expect("valid config");
    for id in 0..templates {
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), id.wrapping_mul(97) + 5);
        sys.register_template(id, &img).expect("priming succeeds");
    }
    sys
}

/// A deterministic pixel mask at a target ratio for a model's canvas.
pub fn mask_for(cfg: &ModelConfig, ratio: f64, shape: MaskShape, seed: u64) -> Mask {
    let mut rng = StdRng::seed_from_u64(seed);
    Mask::generate(cfg.pixel_h(), cfg.pixel_w(), shape, ratio, &mut rng)
}

/// The runnable toy configs of the paper's three models.
pub fn toy_models() -> [ModelConfig; 3] {
    [
        ModelConfig::sd21_like(),
        ModelConfig::sdxl_like(),
        ModelConfig::flux_like(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let sys = tiny_system(2);
        assert_eq!(sys.template_count(), 2);
        let cfg = ModelConfig::tiny();
        let m = mask_for(&cfg, 0.25, MaskShape::Rect, 1);
        assert!(m.ratio() > 0.05);
        assert_eq!(toy_models().len(), 3);
    }
}
