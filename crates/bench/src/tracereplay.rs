//! Replays Fig. 9 cache-loading schedules into trace spans.
//!
//! The pipeline planner (`fps-maskcache::pipeline`) reasons about
//! schedules in closed form: a latency per step, no timeline. This
//! module re-enacts a schedule block by block on a virtual-clock
//! [`TraceSink`] — loads as `"copy"`-category spans on a copy lane,
//! block compute as `"gpu"`-category spans on a compute lane — so the
//! bubble metric of `fps-trace` can be *measured from the trace*
//! instead of derived analytically. The `trace_bubbles` bin uses it to
//! reproduce Fig. 9's qualitative result (the DP schedule is
//! bubble-free; the naive schedule stalls the GPU for the whole load
//! phase) from span data alone.

use fps_json::Json;
use fps_maskcache::BlockCosts;
use fps_trace::{TraceSink, Track};

/// The two stream lanes a replayed schedule draws onto. Each scheme
/// gets its own `process` id so several schemes can share one trace
/// side by side.
#[derive(Debug, Clone, Copy)]
pub struct ReplayTracks {
    /// Compute-stream lane; `"gpu"` spans land here.
    pub compute: Track,
    /// Copy-stream lane; `"copy"` spans land here.
    pub copy: Track,
}

impl ReplayTracks {
    /// Lane pair for scheme number `process`, labelled in the trace as
    /// `"<label> compute"` / `"<label> copy"`.
    pub fn labelled(sink: &TraceSink, process: u32, label: &str) -> Self {
        let tracks = Self {
            compute: Track::new(process, 0),
            copy: Track::new(process, 1),
        };
        sink.name_track(tracks.compute, format!("{label} compute"));
        sink.name_track(tracks.copy, format!("{label} copy"));
        tracks
    }
}

/// Replays one denoise request — `steps` identical steps over
/// `costs.len()` transformer blocks — starting at `t0_ns`, and returns
/// the finish time in nanoseconds.
///
/// Within a step the semantics mirror
/// [`fps_maskcache::pipeline::simulate_plan`]: loads for cached blocks
/// are issued eagerly in block order and serialize on the copy stream;
/// a cached block's compute starts at `max(compute stream free, its
/// load done)`; an uncached block computes immediately at full cost.
/// With `front_load` set, the step instead re-enacts the naive
/// Fig. 9-top schedule: no compute starts until every load of the step
/// has finished.
///
/// Emitted spans: one `"request"` root, one `"step"` span per step
/// (parent: root), one `"block_load"` per cached block on the copy
/// lane and one `"block_compute"` per block on the compute lane
/// (parent: their step).
///
/// # Panics
///
/// Panics when `use_cache.len() != costs.len()`.
pub fn replay_request(
    sink: &TraceSink,
    tracks: ReplayTracks,
    t0_ns: u64,
    steps: usize,
    costs: &[BlockCosts],
    use_cache: &[bool],
    front_load: bool,
) -> u64 {
    assert_eq!(costs.len(), use_cache.len(), "one cache decision per block");
    let root = sink.next_id();
    let mut finish = t0_ns;
    for step in 0..steps {
        let step_start = finish;
        let step_span = sink.next_id();
        let mut load_done = step_start;
        let mut load_done_at: Vec<u64> = Vec::with_capacity(costs.len());
        for (i, c) in costs.iter().enumerate() {
            if use_cache[i] {
                let s = load_done;
                load_done = s + c.load.as_nanos();
                sink.span_at(
                    "block_load",
                    "copy",
                    tracks.copy,
                    s,
                    load_done,
                    step_span,
                    vec![("block", Json::U64(i as u64))],
                );
            }
            load_done_at.push(load_done);
        }
        let mut compute_free = if front_load { load_done } else { step_start };
        for (i, c) in costs.iter().enumerate() {
            let (start, dur) = if use_cache[i] {
                (
                    compute_free.max(load_done_at[i]),
                    c.compute_cached.as_nanos(),
                )
            } else {
                (compute_free, c.compute_full.as_nanos())
            };
            sink.span_at(
                "block_compute",
                "gpu",
                tracks.compute,
                start,
                start + dur,
                step_span,
                vec![
                    ("block", Json::U64(i as u64)),
                    ("cached", Json::Bool(use_cache[i])),
                ],
            );
            compute_free = start + dur;
        }
        sink.span_with_id(
            step_span,
            "step",
            "step",
            tracks.compute,
            step_start,
            compute_free,
            root,
            vec![("step", Json::U64(step as u64))],
        );
        finish = compute_free;
    }
    sink.span_with_id(
        root,
        "request",
        "request",
        tracks.compute,
        t0_ns,
        finish,
        0,
        Vec::new(),
    );
    finish
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_maskcache::pipeline::{naive_sequential_latency, plan_uniform, simulate_plan};
    use fps_simtime::SimDuration;
    use fps_trace::Clock;

    fn costs(n: usize) -> Vec<BlockCosts> {
        vec![
            BlockCosts {
                compute_cached: SimDuration::from_micros(100),
                compute_full: SimDuration::from_micros(300),
                load: SimDuration::from_micros(150),
            };
            n
        ]
    }

    #[test]
    fn pipelined_replay_matches_simulate_plan() {
        let c = costs(8);
        let plan = plan_uniform(8, c[0]);
        let sink = TraceSink::recording(Clock::Virtual);
        let tracks = ReplayTracks::labelled(&sink, 0, "dp");
        let finish = replay_request(&sink, tracks, 0, 3, &c, &plan.use_cache, false);
        let per_step = simulate_plan(&c, &plan.use_cache).unwrap();
        assert_eq!(finish, 3 * per_step.as_nanos());
        let t = sink.drain().unwrap();
        assert_eq!(t.spans_named("request").count(), 1);
        assert_eq!(t.spans_named("step").count(), 3);
        assert_eq!(t.spans_named("block_compute").count(), 24);
        let root = t.spans_named("request").next().unwrap();
        assert_eq!(root.end_ns, finish);
    }

    #[test]
    fn front_loaded_replay_matches_naive_sequential() {
        let c = costs(6);
        let all = vec![true; 6];
        let sink = TraceSink::recording(Clock::Virtual);
        let tracks = ReplayTracks::labelled(&sink, 1, "naive");
        let finish = replay_request(&sink, tracks, 0, 2, &c, &all, true);
        let per_step = naive_sequential_latency(&c).as_nanos();
        assert_eq!(finish, 2 * per_step);
        // The compute lane is idle for the whole load phase of each
        // step: no gpu span may start before the step's loads finish.
        let t = sink.drain().unwrap();
        let total_load: u64 = c.iter().map(|b| b.load.as_nanos()).sum();
        for s in t.spans_named("block_compute") {
            let step_start = (s.start_ns / per_step) * per_step;
            assert!(s.start_ns >= step_start + total_load);
        }
    }

    #[test]
    fn uncached_blocks_skip_the_copy_lane() {
        let c = costs(4);
        let none = vec![false; 4];
        let sink = TraceSink::recording(Clock::Virtual);
        let tracks = ReplayTracks::labelled(&sink, 0, "full");
        let finish = replay_request(&sink, tracks, 0, 1, &c, &none, false);
        let t = sink.drain().unwrap();
        assert_eq!(t.spans_named("block_load").count(), 0);
        assert_eq!(
            finish,
            4 * c[0].compute_full.as_nanos(),
            "all-full compute serializes"
        );
    }
}
