//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's non-poisoning API:
//! `lock()`, `read()`, and `write()` return guards directly, recovering
//! from poisoning (a panicking holder) instead of propagating it.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type of [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() = 3;
        assert_eq!(*m.lock(), 3);
    }
}
