//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specifications accepted by [`vec`]: a fixed length or a
/// half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Builds a [`VecStrategy`] with the given length spec.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo).max(1) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_spec() {
        let mut rng = TestRng::for_case("collection", 0);
        for _ in 0..200 {
            let v = vec(0.0f64..1.0, 2..6).sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
        let fixed = vec(0u8..3, 12usize).sample(&mut rng);
        assert_eq!(fixed.len(), 12);
    }

    #[test]
    fn tuple_elements_compose_with_vec() {
        let mut rng = TestRng::for_case("collection", 1);
        let v = vec((1u64..40, 1u64..60), 1..9).sample(&mut rng);
        assert!(!v.is_empty() && v.len() < 9);
        assert!(v.iter().all(|&(a, b)| a < 40 && b < 60));
    }
}
