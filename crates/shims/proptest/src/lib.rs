//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro
//! (with an optional `#![proptest_config(...)]` header), numeric range
//! and tuple strategies, [`collection::vec`], and the `prop_assert*`
//! macros. Cases are sampled deterministically — the RNG stream is
//! derived from the test's module path and the case index — so a
//! failure reproduces on every run. Shrinking is not implemented; the
//! failing inputs are printed instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs property-test functions over sampled inputs.
///
/// Supported grammar (the subset used by this workspace):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop_name(x in 0u64..100, v in proptest::collection::vec(0.0f64..1.0, 2..64)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(#[test] fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __pt_rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let __pt_vals = ($($crate::strategy::Strategy::sample(&($strat), &mut __pt_rng),)+);
                    let __pt_inputs = format!(
                        concat!("(", $(stringify!($pat), ", ",)+ ") = {:?}"),
                        &__pt_vals
                    );
                    let ($($pat,)+) = __pt_vals;
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(r)) => {
                            // Treat rejected cases as skipped, like upstream.
                            let _ = r;
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} failed: {}\n  inputs: {}",
                                case + 1, config.cases, msg, __pt_inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..100, y in -1.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn configured_cases_and_collections(
            mut v in crate::collection::vec(0usize..10, 2..6),
            t in (0u32..4, 0.5f32..1.5),
        ) {
            v.sort_unstable();
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(t.0 < 4);
            prop_assert_ne!(t.1, 2.0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            let config = ProptestConfig::with_cases(3);
            for case in 0..config.cases {
                let mut rng = crate::test_runner::TestRng::for_case("demo", case);
                let x = Strategy::sample(&(0u64..10), &mut rng);
                let r: Result<(), crate::test_runner::TestCaseError> = (|| {
                    prop_assert!(x > 100, "x was {}", x);
                    Ok(())
                })();
                if let Err(crate::test_runner::TestCaseError::Fail(m)) = r {
                    panic!("case failed: {m}");
                }
            }
        });
        assert!(result.is_err());
    }

    #[test]
    fn same_case_same_inputs() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(
            Strategy::sample(&(0u64..1000), &mut a),
            Strategy::sample(&(0u64..1000), &mut b)
        );
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        let _ = Strategy::sample(&(0u64..1000), &mut c);
    }
}
