//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking tree; a strategy is
/// just a deterministic sampler over the case RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let draw = if width == 0 { rng.next_u64() } else { rng.next_u64() % width };
                (self.start as $wide).wrapping_add(draw as $wide) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let draw = if width == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (width + 1)
                };
                (lo as $wide).wrapping_add(draw as $wide) as $t
            }
        }
    )*};
}

impl_int_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_case("strategy", 0);
        for _ in 0..500 {
            let u = (5u64..9).sample(&mut rng);
            assert!((5..9).contains(&u));
            let f = (-1.5f64..2.5).sample(&mut rng);
            assert!((-1.5..2.5).contains(&f));
            let i = (-8i64..=8).sample(&mut rng);
            assert!((-8..=8).contains(&i));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::for_case("strategy", 1);
        let (a, b, c) = (0u8..4, 0.0f32..1.0, Just("x")).sample(&mut rng);
        assert!(a < 4);
        assert!((0.0..1.0).contains(&b));
        assert_eq!(c, "x");
    }
}
