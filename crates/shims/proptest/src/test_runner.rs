//! Case execution support: config, RNG, and case errors.

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 48 keeps the offline suite fast
        // while still exploring the input space.
        Self { cases: 48 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assumption failed; the case is skipped, not failed.
    Reject(&'static str),
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Deterministic per-case RNG (splitmix64 over a name/case digest).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for one case of one property.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut state =
            0xD6E8_FEB8_6659_FD93u64 ^ u64::from(case).wrapping_mul(0x2545_F491_4F6C_DD1D);
        for chunk in name.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state ^= u64::from_le_bytes(word);
            state = Self::mix(state);
        }
        Self {
            state: Self::mix(state),
        }
    }

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_cases_distinct_streams() {
        let a = TestRng::for_case("x", 0).next_u64();
        let b = TestRng::for_case("x", 1).next_u64();
        let c = TestRng::for_case("y", 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_is_in_range() {
        let mut rng = TestRng::for_case("unit", 0);
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
