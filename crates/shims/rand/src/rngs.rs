//! Concrete generators: [`StdRng`] and the [`mock`] module.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++
/// seeded through splitmix64.
///
/// Unlike upstream `rand`, the stream is stable forever — it depends
/// only on the seed, which is what reproducible experiments need.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (slot, chunk) in s.iter_mut().zip(seed.chunks(8)) {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            *slot = u64::from_le_bytes(word);
        }
        // An all-zero state would be a fixed point; nudge it.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

/// Mock generators for documentation and tests.
pub mod mock {
    use crate::RngCore;

    /// A generator that counts up from `initial` by `increment`.
    #[derive(Debug, Clone)]
    pub struct StepRng {
        v: u64,
        increment: u64,
    }

    impl StepRng {
        /// Creates a generator yielding `initial`, `initial + increment`, …
        pub fn new(initial: u64, increment: u64) -> Self {
            Self {
                v: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.v;
            self.v = self.v.wrapping_add(self.increment);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mock::StepRng;
    use super::*;

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(10, 3);
        assert_eq!(r.next_u64(), 10);
        assert_eq!(r.next_u64(), 13);
        assert_eq!(r.next_u64(), 16);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::from_seed([0u8; 32]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert!(a != 0 || b != 0);
        assert_ne!(a, b);
    }
}
