//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (`seed_from_u64`, `from_seed`), [`rngs::StdRng`],
//! and [`rngs::mock::StepRng`]. Generators are deterministic
//! (splitmix64-seeded xoshiro256++), which is exactly what the
//! reproduction wants: streams depend only on the seed, never on the
//! platform or a crate upgrade.

pub mod rngs;

use core::fmt;

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The deterministic generators here never fail; the type exists for
/// signature compatibility.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// A source of raw random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
    /// Fallible [`RngCore::fill_bytes`]; never fails here.
    ///
    /// # Errors
    ///
    /// None in practice — the signature mirrors upstream `rand`.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Types with a uniform sampler over an interval (mirrors
/// `rand::distributions::uniform::SampleUniform` closely enough for
/// `gen_range` inference to behave like upstream: one generic
/// `Range<T>` impl, so `T` unifies with the range's element type).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` or `[lo, hi]` per `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty gen_range");
                    let width = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    let draw = if width == u64::MAX {
                        rng.next_u64()
                    } else {
                        rng.next_u64() % (width + 1)
                    };
                    (lo as $wide).wrapping_add(draw as $wide) as $t
                } else {
                    assert!(lo < hi, "empty gen_range");
                    let width = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    let draw = if width == 0 { rng.next_u64() } else { rng.next_u64() % width };
                    (lo as $wide).wrapping_add(draw as $wide) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty gen_range");
                } else {
                    assert!(lo < hi, "empty gen_range");
                }
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Uniform double in `[0, 1)` from the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types drawable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let bytes = (z ^ (z >> 31)).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_samples_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
