//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: `Criterion`
//! with `bench_function`/`benchmark_group`, `BenchmarkGroup` with
//! `bench_with_input`/`sample_size`/`finish`, `Bencher::iter` and
//! `iter_batched`, `BenchmarkId::from_parameter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros (both the list form and
//! the `name =/config =/targets =` form). Instead of criterion's
//! statistical analysis it times a fixed number of samples and prints
//! mean/min/max per benchmark, which is enough to eyeball regressions
//! offline.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Controls how much setup output `iter_batched` pre-builds per batch.
/// The distinction is irrelevant for this shim; every batch is one
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark label, usually built from the swept parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label derived from one parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// Label with an explicit function name and parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.durations.is_empty() {
            println!("bench {label:<40} no samples recorded");
            return;
        }
        let total: Duration = self.durations.iter().sum();
        let mean = total / self.durations.len() as u32;
        let min = self.durations.iter().min().copied().unwrap_or_default();
        let max = self.durations.iter().max().copied().unwrap_or_default();
        println!(
            "bench {label:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
            self.durations.len()
        );
    }
}

/// A named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one unparameterized benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group. Reporting already happened per benchmark.
    pub fn finish(self) {}
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: 10 }
    }
}

impl Criterion {
    /// Sets the default sample count for subsequent benchmarks.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Hook kept for API compatibility; config is already final here.
    pub fn final_summary(&self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny_sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
    }

    fn grouped(c: &mut Criterion) {
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        for n in [4u64, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter_batched(
                    || (0..n).collect::<Vec<u64>>(),
                    |v| v.iter().sum::<u64>(),
                    BatchSize::SmallInput,
                );
            });
        }
        group.finish();
    }

    criterion_group!(list_form, tiny, grouped);
    criterion_group! {
        name = config_form;
        config = Criterion::default().sample_size(2);
        targets = tiny
    }

    #[test]
    fn groups_run_without_panicking() {
        list_form();
        config_form();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(0.25).to_string(), "0.25");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
