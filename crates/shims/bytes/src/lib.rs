//! Offline stand-in for the `bytes` crate: [`Bytes`], an immutable,
//! reference-counted byte buffer with O(1) clone.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self(Arc::from([] as [u8; 0]))
    }

    /// Wraps a static byte slice (copied into shared storage; the
    /// upstream zero-copy optimization is irrelevant at this scale).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self(Arc::from(bytes))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, *b"abc");
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(b.to_vec().len(), 1024);
    }

    #[test]
    fn debug_escapes_bytes() {
        let b = Bytes::from_static(b"a\x00");
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
