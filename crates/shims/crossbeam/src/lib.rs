//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`channel`] — cloneable MPMC channels with disconnection
//! semantics matching crossbeam 0.8: `recv` fails once every sender is
//! gone and the queue is drained; `send` fails once every receiver is
//! gone. Built on `std::sync` primitives, so no external code is
//! required.

pub mod channel;
