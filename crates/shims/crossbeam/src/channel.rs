//! MPMC channels with crossbeam-compatible disconnection semantics.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent value is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Recovers the value that could not be sent.
    pub fn into_inner(self) -> T {
        self.0
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity; the value is handed back.
    Full(T),
    /// Every receiver is gone; the value is handed back.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            Self::Full(v) | Self::Disconnected(v) => v,
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// Signalled when a message arrives or the side counts change.
    readable: Condvar,
    /// Signalled when capacity frees up (bounded channels).
    writable: Condvar,
    capacity: Option<usize>,
}

/// The sending half of a channel; cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel; cloneable (MPMC).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates a channel with unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `cap` queued messages (a zero
/// capacity is promoted to one; true rendezvous channels are not
/// needed by this workspace).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
        capacity,
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

fn lock<T>(chan: &Chan<T>) -> std::sync::MutexGuard<'_, State<T>> {
    chan.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] with the value when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = lock(&self.chan);
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            let full = self.chan.capacity.is_some_and(|cap| st.queue.len() >= cap);
            if !full {
                st.queue.push_back(value);
                self.chan.readable.notify_one();
                return Ok(());
            }
            st = self
                .chan
                .writable
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Sends without blocking: a full bounded channel hands the value
    /// back immediately instead of waiting for capacity.
    ///
    /// # Errors
    ///
    /// Returns [`TrySendError::Full`] when the channel is at capacity
    /// and [`TrySendError::Disconnected`] when every receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = lock(&self.chan);
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if self.chan.capacity.is_some_and(|cap| st.queue.len() >= cap) {
            return Err(TrySendError::Full(value));
        }
        st.queue.push_back(value);
        self.chan.readable.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.chan).senders += 1;
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.chan);
        st.senders -= 1;
        if st.senders == 0 {
            self.chan.readable.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when the channel is drained and every
    /// sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = lock(&self.chan);
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.chan.writable.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .chan
                .readable
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until a message arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on expiry,
    /// [`RecvTimeoutError::Disconnected`] when drained with no senders.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.chan);
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.chan.writable.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .chan
                .readable
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            if res.timed_out() && st.queue.is_empty() {
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Takes a queued message without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when drained with no senders.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = lock(&self.chan);
        if let Some(v) = st.queue.pop_front() {
            self.chan.writable.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.chan).queue.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.chan).receivers += 1;
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.chan);
        st.receivers -= 1;
        if st.receivers == 0 {
            self.chan.writable.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        tx.send(6).unwrap();
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.try_recv(), Ok(6));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_when_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1), "queued messages drain first");
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = unbounded::<u32>();
        let err = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
    }

    #[test]
    fn cross_thread_mpmc() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let consumer = std::thread::spawn(move || {
            let mut got = 0;
            while rx2.recv().is_ok() {
                got += 1;
            }
            got
        });
        let mut got = 0;
        while rx.recv().is_ok() {
            got += 1;
        }
        producer.join().unwrap();
        got += consumer.join().unwrap();
        assert_eq!(got, 100);
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }
}
