//! The [`TraceSink`] handle and the per-thread ring-buffer collector.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled is free.** A `TraceSink::disabled()` handle is a
//!    `None`; every record call is one branch. Instrumentation can sit
//!    in the denoise hot loop.
//! 2. **No cross-thread contention on the record path.** Each thread
//!    lazily registers its own buffer with the collector; record calls
//!    lock only the calling thread's buffer, which is uncontended
//!    except during a drain.
//! 3. **Bounded memory.** Buffers are rings with a fixed capacity;
//!    overflow drops the *newest* record and bumps a shared drop
//!    counter instead of growing or blocking.
//! 4. **One clock per collector.** Wall-clock conveniences panic on a
//!    virtual-clock collector — mixing simulated and real timestamps
//!    in one trace is the bug this crate exists to prevent.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use fps_json::Json;

use crate::span::{Clock, EventRecord, SpanRecord, Track};

/// Default per-thread ring capacity (spans + events combined).
pub const DEFAULT_THREAD_CAPACITY: usize = 1 << 16;

/// Message used when a wall-clock API is called on a virtual-clock
/// sink; tested by name, keep in sync.
const CLOCK_MIX_MSG: &str =
    "wall-clock trace API on a virtual-clock sink: simulator spans must pass explicit SimTime \
     nanoseconds so sim-time and wall-time never mix in one trace";

#[derive(Debug)]
enum Item {
    Span(SpanRecord),
    Event(EventRecord),
}

/// One thread's bounded buffer. Only the owning thread records into
/// it; the collector locks it briefly during [`Collector::drain`].
#[derive(Debug)]
struct ThreadBuffer {
    items: Mutex<Vec<Item>>,
}

thread_local! {
    /// Cache of (collector id → this thread's buffer) so the record
    /// path skips the collector-wide registry lock after first use.
    static TLS_BUFFERS: RefCell<Vec<(u64, Weak<ThreadBuffer>)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

/// The shared state behind a recording [`TraceSink`].
#[derive(Debug)]
pub struct Collector {
    id: u64,
    clock: Clock,
    capacity: usize,
    epoch: Instant,
    next_span_id: AtomicU64,
    dropped: AtomicU64,
    buffers: Mutex<Vec<Arc<ThreadBuffer>>>,
    track_names: Mutex<Vec<(Track, String)>>,
}

impl Collector {
    fn new(clock: Clock, capacity: usize) -> Self {
        Self {
            id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
            clock,
            capacity: capacity.max(1),
            epoch: Instant::now(),
            next_span_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            buffers: Mutex::new(Vec::new()),
            track_names: Mutex::new(Vec::new()),
        }
    }

    /// The calling thread's buffer, registering one on first use.
    fn my_buffer(self: &Arc<Self>) -> Arc<ThreadBuffer> {
        TLS_BUFFERS.with(|tls| {
            let mut tls = tls.borrow_mut();
            if let Some((_, weak)) = tls.iter().find(|(id, _)| *id == self.id) {
                if let Some(buf) = weak.upgrade() {
                    return buf;
                }
            }
            let buf = Arc::new(ThreadBuffer {
                items: Mutex::new(Vec::new()),
            });
            self.buffers
                .lock()
                .expect("trace buffer registry poisoned")
                .push(Arc::clone(&buf));
            tls.retain(|(_, weak)| weak.strong_count() > 0);
            tls.push((self.id, Arc::downgrade(&buf)));
            buf
        })
    }

    fn push(self: &Arc<Self>, item: Item) {
        let buf = self.my_buffer();
        let mut items = buf.items.lock().expect("trace buffer poisoned");
        if items.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            items.push(item);
        }
    }
}

/// A drained, immutable trace: every span and event recorded so far,
/// in a deterministic order, plus the clock domain and drop count.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Clock domain all timestamps belong to.
    pub clock: Clock,
    /// Completed spans, sorted by (start, track, longest-first, id).
    pub spans: Vec<SpanRecord>,
    /// Instantaneous events, sorted by (timestamp, track, name).
    pub events: Vec<EventRecord>,
    /// Human labels for tracks, sorted by track.
    pub track_names: Vec<(Track, String)>,
    /// Records discarded because a thread's ring was full.
    pub dropped: u64,
}

impl Trace {
    /// The span with the given id, if present.
    pub fn span(&self, id: u64) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// All spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Overall time window covered by spans and events, as
    /// `(min start, max end)`; `None` for an empty trace.
    pub fn window(&self) -> Option<(u64, u64)> {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for s in &self.spans {
            lo = lo.min(s.start_ns);
            hi = hi.max(s.end_ns);
        }
        for e in &self.events {
            lo = lo.min(e.ts_ns);
            hi = hi.max(e.ts_ns);
        }
        (lo != u64::MAX).then_some((lo, hi))
    }
}

/// Cheap, cloneable handle to a [`Collector`] (or to nothing).
///
/// The default sink is disabled: every record call reduces to one
/// `Option` check with no allocation, locking, or clock read.
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Option<Arc<Collector>>);

impl TraceSink {
    /// A sink that records nothing.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A recording sink pinned to `clock`, with the default per-thread
    /// ring capacity.
    pub fn recording(clock: Clock) -> Self {
        Self::with_capacity(clock, DEFAULT_THREAD_CAPACITY)
    }

    /// A recording sink with an explicit per-thread ring capacity
    /// (spans + events combined; clamped to ≥ 1).
    pub fn with_capacity(clock: Clock, capacity_per_thread: usize) -> Self {
        Self(Some(Arc::new(Collector::new(clock, capacity_per_thread))))
    }

    /// Whether records are being kept. Gate any non-trivial argument
    /// construction on this.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The collector's clock domain; `None` when disabled.
    pub fn clock(&self) -> Option<Clock> {
        self.0.as_ref().map(|c| c.clock)
    }

    /// Records discarded so far because a ring was full.
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.dropped.load(Ordering::Relaxed))
    }

    /// A fresh collector-unique span id (0 when disabled).
    pub fn next_id(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.next_span_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Wall nanoseconds since the collector epoch.
    ///
    /// # Panics
    ///
    /// On a virtual-clock sink — simulator code must pass explicit
    /// timestamps.
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            None => 0,
            Some(c) => {
                assert!(c.clock == Clock::Wall, "{CLOCK_MIX_MSG}");
                u64::try_from(c.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
        }
    }

    /// Converts a wall-clock [`Instant`] to collector nanoseconds
    /// (clamping instants before the epoch to 0).
    ///
    /// # Panics
    ///
    /// On a virtual-clock sink.
    pub fn instant_ns(&self, t: Instant) -> u64 {
        match &self.0 {
            None => 0,
            Some(c) => {
                assert!(c.clock == Clock::Wall, "{CLOCK_MIX_MSG}");
                t.checked_duration_since(c.epoch)
                    .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            }
        }
    }

    /// Attaches a human label to a track (idempotent per label).
    pub fn name_track(&self, track: Track, label: impl Into<String>) {
        if let Some(c) = &self.0 {
            let mut names = c.track_names.lock().expect("track names poisoned");
            let label = label.into();
            if !names.iter().any(|(t, l)| *t == track && *l == label) {
                names.push((track, label));
            }
        }
    }

    /// Records a completed span with explicit timestamps (in the
    /// collector's clock domain) and returns its id, or 0 when
    /// disabled. This is the API simulator code uses with `SimTime`
    /// nanoseconds.
    #[allow(clippy::too_many_arguments)]
    pub fn span_at(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        track: Track,
        start_ns: u64,
        end_ns: u64,
        parent: u64,
        args: Vec<(&'static str, Json)>,
    ) -> u64 {
        let Some(c) = &self.0 else { return 0 };
        let id = c.next_span_id.fetch_add(1, Ordering::Relaxed);
        c.push(Item::Span(SpanRecord {
            id,
            parent,
            name: name.into(),
            cat,
            track,
            start_ns,
            end_ns,
            args,
        }));
        id
    }

    /// Records a completed span under a caller-provided id (from
    /// [`Self::next_id`]). This lets children reference a root span
    /// that is only recorded once its end time is known.
    #[allow(clippy::too_many_arguments)]
    pub fn span_with_id(
        &self,
        id: u64,
        name: impl Into<String>,
        cat: &'static str,
        track: Track,
        start_ns: u64,
        end_ns: u64,
        parent: u64,
        args: Vec<(&'static str, Json)>,
    ) {
        if let Some(c) = &self.0 {
            c.push(Item::Span(SpanRecord {
                id,
                parent,
                name: name.into(),
                cat,
                track,
                start_ns,
                end_ns,
                args,
            }));
        }
    }

    /// Records an instantaneous event with an explicit timestamp.
    pub fn event_at(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        track: Track,
        ts_ns: u64,
        args: Vec<(&'static str, Json)>,
    ) {
        if let Some(c) = &self.0 {
            c.push(Item::Event(EventRecord {
                name: name.into(),
                cat,
                track,
                ts_ns,
                args,
            }));
        }
    }

    /// Starts a wall-clock RAII span; the record is emitted when the
    /// guard drops.
    ///
    /// # Panics
    ///
    /// On a virtual-clock sink.
    pub fn start(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        track: Track,
        parent: u64,
    ) -> SpanGuard<'_> {
        let enabled = self.is_enabled();
        SpanGuard {
            sink: self,
            id: self.next_id(),
            parent,
            name: if enabled { name.into() } else { String::new() },
            cat,
            track,
            start_ns: self.now_ns(),
            args: Vec::new(),
        }
    }

    /// Drains every thread's buffer into a deterministic [`Trace`].
    /// Returns `None` when disabled. Records made after the drain go
    /// into fresh (same) buffers and show up in the next drain.
    pub fn drain(&self) -> Option<Trace> {
        let c = self.0.as_ref()?;
        let mut spans = Vec::new();
        let mut events = Vec::new();
        {
            let buffers = c.buffers.lock().expect("trace buffer registry poisoned");
            for buf in buffers.iter() {
                let items = std::mem::take(&mut *buf.items.lock().expect("trace buffer poisoned"));
                for item in items {
                    match item {
                        Item::Span(s) => spans.push(s),
                        Item::Event(e) => events.push(e),
                    }
                }
            }
        }
        spans.sort_by(|a, b| {
            (a.start_ns, a.track, std::cmp::Reverse(a.end_ns), a.id).cmp(&(
                b.start_ns,
                b.track,
                std::cmp::Reverse(b.end_ns),
                b.id,
            ))
        });
        events.sort_by(|a, b| {
            (a.ts_ns, a.track, &a.name)
                .cmp(&(b.ts_ns, b.track, &b.name))
                .then(a.args.len().cmp(&b.args.len()))
        });
        let mut track_names = c.track_names.lock().expect("track names poisoned").clone();
        track_names.sort();
        Some(Trace {
            clock: c.clock,
            spans,
            events,
            track_names,
            dropped: c.dropped.load(Ordering::Relaxed),
        })
    }
}

/// RAII wall-clock span; records on drop. Obtained from
/// [`TraceSink::start`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    sink: &'a TraceSink,
    id: u64,
    parent: u64,
    name: String,
    cat: &'static str,
    track: Track,
    start_ns: u64,
    args: Vec<(&'static str, Json)>,
}

impl SpanGuard<'_> {
    /// This span's id, usable as a child's `parent` (0 when disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches an argument (no-op when the sink is disabled).
    pub fn arg(&mut self, key: &'static str, value: impl Into<Json>) {
        if self.id != 0 {
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(c) = &self.sink.0 else { return };
        let end_ns = self.sink.now_ns();
        c.push(Item::Span(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            track: self.track,
            start_ns: self.start_ns,
            end_ns,
            args: std::mem::take(&mut self.args),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        assert_eq!(sink.clock(), None);
        assert_eq!(sink.next_id(), 0);
        assert_eq!(sink.now_ns(), 0);
        assert_eq!(
            sink.span_at("x", "gpu", Track::new(0, 0), 0, 1, 0, Vec::new()),
            0
        );
        sink.event_at("e", "gpu", Track::new(0, 0), 5, Vec::new());
        {
            let mut g = sink.start("y", "gpu", Track::new(0, 0), 0);
            g.arg("k", 1u64);
        }
        assert!(sink.drain().is_none());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn virtual_sink_records_explicit_timestamps() {
        let sink = TraceSink::recording(Clock::Virtual);
        let root = sink.span_at(
            "request",
            "request",
            Track::new(0, 1),
            0,
            100,
            0,
            Vec::new(),
        );
        assert_ne!(root, 0);
        let child = sink.span_at(
            "queue",
            "request",
            Track::new(0, 1),
            0,
            40,
            root,
            Vec::new(),
        );
        sink.event_at("shed", "overload", Track::new(0, 0), 7, Vec::new());
        let trace = sink.drain().expect("recording");
        assert_eq!(trace.clock, Clock::Virtual);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.span(child).unwrap().parent, root);
        // Longest-first at equal starts: the root sorts before the child.
        assert_eq!(trace.spans[0].id, root);
        assert_eq!(trace.window(), Some((0, 100)));
        // Second drain sees only new records.
        assert!(sink.drain().unwrap().spans.is_empty());
    }

    #[test]
    #[should_panic(expected = "virtual-clock sink")]
    fn wall_api_on_virtual_sink_panics() {
        let sink = TraceSink::recording(Clock::Virtual);
        let _ = sink.now_ns();
    }

    #[test]
    fn wall_guard_records_on_drop() {
        let sink = TraceSink::recording(Clock::Wall);
        {
            let mut g = sink.start("step", "gpu", Track::new(1, 0), 0);
            g.arg("batch", 3u64);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let trace = sink.drain().unwrap();
        assert_eq!(trace.spans.len(), 1);
        let s = &trace.spans[0];
        assert_eq!(s.name, "step");
        assert!(s.duration_ns() > 0, "guard must measure elapsed time");
        assert_eq!(s.arg("batch").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let sink = TraceSink::with_capacity(Clock::Virtual, 4);
        for i in 0..10u64 {
            sink.span_at("s", "gpu", Track::new(0, 0), i, i + 1, 0, Vec::new());
        }
        assert_eq!(sink.dropped(), 6);
        let trace = sink.drain().unwrap();
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.dropped, 6);
    }

    #[test]
    fn overflow_under_contention_loses_nothing_silently() {
        // N threads each try to write far more than their ring holds;
        // the kept + dropped totals must balance exactly.
        let sink = TraceSink::with_capacity(Clock::Wall, 64);
        let threads = 8;
        let per_thread = 1000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        sink.span_at(
                            "w",
                            "gpu",
                            Track::new(t, 0),
                            i,
                            i + 1,
                            0,
                            vec![("thread", Json::U64(u64::from(t)))],
                        );
                    }
                });
            }
        });
        let trace = sink.drain().unwrap();
        let kept = trace.spans.len() as u64;
        assert_eq!(kept, u64::from(threads) * 64, "each ring fills exactly");
        assert_eq!(
            kept + trace.dropped,
            u64::from(threads) * per_thread,
            "every record is either kept or counted as dropped"
        );
    }

    #[test]
    fn per_thread_buffers_register_once_per_collector() {
        let a = TraceSink::recording(Clock::Virtual);
        let b = TraceSink::recording(Clock::Virtual);
        a.span_at("a1", "x", Track::default(), 0, 1, 0, Vec::new());
        b.span_at("b1", "x", Track::default(), 0, 1, 0, Vec::new());
        a.span_at("a2", "x", Track::default(), 1, 2, 0, Vec::new());
        assert_eq!(a.drain().unwrap().spans.len(), 2);
        assert_eq!(b.drain().unwrap().spans.len(), 1);
    }

    #[test]
    fn track_names_dedup_and_sort() {
        let sink = TraceSink::recording(Clock::Virtual);
        sink.name_track(Track::new(2, 0), "worker1");
        sink.name_track(Track::new(1, 0), "worker0");
        sink.name_track(Track::new(2, 0), "worker1");
        let trace = sink.drain().unwrap();
        assert_eq!(
            trace.track_names,
            vec![
                (Track::new(1, 0), "worker0".to_string()),
                (Track::new(2, 0), "worker1".to_string()),
            ]
        );
    }
}
