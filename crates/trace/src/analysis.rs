//! Trace analysis: critical paths, bubble fractions, and
//! queue-wait/service-time decomposition.
//!
//! These are the measurements the paper's figures are made of:
//!
//! - **Critical path** (Fig. 14/16 decompositions): the chain of span
//!   segments that actually bounds a request's latency. By
//!   construction the extracted segments are disjoint sub-intervals of
//!   the root span, so their total never exceeds the root's duration.
//! - **Bubble fraction** (Fig. 9): within a window, the share of time
//!   *not* covered by busy spans — for a GPU compute lane, the time
//!   the compute stream sat idle waiting on cache loads. FlashPS's
//!   Algorithm 1 exists to push this to ~0.
//! - **Stage breakdown**: per-request sums of child-span time by stage
//!   name (queue, cache_fetch, denoise, postprocess), the raw material
//!   for queue-wait percentiles per degradation rung.

use crate::sink::Trace;
use crate::span::SpanRecord;

/// One hop of a critical path: a sub-interval of the root attributed
/// to a particular span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// The span this time is attributed to.
    pub span_id: u64,
    /// The span's name (copied for report-building convenience).
    pub name: String,
    /// Segment start, nanoseconds.
    pub start_ns: u64,
    /// Segment end, nanoseconds.
    pub end_ns: u64,
}

impl PathSegment {
    /// Segment length in nanoseconds.
    pub fn nanos(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Extracts the critical path under the span `root_id`: walking
/// backwards from the root's end, time is attributed to the deepest
/// span active at each point, recursing into the child whose end is
/// latest. The returned segments are disjoint, chronologically
/// ordered, and all lie within the root span — so
/// [`critical_path_nanos`] ≤ the root's duration, always.
pub fn critical_path(trace: &Trace, root_id: u64) -> Vec<PathSegment> {
    let Some(root) = trace.span(root_id) else {
        return Vec::new();
    };
    // children[i] = indices of spans whose parent is spans[i].
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); trace.spans.len()];
    let index_of = |id: u64| trace.spans.iter().position(|s| s.id == id);
    for (i, s) in trace.spans.iter().enumerate() {
        if s.parent != 0 {
            if let Some(pi) = index_of(s.parent) {
                children[pi].push(i);
            }
        }
    }
    let root_idx = index_of(root_id).expect("root exists by construction");
    let mut segments = Vec::new();
    walk(
        trace,
        &children,
        root_idx,
        root.start_ns,
        root.end_ns,
        0,
        &mut segments,
    );
    segments.reverse();
    segments
}

/// Recursive backward walk: attributes `[lo, hi]` to `idx`'s children
/// (latest-ending first) and keeps the uncovered remainder as `idx`'s
/// own time. Depth-bounded against pathological trees.
fn walk(
    trace: &Trace,
    children: &[Vec<usize>],
    idx: usize,
    lo: u64,
    hi: u64,
    depth: usize,
    out: &mut Vec<PathSegment>,
) {
    let span = &trace.spans[idx];
    let mut cursor = hi;
    if depth < 64 {
        // Children sorted by end descending; each takes the chunk of
        // the remaining window it covers.
        let mut kids: Vec<usize> = children[idx].clone();
        kids.sort_by_key(|&c| std::cmp::Reverse((trace.spans[c].end_ns, trace.spans[c].id)));
        for &c in &kids {
            if cursor <= lo {
                break;
            }
            let child = &trace.spans[c];
            let c_end = child.end_ns.min(cursor);
            let c_start = child.start_ns.max(lo);
            if c_end <= c_start {
                continue;
            }
            if c_end < cursor {
                // Gap after the child: the parent's own time.
                out.push(PathSegment {
                    span_id: span.id,
                    name: span.name.clone(),
                    start_ns: c_end,
                    end_ns: cursor,
                });
            }
            walk(trace, children, c, c_start, c_end, depth + 1, out);
            cursor = c_start;
        }
    }
    if cursor > lo {
        out.push(PathSegment {
            span_id: span.id,
            name: span.name.clone(),
            start_ns: lo,
            end_ns: cursor,
        });
    }
}

/// Total nanoseconds along a critical path.
pub fn critical_path_nanos(path: &[PathSegment]) -> u64 {
    path.iter().map(PathSegment::nanos).sum()
}

/// Busy-vs-idle accounting for one window of one resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BubbleReport {
    /// Window length, nanoseconds.
    pub window_ns: u64,
    /// Nanoseconds covered by at least one busy span.
    pub busy_ns: u64,
    /// Idle nanoseconds (`window - busy`) — the pipeline "bubble".
    pub bubble_ns: u64,
}

impl BubbleReport {
    /// Idle share of the window in `[0, 1]`; 0 for an empty window.
    pub fn fraction(&self) -> f64 {
        if self.window_ns == 0 {
            0.0
        } else {
            self.bubble_ns as f64 / self.window_ns as f64
        }
    }
}

/// Measures the bubble within `[lo, hi]`, counting as busy every span
/// for which `is_busy` returns true (clipped to the window). Typical
/// use: the window is a denoise step on the GPU lane and `is_busy`
/// selects `cat == "gpu"` leaf compute spans.
pub fn bubble_in_window(
    trace: &Trace,
    lo: u64,
    hi: u64,
    is_busy: impl Fn(&SpanRecord) -> bool,
) -> BubbleReport {
    let window_ns = hi.saturating_sub(lo);
    let intervals: Vec<(u64, u64)> = trace
        .spans
        .iter()
        .filter(|s| is_busy(s))
        .map(|s| (s.start_ns.max(lo), s.end_ns.min(hi)))
        .filter(|(a, b)| b > a)
        .collect();
    let busy_ns = merged_intervals(intervals).iter().map(|(a, b)| b - a).sum();
    BubbleReport {
        window_ns,
        busy_ns,
        bubble_ns: window_ns.saturating_sub(busy_ns),
    }
}

/// Merges half-open `(start, end)` intervals into a disjoint, sorted
/// cover. Exposed because cluster-level bubble accounting intersects
/// idle windows with cache-wait windows.
pub fn merged_intervals(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.retain(|(a, b)| b > a);
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (a, b) in intervals {
        match out.last_mut() {
            Some((_, e)) if a <= *e => *e = (*e).max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Per-request stage decomposition: the root span plus its direct
/// children's time summed by stage name.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBreakdown {
    /// The request root span id.
    pub root_id: u64,
    /// Root span duration, nanoseconds.
    pub total_ns: u64,
    /// `(stage name, summed nanoseconds)` over direct children, in
    /// first-seen order.
    pub stages: Vec<(String, u64)>,
}

impl StageBreakdown {
    /// Summed nanoseconds of one stage (0 when absent).
    pub fn stage_ns(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, ns)| *ns)
    }
}

/// Decomposes every span of category `root_cat` (e.g. `"request"`
/// roots) into its direct children's stage times.
pub fn stage_breakdown(trace: &Trace, root_cat: &str) -> Vec<StageBreakdown> {
    trace
        .spans
        .iter()
        .filter(|s| s.cat == root_cat && s.parent == 0)
        .map(|root| {
            let mut stages: Vec<(String, u64)> = Vec::new();
            for child in trace.spans.iter().filter(|c| c.parent == root.id) {
                match stages.iter_mut().find(|(n, _)| *n == child.name) {
                    Some((_, ns)) => *ns += child.duration_ns(),
                    None => stages.push((child.name.clone(), child.duration_ns())),
                }
            }
            StageBreakdown {
                root_id: root.id,
                total_ns: root.duration_ns(),
                stages,
            }
        })
        .collect()
}

/// The `q`-th percentile (0–100) of a sample by nearest-rank on a
/// sorted copy; 0.0 for an empty sample.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;
    use crate::span::{Clock, Track};
    use proptest::prelude::*;

    fn request_trace() -> (Trace, u64) {
        let sink = TraceSink::recording(Clock::Virtual);
        let t = Track::new(0, 1);
        let root = sink.span_at("request", "request", t, 0, 1000, 0, Vec::new());
        let q = sink.span_at("queue", "stage", t, 0, 300, root, Vec::new());
        sink.span_at("router", "stage", t, 100, 250, q, Vec::new());
        let d = sink.span_at("denoise", "stage", t, 300, 900, root, Vec::new());
        sink.span_at("step", "gpu", t, 350, 600, d, Vec::new());
        sink.span_at("postprocess", "stage", t, 900, 1000, root, Vec::new());
        (sink.drain().unwrap(), root)
    }

    #[test]
    fn critical_path_is_disjoint_and_bounded() {
        let (trace, root) = request_trace();
        let path = critical_path(&trace, root);
        let total = critical_path_nanos(&path);
        assert_eq!(total, 1000, "children tile the root fully here");
        // Chronological + disjoint.
        for w in path.windows(2) {
            assert!(w[0].end_ns <= w[1].start_ns);
        }
        // The deepest active span owns each chunk.
        let names: Vec<&str> = path.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "queue",
                "router",
                "queue",
                "denoise",
                "step",
                "denoise",
                "postprocess"
            ]
        );
    }

    #[test]
    fn critical_path_missing_root_is_empty() {
        let (trace, _) = request_trace();
        assert!(critical_path(&trace, 9999).is_empty());
    }

    #[test]
    fn bubble_counts_uncovered_window_time() {
        let (trace, _) = request_trace();
        // Denoise window is [300, 900]; gpu busy is [350, 600].
        let b = bubble_in_window(&trace, 300, 900, |s| s.cat == "gpu");
        assert_eq!(b.window_ns, 600);
        assert_eq!(b.busy_ns, 250);
        assert_eq!(b.bubble_ns, 350);
        assert!((b.fraction() - 350.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn merged_intervals_handles_overlap_and_touching() {
        assert_eq!(
            merged_intervals(vec![(5, 10), (0, 3), (3, 6), (20, 20), (15, 18)]),
            vec![(0, 10), (15, 18)]
        );
        assert!(merged_intervals(Vec::new()).is_empty());
    }

    #[test]
    fn stage_breakdown_sums_direct_children() {
        let (trace, root) = request_trace();
        let breakdowns = stage_breakdown(&trace, "request");
        assert_eq!(breakdowns.len(), 1);
        let b = &breakdowns[0];
        assert_eq!(b.root_id, root);
        assert_eq!(b.total_ns, 1000);
        assert_eq!(b.stage_ns("queue"), 300);
        assert_eq!(b.stage_ns("denoise"), 600);
        assert_eq!(b.stage_ns("postprocess"), 100);
        assert_eq!(b.stage_ns("router"), 0, "grandchildren are not stages");
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 6.0);
        assert_eq!(percentile(&v, 95.0), 10.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    /// Random well-formed span trees as `(id, parent, start, end)`
    /// rows: children nest inside their parents; the root is id 1.
    fn build_tree(span: u64, rels: &[(f64, f64, usize)]) -> Vec<(u64, u64, u64, u64)> {
        let mut nodes: Vec<(u64, u64, u64, u64)> = vec![(1, 0, 0, span)];
        for &(a, b, parent_pick) in rels {
            let pid = parent_pick.min(nodes.len() - 1);
            let (p_id, _, p_start, p_end) = nodes[pid];
            let width = p_end - p_start;
            let mut s = p_start + (a * width as f64) as u64;
            let mut e = p_start + (b * width as f64) as u64;
            if s > e {
                std::mem::swap(&mut s, &mut e);
            }
            let id = nodes.len() as u64 + 1;
            nodes.push((id, p_id, s, e));
        }
        nodes
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn prop_critical_path_never_exceeds_root_span(
            span in 2u64..2000,
            rels in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0usize..4), 0..24),
        ) {
            let nodes = build_tree(span, &rels);
            let sink = TraceSink::recording(Clock::Virtual);
            // span_at hands out sequential ids starting at 1, matching
            // the generator's numbering, so parents line up.
            for &(_, parent, start, end) in &nodes {
                sink.span_at("n", "x", Track::default(), start, end, parent, Vec::new());
            }
            let trace = sink.drain().unwrap();
            let root_duration = nodes[0].3 - nodes[0].2;
            let path = critical_path(&trace, 1);
            let total = critical_path_nanos(&path);
            prop_assert!(
                total <= root_duration,
                "critical path {total} exceeds root span {root_duration}"
            );
            prop_assert!(total > 0 || root_duration == 0);
            // Segments are disjoint and chronologically ordered.
            for w in path.windows(2) {
                prop_assert!(w[0].end_ns <= w[1].start_ns);
            }
        }
    }
}
