//! The span/event data model and the dual-clock domain tag.

use fps_json::Json;

/// The clock domain a trace was captured in.
///
/// FlashPS runs the same request path in two worlds: the real
/// multi-threaded `ThreadedServer` (wall time, `std::time::Instant`)
/// and the discrete-event `ClusterSim` (virtual time, `SimTime`).
/// Timestamps from the two are dimensionally incompatible — a
/// simulated 30 s queue wait must never be averaged with a real 3 ms
/// kernel — so every collector is pinned to exactly one domain and the
/// exporter stamps it into the artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Real time: nanoseconds since the collector was created.
    Wall,
    /// Simulator time: nanoseconds since the simulation epoch.
    Virtual,
}

impl Clock {
    /// Stable lowercase label used in exported artifacts.
    pub fn label(self) -> &'static str {
        match self {
            Clock::Wall => "wall",
            Clock::Virtual => "virtual",
        }
    }
}

/// Where a record lives in the trace viewer: a (process, lane) pair
/// mapped onto Chrome's `pid`/`tid`.
///
/// The stack uses processes for schedulable entities (the router,
/// each worker, the cache store) and lanes for their internal streams
/// (GPU compute vs. copy vs. CPU pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Track {
    /// Chrome `pid`: the owning entity.
    pub process: u32,
    /// Chrome `tid`: the stream/lane within the entity.
    pub lane: u32,
}

impl Track {
    /// Builds a track from a process and lane id.
    pub const fn new(process: u32, lane: u32) -> Self {
        Self { process, lane }
    }
}

/// A completed span: a named interval on a track, optionally nested
/// under a parent span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Collector-unique id (never 0).
    pub id: u64,
    /// Enclosing span's id; 0 for roots.
    pub parent: u64,
    /// Human-readable stage name ("queue", "denoise_step", ...).
    pub name: String,
    /// Coarse category used by the analysis layer to classify busy
    /// time ("gpu", "copy", "cpu", "request", ...).
    pub cat: &'static str,
    /// Display/analysis track.
    pub track: Track,
    /// Start, nanoseconds in the collector's clock domain.
    pub start_ns: u64,
    /// End, nanoseconds in the collector's clock domain.
    pub end_ns: u64,
    /// Free-form key/value payload.
    pub args: Vec<(&'static str, Json)>,
}

impl SpanRecord {
    /// Span length in nanoseconds (zero if the record is inverted).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&Json> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// An instantaneous event on a track (admission shed, breaker trip,
/// cache-verify fallback, routing decision, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name.
    pub name: String,
    /// Coarse category.
    pub cat: &'static str,
    /// Display/analysis track.
    pub track: Track,
    /// Timestamp, nanoseconds in the collector's clock domain.
    pub ts_ns: u64,
    /// Free-form key/value payload.
    pub args: Vec<(&'static str, Json)>,
}

impl EventRecord {
    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&Json> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_saturates_and_args_lookup() {
        let s = SpanRecord {
            id: 1,
            parent: 0,
            name: "queue".into(),
            cat: "request",
            track: Track::new(0, 7),
            start_ns: 50,
            end_ns: 20,
            args: vec![("rung", Json::Str("flashps".into()))],
        };
        assert_eq!(s.duration_ns(), 0);
        assert_eq!(s.arg("rung").and_then(Json::as_str), Some("flashps"));
        assert!(s.arg("missing").is_none());
    }

    #[test]
    fn clock_labels_are_stable() {
        assert_eq!(Clock::Wall.label(), "wall");
        assert_eq!(Clock::Virtual.label(), "virtual");
    }
}
