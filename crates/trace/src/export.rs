//! Exporters: Chrome `chrome://tracing` JSON and flamegraph
//! collapsed-stack text.
//!
//! The Chrome format is the Trace Event Format's JSON-object flavor:
//! `{"traceEvents": [...]}` with complete (`ph:"X"`) events carrying
//! microsecond `ts`/`dur` and `pid`/`tid` placement, plus metadata
//! (`ph:"M"`) events naming processes and threads. Both Chrome's
//! legacy `chrome://tracing` viewer and Perfetto load it directly.
//! Output is deterministic for a deterministic input trace: spans are
//! pre-sorted by the drain and numbers format via Rust's shortest
//! round-trip `{:?}`.

use fps_json::Json;

use crate::sink::Trace;
use crate::span::Track;

/// Microseconds (Chrome's unit) from nanoseconds, exact as f64 for
/// any sub-292-year timestamp.
fn micros(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn args_json(args: &[(&'static str, Json)], extra: &[(&str, Json)]) -> Json {
    let mut obj = Json::object();
    for (k, v) in args {
        obj = obj.with(k, v.clone());
    }
    for (k, v) in extra {
        obj = obj.with(k, v.clone());
    }
    obj
}

/// Builds the Chrome-trace JSON tree for a drained [`Trace`].
pub fn chrome_trace_json(trace: &Trace) -> Json {
    let mut events = Vec::new();
    // Metadata: name processes (lane 0 labels double as process
    // names) and every labelled thread lane.
    for (track, label) in &trace.track_names {
        if track.lane == 0 {
            events.push(meta_event("process_name", *track, label));
        }
        events.push(meta_event("thread_name", *track, label));
    }
    for s in &trace.spans {
        let extra: Vec<(&str, Json)> = vec![
            ("span_id", Json::U64(s.id)),
            ("parent_id", Json::U64(s.parent)),
        ];
        events.push(
            Json::object()
                .with("name", s.name.as_str())
                .with("cat", s.cat)
                .with("ph", "X")
                .with("ts", micros(s.start_ns))
                .with("dur", micros(s.duration_ns()))
                .with("pid", s.track.process)
                .with("tid", s.track.lane)
                .with("args", args_json(&s.args, &extra)),
        );
    }
    for e in &trace.events {
        events.push(
            Json::object()
                .with("name", e.name.as_str())
                .with("cat", e.cat)
                .with("ph", "i")
                .with("s", "t")
                .with("ts", micros(e.ts_ns))
                .with("pid", e.track.process)
                .with("tid", e.track.lane)
                .with("args", args_json(&e.args, &[])),
        );
    }
    Json::object()
        .with("traceEvents", Json::Array(events))
        .with("displayTimeUnit", "ms")
        .with(
            "otherData",
            Json::object()
                .with("clock", trace.clock.label())
                .with("dropped", trace.dropped),
        )
}

fn meta_event(kind: &str, track: Track, label: &str) -> Json {
    Json::object()
        .with("name", kind)
        .with("ph", "M")
        .with("pid", track.process)
        .with("tid", track.lane)
        .with("args", Json::object().with("name", label))
}

/// Compact Chrome-trace JSON text, ready to save as a `.json` file
/// and load in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_string(trace: &Trace) -> String {
    chrome_trace_json(trace).to_string_compact()
}

/// Flamegraph collapsed-stack text: one `stack;frames count` line per
/// unique root→leaf path, weighted by *self* nanoseconds (span time
/// not covered by its children). Lines sort lexicographically so the
/// output is deterministic; feed it to `flamegraph.pl` or speedscope.
pub fn flamegraph_collapsed(trace: &Trace) -> String {
    // Parent-chain names per span.
    let mut by_id: Vec<(u64, usize)> = trace
        .spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id, i))
        .collect();
    by_id.sort_unstable();
    let lookup = |id: u64| -> Option<usize> {
        by_id
            .binary_search_by_key(&id, |&(sid, _)| sid)
            .ok()
            .map(|pos| by_id[pos].1)
    };
    // Children time per parent, for self-time computation.
    let mut child_ns = vec![0u64; trace.spans.len()];
    for s in &trace.spans {
        if let Some(pi) = lookup(s.parent) {
            child_ns[pi] += s.duration_ns();
        }
    }
    let mut lines: Vec<(String, u64)> = Vec::new();
    for (i, s) in trace.spans.iter().enumerate() {
        let self_ns = s.duration_ns().saturating_sub(child_ns[i]);
        if self_ns == 0 {
            continue;
        }
        // Build root→leaf frame path (bounded to defend against
        // accidental parent cycles).
        let mut frames = vec![clean_frame(&s.name)];
        let mut cur = s.parent;
        let mut hops = 0;
        while cur != 0 && hops < 64 {
            let Some(pi) = lookup(cur) else { break };
            frames.push(clean_frame(&trace.spans[pi].name));
            cur = trace.spans[pi].parent;
            hops += 1;
        }
        frames.reverse();
        lines.push((frames.join(";"), self_ns));
    }
    // Aggregate identical stacks.
    lines.sort();
    let mut out = String::new();
    let mut iter = lines.into_iter();
    if let Some((mut stack, mut ns)) = iter.next() {
        for (s, n) in iter {
            if s == stack {
                ns += n;
            } else {
                out.push_str(&format!("{stack} {ns}\n"));
                stack = s;
                ns = n;
            }
        }
        out.push_str(&format!("{stack} {ns}\n"));
    }
    out
}

/// Frame names may not contain the stack separator or spaces.
fn clean_frame(name: &str) -> String {
    name.replace([';', ' '], "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;
    use crate::span::{Clock, Track};

    fn sample() -> Trace {
        let sink = TraceSink::recording(Clock::Virtual);
        sink.name_track(Track::new(1, 0), "worker0");
        let root = sink.span_at(
            "request",
            "request",
            Track::new(0, 1),
            0,
            1000,
            0,
            vec![("mask_ratio", Json::F64(0.2))],
        );
        sink.span_at(
            "queue",
            "request",
            Track::new(0, 1),
            0,
            300,
            root,
            Vec::new(),
        );
        sink.span_at(
            "denoise",
            "request",
            Track::new(0, 1),
            300,
            900,
            root,
            Vec::new(),
        );
        sink.event_at(
            "shed",
            "overload",
            Track::new(0, 0),
            50,
            vec![("reason", Json::Str("queue_full".into()))],
        );
        sink.drain().unwrap()
    }

    #[test]
    fn chrome_export_round_trips_through_fps_json() {
        let text = chrome_trace_string(&sample());
        let back = Json::parse(&text).expect("exporter output must be valid JSON");
        let events = back
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 2 metadata (process + thread name) + 3 spans + 1 instant.
        assert_eq!(events.len(), 6);
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("request"))
            .expect("request span present");
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(1.0)); // 1000 ns = 1 µs
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("mask_ratio"))
                .and_then(Json::as_f64),
            Some(0.2)
        );
        assert_eq!(
            back.get("otherData")
                .and_then(|o| o.get("clock"))
                .and_then(Json::as_str),
            Some("virtual")
        );
    }

    #[test]
    fn chrome_export_escapes_hostile_names() {
        let sink = TraceSink::recording(Clock::Wall);
        sink.span_at(
            "we\"ird\n\\name\t𝕊",
            "request",
            Track::new(0, 0),
            0,
            10,
            0,
            vec![(
                "note",
                Json::Str("quote \" backslash \\ nul \u{0} end".into()),
            )],
        );
        let trace = sink.drain().unwrap();
        let text = chrome_trace_string(&trace);
        let back = Json::parse(&text).expect("escaped output parses");
        let ev = &back.get("traceEvents").and_then(Json::as_array).unwrap()[0];
        assert_eq!(
            ev.get("name").and_then(Json::as_str),
            Some("we\"ird\n\\name\t𝕊")
        );
        assert_eq!(
            ev.get("args")
                .and_then(|a| a.get("note"))
                .and_then(Json::as_str),
            Some("quote \" backslash \\ nul \u{0} end")
        );
    }

    #[test]
    fn chrome_export_handles_large_traces() {
        let sink = TraceSink::with_capacity(Clock::Virtual, 1 << 15);
        for i in 0..10_000u64 {
            sink.span_at(
                format!("span{}", i % 7),
                "gpu",
                Track::new((i % 3) as u32, 0),
                i * 10,
                i * 10 + 9,
                0,
                vec![("i", Json::U64(i))],
            );
        }
        let trace = sink.drain().unwrap();
        let text = chrome_trace_string(&trace);
        let back = Json::parse(&text).expect("large trace parses");
        assert_eq!(
            back.get("traceEvents")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            10_000
        );
        // Deterministic: rendering twice gives identical bytes.
        assert_eq!(text, chrome_trace_string(&trace));
    }

    #[test]
    fn flamegraph_aggregates_self_time_by_stack() {
        let sink = TraceSink::recording(Clock::Virtual);
        let root = sink.span_at(
            "request",
            "request",
            Track::new(0, 0),
            0,
            100,
            0,
            Vec::new(),
        );
        sink.span_at(
            "queue",
            "request",
            Track::new(0, 0),
            0,
            30,
            root,
            Vec::new(),
        );
        sink.span_at(
            "denoise",
            "request",
            Track::new(0, 0),
            30,
            90,
            root,
            Vec::new(),
        );
        let out = flamegraph_collapsed(&sink.drain().unwrap());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            vec![
                "request 10", // 100 - (30 + 60) self time
                "request;denoise 60",
                "request;queue 30",
            ]
        );
    }

    #[test]
    fn flamegraph_sanitizes_separators() {
        let sink = TraceSink::recording(Clock::Wall);
        sink.span_at("a;b c", "x", Track::default(), 0, 5, 0, Vec::new());
        let out = flamegraph_collapsed(&sink.drain().unwrap());
        assert_eq!(out, "a_b_c 5\n");
    }
}
