//! Structured span tracing for the FlashPS serving stack.
//!
//! The paper's headline claim — a *bubble-free* pipeline that overlaps
//! cache loading with computation (§4.2, Fig. 9) — is a statement about
//! time: where each stream spends it and where it idles. This crate is
//! the observability layer that turns that claim from a cost-model
//! assertion into a measurement:
//!
//! - [`SpanRecord`] / [`EventRecord`] — structured records with ids,
//!   parent links, and nanosecond timestamps on named [`Track`]s.
//! - [`Clock`] — every collector is pinned to **one** clock domain:
//!   wall time for the real [`ThreadedServer`], virtual time for the
//!   discrete-event `ClusterSim`. Mixing domains in one trace is a
//!   bug this crate refuses at the API level.
//! - [`TraceSink`] — a cheap, cloneable handle. A disabled sink is a
//!   single `Option` check; instrumentation can stay in hot paths.
//! - [`Collector`] — per-thread bounded ring buffers with drop
//!   counters, so tracing never grows memory without bound and never
//!   blocks the traced thread on another thread's buffer.
//! - [`export`] — Chrome `chrome://tracing` JSON (via `fps-json`) and
//!   flamegraph collapsed-stack text.
//! - [`analysis`] — per-request critical-path extraction, the
//!   *bubble-fraction* metric (GPU idle while waiting on cache load),
//!   and queue-wait/service-time decomposition.
//!
//! [`ThreadedServer`]: https://chromium.googlesource.com/catapult/+/HEAD/tracing

pub mod analysis;
pub mod export;
pub mod sink;
pub mod span;

pub use analysis::{
    bubble_in_window, critical_path, critical_path_nanos, merged_intervals, percentile,
    stage_breakdown, BubbleReport, PathSegment, StageBreakdown,
};
pub use export::{chrome_trace_json, chrome_trace_string, flamegraph_collapsed};
pub use sink::{Collector, SpanGuard, Trace, TraceSink, DEFAULT_THREAD_CAPACITY};
pub use span::{Clock, EventRecord, SpanRecord, Track};
