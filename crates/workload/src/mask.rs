//! Pixel-space editing masks.
//!
//! Masks are binary bitmaps over the image; `true` marks a pixel to be
//! edited. Production masks have arbitrary shapes (§2.2), so three
//! generators are provided: axis-aligned rectangles, ellipses, and
//! irregular random-walk blobs. [`Mask::to_token_mask`] projects a
//! pixel mask onto the latent token grid (a token is masked when any of
//! its pixels is masked — the conservative rule that guarantees edited
//! pixels are always recomputed).

use rand::Rng;

/// Shape family for generated masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskShape {
    /// Axis-aligned rectangle.
    Rect,
    /// Axis-aligned ellipse.
    Ellipse,
    /// Irregular blob grown by random walk from a seed point.
    Blob,
}

/// A binary pixel mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    height: usize,
    width: usize,
    bits: Vec<bool>,
}

impl Mask {
    /// Creates an empty (all-unmasked) mask.
    pub fn empty(height: usize, width: usize) -> Self {
        Self {
            height,
            width,
            bits: vec![false; height * width],
        }
    }

    /// Mask height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Mask width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether pixel `(y, x)` is masked; out-of-bounds reads are
    /// unmasked.
    pub fn get(&self, y: usize, x: usize) -> bool {
        if y >= self.height || x >= self.width {
            return false;
        }
        self.bits[y * self.width + x]
    }

    /// Sets pixel `(y, x)`; out-of-bounds writes are ignored.
    pub fn set(&mut self, y: usize, x: usize, masked: bool) {
        if y < self.height && x < self.width {
            self.bits[y * self.width + x] = masked;
        }
    }

    /// Number of masked pixels.
    pub fn masked_pixels(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// The mask ratio: masked pixels / total pixels.
    pub fn ratio(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        self.masked_pixels() as f64 / self.bits.len() as f64
    }

    /// Projects onto a `token_h × token_w` latent grid: token `(ty,
    /// tx)` is masked when any pixel in its patch is masked. Returns a
    /// row-major token bitmap.
    pub fn to_token_mask(&self, token_h: usize, token_w: usize) -> Vec<bool> {
        let mut out = vec![false; token_h * token_w];
        if token_h == 0 || token_w == 0 || self.height == 0 || self.width == 0 {
            return out;
        }
        for y in 0..self.height {
            let ty = y * token_h / self.height;
            for x in 0..self.width {
                if self.bits[y * self.width + x] {
                    let tx = x * token_w / self.width;
                    out[ty * token_w + tx] = true;
                }
            }
        }
        out
    }

    /// Indices of masked tokens on a `token_h × token_w` grid.
    pub fn token_indices(&self, token_h: usize, token_w: usize) -> Vec<usize> {
        self.to_token_mask(token_h, token_w)
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(i))
            .collect()
    }

    /// Generates a mask of the given shape targeting `target_ratio` of
    /// the image area, centered at a random position.
    pub fn generate<R: Rng>(
        height: usize,
        width: usize,
        shape: MaskShape,
        target_ratio: f64,
        rng: &mut R,
    ) -> Self {
        let target_ratio = target_ratio.clamp(0.0, 1.0);
        let mut mask = Self::empty(height, width);
        if height == 0 || width == 0 || target_ratio == 0.0 {
            return mask;
        }
        let area = (target_ratio * (height * width) as f64).round().max(1.0);
        match shape {
            MaskShape::Rect => {
                // Aspect between 1:2 and 2:1.
                let aspect = rng.gen_range(0.5..2.0);
                let mh = ((area * aspect).sqrt().round() as usize).clamp(1, height);
                let mw = ((area / aspect).sqrt().round() as usize).clamp(1, width);
                let y0 = rng.gen_range(0..=height - mh);
                let x0 = rng.gen_range(0..=width - mw);
                for y in y0..y0 + mh {
                    for x in x0..x0 + mw {
                        mask.set(y, x, true);
                    }
                }
            }
            MaskShape::Ellipse => {
                let aspect = rng.gen_range(0.5..2.0);
                // πab = area.
                let a = ((area * aspect / std::f64::consts::PI).sqrt()).max(0.5);
                let b = (area / (std::f64::consts::PI * a)).max(0.5);
                let cy = rng.gen_range(0.0..height as f64);
                let cx = rng.gen_range(0.0..width as f64);
                for y in 0..height {
                    for x in 0..width {
                        let dy = (y as f64 + 0.5 - cy) / a;
                        let dx = (x as f64 + 0.5 - cx) / b;
                        if dy * dy + dx * dx <= 1.0 {
                            mask.set(y, x, true);
                        }
                    }
                }
            }
            MaskShape::Blob => {
                // Random walk that marks a plus-shaped neighbourhood
                // until enough pixels are covered.
                let mut y = rng.gen_range(0..height) as i64;
                let mut x = rng.gen_range(0..width) as i64;
                let target = area as usize;
                let mut marked = 0usize;
                let max_steps = target * 20 + 100;
                for _ in 0..max_steps {
                    for (dy, dx) in [(0i64, 0i64), (1, 0), (-1, 0), (0, 1), (0, -1)] {
                        let (py, px) = (y + dy, x + dx);
                        if py >= 0 && px >= 0 && (py as usize) < height && (px as usize) < width {
                            let (py, px) = (py as usize, px as usize);
                            if !mask.get(py, px) {
                                mask.set(py, px, true);
                                marked += 1;
                            }
                        }
                    }
                    if marked >= target {
                        break;
                    }
                    // Biased walk that stays in bounds.
                    let dir = rng.gen_range(0..4);
                    let (dy, dx) = [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)][dir];
                    y = (y + dy).clamp(0, height as i64 - 1);
                    x = (x + dx).clamp(0, width as i64 - 1);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn empty_mask_basics() {
        let m = Mask::empty(4, 8);
        assert_eq!(m.ratio(), 0.0);
        assert_eq!(m.masked_pixels(), 0);
        assert!(!m.get(0, 0));
        assert!(!m.get(100, 100), "out of bounds reads unmasked");
    }

    #[test]
    fn set_get_roundtrip_and_bounds() {
        let mut m = Mask::empty(4, 4);
        m.set(1, 2, true);
        assert!(m.get(1, 2));
        m.set(9, 9, true); // ignored
        assert_eq!(m.masked_pixels(), 1);
    }

    #[test]
    fn rect_mask_hits_target_ratio() {
        for target in [0.05, 0.2, 0.5] {
            let m = Mask::generate(64, 64, MaskShape::Rect, target, &mut rng(1));
            assert!(
                (m.ratio() - target).abs() < 0.1,
                "target {target} got {}",
                m.ratio()
            );
        }
    }

    #[test]
    fn ellipse_mask_roughly_hits_target() {
        let m = Mask::generate(64, 64, MaskShape::Ellipse, 0.3, &mut rng(2));
        // Ellipses can clip at image borders, so allow slack downward.
        assert!(m.ratio() > 0.05 && m.ratio() < 0.45, "got {}", m.ratio());
    }

    #[test]
    fn blob_mask_is_irregular_and_sized() {
        let m = Mask::generate(64, 64, MaskShape::Blob, 0.15, &mut rng(3));
        let r = m.ratio();
        assert!(r > 0.05 && r < 0.3, "got {r}");
        // Irregular: the bounding box is larger than the masked area.
        let (mut y0, mut y1, mut x0, mut x1) = (usize::MAX, 0, usize::MAX, 0);
        for y in 0..64 {
            for x in 0..64 {
                if m.get(y, x) {
                    y0 = y0.min(y);
                    y1 = y1.max(y);
                    x0 = x0.min(x);
                    x1 = x1.max(x);
                }
            }
        }
        let bbox = (y1 - y0 + 1) * (x1 - x0 + 1);
        assert!(m.masked_pixels() < bbox, "blob should not fill its bbox");
    }

    #[test]
    fn token_projection_is_conservative() {
        let mut m = Mask::empty(8, 8);
        m.set(3, 5, true); // Single pixel in patch (1, 2) of a 4×4 grid.
        let tokens = m.to_token_mask(4, 4);
        assert_eq!(tokens.iter().filter(|&&b| b).count(), 1);
        assert!(tokens[6]);
        assert_eq!(m.token_indices(4, 4), vec![6]);
    }

    #[test]
    fn full_mask_masks_every_token() {
        let mut m = Mask::empty(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                m.set(y, x, true);
            }
        }
        assert_eq!(m.ratio(), 1.0);
        assert!(m.to_token_mask(4, 4).iter().all(|&b| b));
    }

    #[test]
    fn degenerate_inputs() {
        let m = Mask::empty(0, 0);
        assert_eq!(m.ratio(), 0.0);
        assert!(m.to_token_mask(4, 4).iter().all(|&b| !b));
        let z = Mask::generate(16, 16, MaskShape::Rect, 0.0, &mut rng(4));
        assert_eq!(z.masked_pixels(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_token_mask_covers_all_masked_pixels(
            seed in 0u64..500,
            target in 0.01f64..0.6,
        ) {
            let m = Mask::generate(32, 32, MaskShape::Blob, target, &mut rng(seed));
            let tokens = m.to_token_mask(8, 8);
            for y in 0..32 {
                for x in 0..32 {
                    if m.get(y, x) {
                        let ty = y * 8 / 32;
                        let tx = x * 8 / 32;
                        prop_assert!(tokens[ty * 8 + tx], "pixel ({y},{x}) uncovered");
                    }
                }
            }
        }

        #[test]
        fn prop_ratio_bounded(seed in 0u64..200, target in 0.0f64..1.0) {
            let m = Mask::generate(24, 24, MaskShape::Rect, target, &mut rng(seed));
            prop_assert!((0.0..=1.0).contains(&m.ratio()));
        }
    }
}
