//! Workload generation for the FlashPS experiments.
//!
//! - [`mask`] — pixel-space editing masks of arbitrary shape
//!   (rectangles, ellipses, random-walk blobs) and their projection to
//!   latent-token masks.
//! - [`ratio`] — mask-ratio distributions matched to the paper's
//!   traces (Fig. 3): the production trace (mean ≈ 0.11), the public
//!   trace (mean ≈ 0.19), and VITON-HD (mean ≈ 0.35).
//! - [`trace`] — Poisson request traces with Zipf template popularity
//!   (§2.2: 970 templates reused ~35 000× each).
//! - [`benchmarks`] — synthetic analogues of the three quality
//!   benchmarks in Table 2 (InstructPix2Pix, VITON-HD, PIE-Bench).
//! - [`fleet`] — multi-tenant fleet workloads: per-tenant Zipf
//!   catalogues over disjoint template ranges, merged arrivals, and
//!   diurnal rate modulation via thinning.

pub mod benchmarks;
pub mod fleet;
pub mod mask;
pub mod ratio;
pub mod trace;

pub use benchmarks::{EditCase, QualityBenchmark};
pub use fleet::{DiurnalConfig, FleetTrace, FleetTraceConfig, TenantSpec};
pub use mask::{Mask, MaskShape};
pub use ratio::RatioDistribution;
pub use trace::{RequestSpec, Trace, TraceConfig};
