//! Synthetic analogues of the paper's quality benchmarks (Table 2).
//!
//! The paper evaluates image quality on InstructPix2Pix (prompt-driven
//! creative edits), VITON-HD (reference-based virtual try-on with
//! torso-shaped masks, mean ratio ≈ 0.35), and PIE-Bench (arbitrary
//! inpainting masks). The real datasets are unavailable here, so each
//! benchmark is replaced by a deterministic generator that reproduces
//! its *workload characteristics* — mask shape family, mask-ratio
//! distribution, and prompt variety — over procedural templates. Since
//! Table 2 measures each system's divergence from the Diffusers
//! reference on identical inputs, these analogues preserve the
//! comparison.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mask::{Mask, MaskShape};
use crate::ratio::RatioDistribution;

/// One editing case of a quality benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct EditCase {
    /// Seed of the procedural template image.
    pub template_seed: u64,
    /// Stable identifier of the template (for cache reuse).
    pub template_id: u64,
    /// The editing mask.
    pub mask: Mask,
    /// The text prompt.
    pub prompt: String,
    /// Per-request seed.
    pub seed: u64,
}

/// A named set of editing cases.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityBenchmark {
    /// Benchmark name.
    pub name: &'static str,
    /// The cases, in evaluation order.
    pub cases: Vec<EditCase>,
}

const EDIT_VERBS: [&str; 8] = [
    "replace with a red scarf",
    "add a golden pattern",
    "paint a blue sky",
    "turn into marble",
    "add autumn leaves",
    "make it metallic",
    "draw a small boat",
    "cover with flowers",
];

impl QualityBenchmark {
    /// InstructPix2Pix-like: prompt-driven edits with rectangle or blob
    /// masks drawn from the public-trace ratio distribution.
    pub fn instruct_pix2pix_like(cases: usize, height: usize, width: usize, seed: u64) -> Self {
        Self::build(
            "instructpix2pix-like",
            cases,
            height,
            width,
            seed ^ 0x1A2B,
            RatioDistribution::PublicTrace,
            &[MaskShape::Rect, MaskShape::Blob],
            /* shared_templates = */ false,
        )
    }

    /// VITON-HD-like: reference-based try-on with a centered
    /// torso-shaped (ellipse) mask at ratio ≈ 0.35 and heavy template
    /// reuse.
    pub fn viton_hd_like(cases: usize, height: usize, width: usize, seed: u64) -> Self {
        Self::build(
            "viton-hd-like",
            cases,
            height,
            width,
            seed ^ 0x7170,
            RatioDistribution::VitonHd,
            &[MaskShape::Ellipse, MaskShape::Rect],
            /* shared_templates = */ true,
        )
    }

    /// PIE-Bench-like: arbitrary-shape inpainting masks over diverse
    /// templates.
    pub fn pie_bench_like(cases: usize, height: usize, width: usize, seed: u64) -> Self {
        Self::build(
            "pie-bench-like",
            cases,
            height,
            width,
            seed ^ 0x71E,
            RatioDistribution::ProductionTrace,
            &[MaskShape::Blob, MaskShape::Ellipse, MaskShape::Rect],
            /* shared_templates = */ false,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        name: &'static str,
        cases: usize,
        height: usize,
        width: usize,
        seed: u64,
        ratios: RatioDistribution,
        shapes: &[MaskShape],
        shared_templates: bool,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let template_pool = if shared_templates {
            2.max(cases / 8)
        } else {
            cases.max(1)
        };
        let cases = (0..cases)
            .map(|i| {
                let template_id = if shared_templates {
                    (i % template_pool) as u64
                } else {
                    i as u64
                };
                let template_seed = seed ^ (template_id.wrapping_mul(0x9E37_79B9));
                let ratio = ratios.sample(&mut rng);
                let shape = shapes[rng.gen_range(0..shapes.len())];
                let mask = Mask::generate(height, width, shape, ratio, &mut rng);
                let prompt = EDIT_VERBS[rng.gen_range(0..EDIT_VERBS.len())].to_string();
                EditCase {
                    template_seed,
                    template_id,
                    mask,
                    prompt,
                    seed: rng.gen(),
                }
            })
            .collect();
        Self { name, cases }
    }

    /// Mean pixel mask ratio across cases; 0.0 when empty.
    pub fn mean_mask_ratio(&self) -> f64 {
        if self.cases.is_empty() {
            return 0.0;
        }
        self.cases.iter().map(|c| c.mask.ratio()).sum::<f64>() / self.cases.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_are_deterministic() {
        let a = QualityBenchmark::pie_bench_like(10, 32, 32, 1);
        let b = QualityBenchmark::pie_bench_like(10, 32, 32, 1);
        assert_eq!(a, b);
        let c = QualityBenchmark::pie_bench_like(10, 32, 32, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn viton_mask_ratios_are_larger() {
        let viton = QualityBenchmark::viton_hd_like(60, 48, 48, 3);
        let pie = QualityBenchmark::pie_bench_like(60, 48, 48, 3);
        assert!(
            viton.mean_mask_ratio() > pie.mean_mask_ratio(),
            "viton {} vs pie {}",
            viton.mean_mask_ratio(),
            pie.mean_mask_ratio()
        );
        assert!((viton.mean_mask_ratio() - 0.35).abs() < 0.12);
    }

    #[test]
    fn viton_reuses_templates() {
        let b = QualityBenchmark::viton_hd_like(32, 32, 32, 5);
        let distinct: std::collections::HashSet<u64> =
            b.cases.iter().map(|c| c.template_id).collect();
        assert!(distinct.len() < b.cases.len() / 2, "expected heavy reuse");
        // Same template id ⇒ same template seed.
        for a in &b.cases {
            for c in &b.cases {
                if a.template_id == c.template_id {
                    assert_eq!(a.template_seed, c.template_seed);
                }
            }
        }
    }

    #[test]
    fn instructpix2pix_uses_distinct_templates() {
        let b = QualityBenchmark::instruct_pix2pix_like(12, 32, 32, 7);
        let distinct: std::collections::HashSet<u64> =
            b.cases.iter().map(|c| c.template_id).collect();
        assert_eq!(distinct.len(), 12);
        assert!(b.cases.iter().all(|c| !c.prompt.is_empty()));
    }

    #[test]
    fn empty_benchmark() {
        let b = QualityBenchmark::pie_bench_like(0, 32, 32, 1);
        assert!(b.cases.is_empty());
        assert_eq!(b.mean_mask_ratio(), 0.0);
    }

    #[test]
    fn masks_match_requested_dimensions() {
        let b = QualityBenchmark::viton_hd_like(5, 40, 24, 9);
        for c in &b.cases {
            assert_eq!(c.mask.height(), 40);
            assert_eq!(c.mask.width(), 24);
            assert!(c.mask.masked_pixels() > 0);
        }
    }
}
