//! Multi-tenant fleet workloads: per-tenant Zipf template popularity
//! over disjoint template spaces, merged into one arrival-ordered
//! trace with optional diurnal rate modulation.
//!
//! The paper's production service runs many edit products against one
//! fleet (§2.2: 970 templates, 34 M images); each product has its own
//! template catalogue and popularity skew, and aggregate traffic
//! follows a day/night cycle. This module generates that shape:
//! tenants get disjoint `template_id` ranges (so cross-tenant requests
//! can never share cached activations), per-tenant Zipf skew, and a
//! sinusoidal diurnal envelope applied by thinning — the standard
//! exact sampler for non-homogeneous Poisson processes.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use fps_simtime::{PoissonArrivals, SimTime};

use crate::ratio::RatioDistribution;
use crate::trace::{MaskShapeSpec, RequestSpec, Trace, ZipfSampler};

/// One tenant's traffic shape.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant label, for reports.
    pub name: String,
    /// Mean arrival rate, requests per second.
    pub rps: f64,
    /// Size of this tenant's template catalogue.
    pub num_templates: usize,
    /// Zipf skew of template popularity (`0.0` = uniform).
    pub zipf_s: f64,
    /// Mask-ratio distribution of this tenant's edits.
    pub ratio_dist: RatioDistribution,
}

impl TenantSpec {
    /// A tenant with the production-trace ratio distribution and
    /// Zipf(1.0) popularity.
    pub fn new(name: impl Into<String>, rps: f64, num_templates: usize) -> Self {
        Self {
            name: name.into(),
            rps,
            num_templates,
            zipf_s: 1.0,
            ratio_dist: RatioDistribution::ProductionTrace,
        }
    }
}

/// Sinusoidal diurnal modulation of the arrival rate:
/// `rate(t) = rps × (1 + amplitude · sin(2π(t/period + phase)))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalConfig {
    /// Cycle length in seconds (86 400 for a real day; shorter in
    /// simulations).
    pub period_secs: f64,
    /// Peak-to-mean rate swing, in `[0, 1)`.
    pub amplitude: f64,
    /// Phase offset in cycles (`0.25` starts at the peak).
    pub phase: f64,
}

impl DiurnalConfig {
    /// The instantaneous rate multiplier at time `t` seconds.
    pub fn multiplier(&self, t_secs: f64) -> f64 {
        let a = self.amplitude.clamp(0.0, 0.999);
        1.0 + a
            * (core::f64::consts::TAU * (t_secs / self.period_secs.max(1e-9) + self.phase)).sin()
    }
}

/// Parameters of a fleet trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTraceConfig {
    /// The tenants sharing the fleet.
    pub tenants: Vec<TenantSpec>,
    /// Trace duration in seconds of virtual time.
    pub duration_secs: f64,
    /// Optional diurnal envelope applied to every tenant.
    pub diurnal: Option<DiurnalConfig>,
    /// Master seed.
    pub seed: u64,
}

impl Default for FleetTraceConfig {
    fn default() -> Self {
        Self {
            tenants: vec![
                TenantSpec::new("product-a", 2.0, 32),
                TenantSpec::new("product-b", 1.0, 16),
            ],
            duration_secs: 120.0,
            diurnal: None,
            seed: 0xF1EE7,
        }
    }
}

/// A merged multi-tenant trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTrace {
    /// Requests in arrival order with fleet-monotone ids. Template ids
    /// are globally unique across tenants (disjoint ranges).
    pub trace: Trace,
    /// `tenant_of[i]` is the tenant index of `trace.requests[i]`.
    pub tenant_of: Vec<u32>,
    /// First template id of each tenant's range (`template_base[t] ..
    /// template_base[t] + tenants[t].num_templates`).
    pub template_base: Vec<u64>,
}

impl FleetTrace {
    /// Generates a fleet trace. Tenants with non-positive rate or an
    /// empty catalogue contribute nothing; the result is deterministic
    /// in the seed.
    pub fn generate(config: &FleetTraceConfig) -> Self {
        let horizon = SimTime::from_nanos((config.duration_secs.max(0.0) * 1e9) as u64);
        // Disjoint template id spaces: tenant t's templates start where
        // tenant t-1's end.
        let mut template_base = Vec::with_capacity(config.tenants.len());
        let mut next_base = 0u64;
        for t in &config.tenants {
            template_base.push(next_base);
            next_base += t.num_templates as u64;
        }
        let mut tagged: Vec<(u32, RequestSpec)> = Vec::new();
        for (ti, tenant) in config.tenants.iter().enumerate() {
            if tenant.rps <= 0.0 || tenant.num_templates == 0 {
                continue;
            }
            // Per-tenant derived seeds keep tenants independent: adding
            // a tenant does not perturb the others' streams.
            let tenant_seed = config.seed ^ (0x7E4A_u64).wrapping_mul(ti as u64 + 1);
            let arrivals = diurnal_arrivals(tenant.rps, horizon, config.diurnal, tenant_seed);
            let mut body_rng = StdRng::seed_from_u64(tenant_seed ^ 0xB0D1);
            let zipf = ZipfSampler::new(tenant.num_templates, tenant.zipf_s);
            for at in arrivals {
                let template_id = template_base[ti] + zipf.sample(&mut body_rng) as u64;
                let mask_ratio = tenant.ratio_dist.sample(&mut body_rng);
                let mask_shape = match body_rng.gen_range(0..3) {
                    0 => MaskShapeSpec::Rect,
                    1 => MaskShapeSpec::Ellipse,
                    _ => MaskShapeSpec::Blob,
                };
                tagged.push((
                    ti as u32,
                    RequestSpec {
                        id: 0, // assigned after the merge sort
                        arrival_ns: at.as_nanos(),
                        template_id,
                        mask_ratio,
                        mask_shape,
                        seed: body_rng.next_u64(),
                    },
                ));
            }
        }
        // Merge tenants into one arrival-ordered stream. Ties break by
        // tenant index so the merge is deterministic.
        tagged.sort_by_key(|(ti, r)| (r.arrival_ns, *ti));
        let mut tenant_of = Vec::with_capacity(tagged.len());
        let mut requests = Vec::with_capacity(tagged.len());
        for (id, (ti, mut r)) in tagged.into_iter().enumerate() {
            r.id = id as u64;
            tenant_of.push(ti);
            requests.push(r);
        }
        Self {
            trace: Trace { requests },
            tenant_of,
            template_base,
        }
    }

    /// Total distinct templates across all tenants.
    pub fn total_templates(&self, config: &FleetTraceConfig) -> usize {
        config.tenants.iter().map(|t| t.num_templates).sum()
    }
}

/// Samples arrivals for one tenant: homogeneous Poisson at the peak
/// rate, thinned by the instantaneous diurnal multiplier. Thinning is
/// exact for non-homogeneous Poisson processes as long as the proposal
/// rate dominates the true rate everywhere — hence the `1 + amplitude`
/// peak.
fn diurnal_arrivals(
    rps: f64,
    horizon: SimTime,
    diurnal: Option<DiurnalConfig>,
    seed: u64,
) -> Vec<SimTime> {
    let arrival_rng = StdRng::seed_from_u64(seed ^ 0xA331);
    let Some(d) = diurnal else {
        return match PoissonArrivals::new(arrival_rng, rps) {
            Some(mut p) => p.take_until(horizon),
            None => Vec::new(),
        };
    };
    let amplitude = d.amplitude.clamp(0.0, 0.999);
    let peak = rps * (1.0 + amplitude);
    let Some(mut proposals) = PoissonArrivals::new(arrival_rng, peak) else {
        return Vec::new();
    };
    let mut thin_rng = StdRng::seed_from_u64(seed ^ 0x7417);
    proposals
        .take_until(horizon)
        .into_iter()
        .filter(|at| {
            let accept = rps * d.multiplier(at.as_secs_f64()) / peak;
            thin_rng.gen_range(0.0..1.0) < accept
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_arrival_ordered() {
        let cfg = FleetTraceConfig::default();
        let a = FleetTrace::generate(&cfg);
        let b = FleetTrace::generate(&cfg);
        assert_eq!(a, b, "same seed, same fleet trace");
        assert!(!a.trace.is_empty());
        for (i, w) in a.trace.requests.windows(2).enumerate() {
            assert!(w[1].arrival_ns >= w[0].arrival_ns, "disorder at {i}");
        }
        // Ids are fleet-monotone after the merge.
        for (i, r) in a.trace.requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        assert_eq!(a.tenant_of.len(), a.trace.len());
    }

    #[test]
    fn tenants_use_disjoint_template_ranges() {
        let cfg = FleetTraceConfig::default();
        let f = FleetTrace::generate(&cfg);
        assert_eq!(f.template_base, vec![0, 32]);
        for (r, &ti) in f.trace.requests.iter().zip(&f.tenant_of) {
            let lo = f.template_base[ti as usize];
            let hi = lo + cfg.tenants[ti as usize].num_templates as u64;
            assert!(
                (lo..hi).contains(&r.template_id),
                "tenant {ti} template {} outside [{lo}, {hi})",
                r.template_id
            );
        }
        assert_eq!(f.total_templates(&cfg), 48);
    }

    #[test]
    fn tenant_rates_are_respected() {
        let cfg = FleetTraceConfig {
            tenants: vec![
                TenantSpec::new("big", 8.0, 8),
                TenantSpec::new("small", 2.0, 8),
            ],
            duration_secs: 400.0,
            diurnal: None,
            seed: 1,
        };
        let f = FleetTrace::generate(&cfg);
        let counts = f.tenant_of.iter().fold([0usize; 2], |mut acc, &t| {
            acc[t as usize] += 1;
            acc
        });
        let r0 = counts[0] as f64 / 400.0;
        let r1 = counts[1] as f64 / 400.0;
        assert!((r0 - 8.0).abs() < 0.8, "big tenant rate {r0}");
        assert!((r1 - 2.0).abs() < 0.4, "small tenant rate {r1}");
    }

    #[test]
    fn diurnal_modulation_shifts_load_between_halves() {
        // One full cycle with phase 0.25: first half peaks, second half
        // troughs.
        let cfg = FleetTraceConfig {
            tenants: vec![TenantSpec::new("t", 10.0, 8)],
            duration_secs: 1000.0,
            diurnal: Some(DiurnalConfig {
                period_secs: 1000.0,
                amplitude: 0.8,
                phase: 0.0,
            }),
            seed: 7,
        };
        let f = FleetTrace::generate(&cfg);
        let half = 500_000_000_000u64;
        let first = f
            .trace
            .requests
            .iter()
            .filter(|r| r.arrival_ns < half)
            .count();
        let second = f.trace.len() - first;
        assert!(
            first as f64 > second as f64 * 1.5,
            "peak half {first} should dominate trough half {second}"
        );
        // Mean rate stays near the configured rps (sin integrates to
        // zero over a full cycle).
        let mean = f.trace.len() as f64 / 1000.0;
        assert!((mean - 10.0).abs() < 1.0, "mean rate {mean}");
    }

    #[test]
    fn degenerate_tenants_contribute_nothing() {
        let cfg = FleetTraceConfig {
            tenants: vec![
                TenantSpec::new("dead", 0.0, 8),
                TenantSpec::new("empty", 5.0, 0),
                TenantSpec::new("live", 1.0, 4),
            ],
            duration_secs: 60.0,
            diurnal: None,
            seed: 3,
        };
        let f = FleetTrace::generate(&cfg);
        assert!(!f.trace.is_empty());
        assert!(f.tenant_of.iter().all(|&t| t == 2));
        // Template bases still account for the dead tenants' ranges.
        assert_eq!(f.template_base, vec![0, 8, 8]);
    }

    #[test]
    fn adding_a_tenant_preserves_existing_streams() {
        let one = FleetTraceConfig {
            tenants: vec![TenantSpec::new("a", 2.0, 8)],
            duration_secs: 60.0,
            diurnal: None,
            seed: 11,
        };
        let two = FleetTraceConfig {
            tenants: vec![TenantSpec::new("a", 2.0, 8), TenantSpec::new("b", 2.0, 8)],
            ..one.clone()
        };
        let fa = FleetTrace::generate(&one);
        let fb = FleetTrace::generate(&two);
        let a_only: Vec<(u64, u64, u64)> = fb
            .trace
            .requests
            .iter()
            .zip(&fb.tenant_of)
            .filter(|(_, &t)| t == 0)
            .map(|(r, _)| (r.arrival_ns, r.template_id, r.seed))
            .collect();
        let expect: Vec<(u64, u64, u64)> = fa
            .trace
            .requests
            .iter()
            .map(|r| (r.arrival_ns, r.template_id, r.seed))
            .collect();
        assert_eq!(a_only, expect, "tenant a's stream changed when b joined");
    }
}
