//! Request traces: Poisson arrivals, trace-matched mask ratios, and
//! Zipf template popularity.

use fps_json::{required, Json, ToJson};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use fps_simtime::{PoissonArrivals, SimTime};

use crate::mask::MaskShape;
use crate::ratio::RatioDistribution;

/// One request in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpec {
    /// Monotone request id.
    pub id: u64,
    /// Arrival instant (nanoseconds of virtual time).
    pub arrival_ns: u64,
    /// Template the request edits.
    pub template_id: u64,
    /// Mask ratio of the edit.
    pub mask_ratio: f64,
    /// Shape family of the mask.
    pub mask_shape: MaskShapeSpec,
    /// Seed for per-request randomness (mask placement, init noise).
    pub seed: u64,
}

impl RequestSpec {
    /// Arrival as a [`SimTime`].
    pub fn arrival(&self) -> SimTime {
        SimTime::from_nanos(self.arrival_ns)
    }

    fn from_json(value: &Json) -> core::result::Result<Self, String> {
        let field_u64 = |key: &str| {
            required(value, key)?
                .as_u64()
                .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
        };
        Ok(Self {
            id: field_u64("id")?,
            arrival_ns: field_u64("arrival_ns")?,
            template_id: field_u64("template_id")?,
            mask_ratio: required(value, "mask_ratio")?
                .as_f64()
                .ok_or_else(|| "field `mask_ratio` is not a number".to_string())?,
            mask_shape: MaskShapeSpec::from_json(required(value, "mask_shape")?)?,
            seed: field_u64("seed")?,
        })
    }
}

impl ToJson for RequestSpec {
    fn to_json(&self) -> Json {
        Json::object()
            .with("id", self.id)
            .with("arrival_ns", self.arrival_ns)
            .with("template_id", self.template_id)
            .with("mask_ratio", self.mask_ratio)
            .with("mask_shape", self.mask_shape.name())
            .with("seed", self.seed)
    }
}

/// Serializable mirror of [`MaskShape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskShapeSpec {
    /// Axis-aligned rectangle.
    Rect,
    /// Axis-aligned ellipse.
    Ellipse,
    /// Irregular blob.
    Blob,
}

impl MaskShapeSpec {
    /// Variant name, used as the JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            Self::Rect => "Rect",
            Self::Ellipse => "Ellipse",
            Self::Blob => "Blob",
        }
    }

    fn from_json(value: &Json) -> core::result::Result<Self, String> {
        match value.as_str() {
            Some("Rect") => Ok(Self::Rect),
            Some("Ellipse") => Ok(Self::Ellipse),
            Some("Blob") => Ok(Self::Blob),
            Some(other) => Err(format!("unknown mask shape `{other}`")),
            None => Err("field `mask_shape` is not a string".to_string()),
        }
    }
}

impl From<MaskShapeSpec> for MaskShape {
    fn from(s: MaskShapeSpec) -> Self {
        match s {
            MaskShapeSpec::Rect => MaskShape::Rect,
            MaskShapeSpec::Ellipse => MaskShape::Ellipse,
            MaskShapeSpec::Blob => MaskShape::Blob,
        }
    }
}

/// Arrival process shape.
///
/// Online traffic is bursty (§4.4 cites [23, 63]); the bursty variant
/// is a Markov-modulated Poisson process alternating between an
/// elevated-rate burst phase and a quiet phase, with the configured
/// mean rate preserved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals.
    Poisson,
    /// Two-phase Markov-modulated Poisson arrivals.
    Bursty {
        /// Rate multiplier during bursts (> 1).
        burst_factor: f64,
        /// Fraction of time spent in the burst phase (in `(0, 1)`,
        /// with `burst_factor * burst_fraction < 1` so the quiet rate
        /// stays non-negative).
        burst_fraction: f64,
        /// Mean burst-phase duration in seconds.
        mean_burst_secs: f64,
    },
}

impl ArrivalProcess {
    /// A moderately bursty default: 3× rate for ~30% of the time in
    /// ~20 s bursts.
    pub fn bursty_default() -> Self {
        Self::Bursty {
            burst_factor: 3.0,
            burst_fraction: 0.3,
            mean_burst_secs: 20.0,
        }
    }
}

/// Parameters of a generated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Mean arrival rate, requests per second.
    pub rps: f64,
    /// Shape of the arrival process.
    pub arrivals: ArrivalProcess,
    /// Trace duration in seconds of virtual time.
    pub duration_secs: f64,
    /// Mask-ratio distribution.
    pub ratio_dist: RatioDistribution,
    /// Number of distinct templates (the paper's production service
    /// used 970 templates for 34 M images).
    pub num_templates: usize,
    /// Zipf skew of template popularity (`0.0` = uniform).
    pub zipf_s: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            rps: 1.0,
            arrivals: ArrivalProcess::Poisson,
            duration_secs: 60.0,
            ratio_dist: RatioDistribution::ProductionTrace,
            num_templates: 16,
            zipf_s: 1.0,
            seed: 0xACE,
        }
    }
}

/// A generated request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Requests in arrival order.
    pub requests: Vec<RequestSpec>,
}

impl Trace {
    /// Generates a trace from a config. Returns an empty trace for a
    /// non-positive rate or duration.
    pub fn generate(config: &TraceConfig) -> Self {
        let mut requests = Vec::new();
        let horizon = SimTime::from_nanos((config.duration_secs.max(0.0) * 1e9) as u64);
        let mut body_rng = StdRng::seed_from_u64(config.seed ^ 0xB0D1);
        let arrival_times = match config.arrivals {
            ArrivalProcess::Poisson => {
                let arrival_rng = StdRng::seed_from_u64(config.seed ^ 0xA331);
                match PoissonArrivals::new(arrival_rng, config.rps) {
                    Some(mut p) => p.take_until(horizon),
                    None => return Self { requests },
                }
            }
            ArrivalProcess::Bursty {
                burst_factor,
                burst_fraction,
                mean_burst_secs,
            } => bursty_arrivals(
                config.rps,
                horizon,
                burst_factor,
                burst_fraction,
                mean_burst_secs,
                config.seed ^ 0xA331,
            ),
        };
        let zipf = ZipfSampler::new(config.num_templates.max(1), config.zipf_s);
        for (id, at) in arrival_times.into_iter().enumerate() {
            let template_id = zipf.sample(&mut body_rng) as u64;
            let mask_ratio = config.ratio_dist.sample(&mut body_rng);
            let mask_shape = match body_rng.gen_range(0..3) {
                0 => MaskShapeSpec::Rect,
                1 => MaskShapeSpec::Ellipse,
                _ => MaskShapeSpec::Blob,
            };
            requests.push(RequestSpec {
                id: id as u64,
                arrival_ns: at.as_nanos(),
                template_id,
                mask_ratio,
                mask_shape,
                seed: body_rng.next_u64(),
            });
        }
        Self { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Serializes the trace to JSON (for replaying recorded workloads
    /// across experiments or tools).
    ///
    /// # Errors
    ///
    /// Returns the serializer's message on failure (should not happen
    /// for well-formed traces).
    pub fn to_json(&self) -> core::result::Result<String, String> {
        Ok(self.requests.to_json().to_string_compact())
    }

    /// Deserializes a trace previously produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the parser's message for malformed input.
    pub fn from_json(json: &str) -> core::result::Result<Self, String> {
        let parsed = Json::parse(json)?;
        let items = parsed
            .as_array()
            .ok_or_else(|| "trace JSON is not an array".to_string())?;
        let requests = items
            .iter()
            .map(RequestSpec::from_json)
            .collect::<core::result::Result<Vec<_>, _>>()?;
        Ok(Self { requests })
    }

    /// Mean mask ratio across the trace; 0.0 when empty.
    pub fn mean_mask_ratio(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests.iter().map(|r| r.mask_ratio).sum::<f64>() / self.requests.len() as f64
    }
}

/// Generates Markov-modulated Poisson arrivals: exponential-duration
/// burst phases at `burst_factor × rps` alternate with quiet phases at
/// the compensating lower rate, preserving the mean rate.
fn bursty_arrivals(
    rps: f64,
    horizon: SimTime,
    burst_factor: f64,
    burst_fraction: f64,
    mean_burst_secs: f64,
    seed: u64,
) -> Vec<SimTime> {
    if rps <= 0.0 || !rps.is_finite() || burst_factor <= 1.0 {
        return Vec::new();
    }
    let f = burst_fraction.clamp(0.01, 0.99);
    let quiet_rate = (rps * (1.0 - burst_factor * f) / (1.0 - f)).max(rps * 0.01);
    let burst_rate = rps * burst_factor;
    let mean_burst = mean_burst_secs.max(0.1);
    let mean_quiet = mean_burst * (1.0 - f) / f;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut now = 0.0f64;
    let mut in_burst = false;
    let horizon_s = horizon.as_secs_f64();
    while now < horizon_s {
        let mean_phase = if in_burst { mean_burst } else { mean_quiet };
        let u: f64 = rng.gen_range(1e-12..1.0);
        let phase_len = -u.ln() * mean_phase;
        let phase_end = (now + phase_len).min(horizon_s);
        let rate = if in_burst { burst_rate } else { quiet_rate };
        let mut t = now;
        loop {
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -u.ln() / rate;
            if t >= phase_end {
                break;
            }
            out.push(SimTime::from_nanos((t * 1e9) as u64));
        }
        now = phase_end;
        in_burst = !in_burst;
    }
    out
}

/// Inverse-CDF Zipf sampler over `{0, …, n-1}` with skew `s`.
#[derive(Debug, Clone)]
pub(crate) struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    pub(crate) fn new(n: usize, s: f64) -> Self {
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s.max(0.0))).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Self { cdf: weights }
    }

    pub(crate) fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_rate_and_determinism() {
        let cfg = TraceConfig {
            rps: 5.0,
            duration_secs: 200.0,
            ..Default::default()
        };
        let t1 = Trace::generate(&cfg);
        let t2 = Trace::generate(&cfg);
        assert_eq!(t1, t2, "same seed, same trace");
        let empirical = t1.len() as f64 / 200.0;
        assert!(
            (empirical - 5.0).abs() < 0.5,
            "empirical rate {empirical} far from 5"
        );
        // Arrival order and horizon.
        for w in t1.requests.windows(2) {
            assert!(w[1].arrival_ns >= w[0].arrival_ns);
        }
        assert!(t1.requests.iter().all(|r| r.arrival_ns < 200_000_000_000));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Trace::generate(&TraceConfig::default());
        let b = Trace::generate(&TraceConfig {
            seed: 999,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn mean_mask_ratio_tracks_distribution() {
        let cfg = TraceConfig {
            rps: 50.0,
            duration_secs: 400.0,
            ratio_dist: RatioDistribution::PublicTrace,
            ..Default::default()
        };
        let t = Trace::generate(&cfg);
        assert!((t.mean_mask_ratio() - 0.19).abs() < 0.03);
    }

    #[test]
    fn zipf_concentrates_on_popular_templates() {
        let cfg = TraceConfig {
            rps: 20.0,
            duration_secs: 500.0,
            num_templates: 50,
            zipf_s: 1.2,
            ..Default::default()
        };
        let t = Trace::generate(&cfg);
        let mut counts = vec![0usize; 50];
        for r in &t.requests {
            counts[r.template_id as usize] += 1;
        }
        // The most popular template dominates the median one.
        let max = *counts.iter().max().unwrap();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let median = sorted[25];
        assert!(max > median * 3, "max {max} median {median}");
        assert!(t.requests.iter().all(|r| (r.template_id as usize) < 50));
    }

    #[test]
    fn uniform_popularity_when_skew_zero() {
        let cfg = TraceConfig {
            rps: 50.0,
            duration_secs: 200.0,
            num_templates: 4,
            zipf_s: 0.0,
            ..Default::default()
        };
        let t = Trace::generate(&cfg);
        let mut counts = vec![0usize; 4];
        for r in &t.requests {
            counts[r.template_id as usize] += 1;
        }
        let total: usize = counts.iter().sum();
        for &c in &counts {
            let frac = c as f64 / total as f64;
            assert!((frac - 0.25).abs() < 0.05, "frac {frac}");
        }
    }

    #[test]
    fn degenerate_configs_yield_empty_traces() {
        let t = Trace::generate(&TraceConfig {
            rps: 0.0,
            ..Default::default()
        });
        assert!(t.is_empty());
        assert_eq!(t.mean_mask_ratio(), 0.0);
        let t = Trace::generate(&TraceConfig {
            duration_secs: -5.0,
            ..Default::default()
        });
        assert!(t.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::generate(&TraceConfig {
            rps: 3.0,
            duration_secs: 20.0,
            ..Default::default()
        });
        let json = t.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(t, back);
        assert!(Trace::from_json("not json").is_err());
        assert!(Trace::from_json("[{\"id\": 1}]").is_err(), "missing fields");
    }

    #[test]
    fn bursty_trace_preserves_mean_rate_but_clumps() {
        let base = TraceConfig {
            rps: 2.0,
            duration_secs: 2000.0,
            ..Default::default()
        };
        let bursty = TraceConfig {
            arrivals: ArrivalProcess::bursty_default(),
            ..base.clone()
        };
        let tp = Trace::generate(&base);
        let tb = Trace::generate(&bursty);
        let rate_p = tp.len() as f64 / 2000.0;
        let rate_b = tb.len() as f64 / 2000.0;
        assert!(
            (rate_b - rate_p).abs() / rate_p < 0.15,
            "{rate_p} vs {rate_b}"
        );
        // Burstiness: variance of per-window counts well above Poisson.
        let window_counts = |t: &Trace| -> Vec<f64> {
            let mut counts = vec![0f64; 200];
            for r in &t.requests {
                let w = ((r.arrival_ns as f64 / 1e9) / 10.0) as usize;
                if w < 200 {
                    counts[w] += 1.0;
                }
            }
            counts
        };
        let dispersion = |c: &[f64]| {
            let mean = c.iter().sum::<f64>() / c.len() as f64;
            let var = c.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / c.len() as f64;
            var / mean.max(1e-9)
        };
        let d_p = dispersion(&window_counts(&tp));
        let d_b = dispersion(&window_counts(&tb));
        assert!(
            d_b > d_p * 2.0,
            "bursty dispersion {d_b} should far exceed Poisson {d_p}"
        );
        // Arrivals stay sorted and in-horizon.
        for w in tb.requests.windows(2) {
            assert!(w[1].arrival_ns >= w[0].arrival_ns);
        }
    }

    #[test]
    fn arrival_accessor_matches_raw_nanos() {
        let cfg = TraceConfig {
            rps: 2.0,
            duration_secs: 5.0,
            ..Default::default()
        };
        let t = Trace::generate(&cfg);
        for r in &t.requests {
            assert_eq!(r.arrival().as_nanos(), r.arrival_ns);
        }
    }
}
