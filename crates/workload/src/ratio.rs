//! Mask-ratio distributions matched to the paper's traces (Fig. 3).
//!
//! All three empirical distributions are modelled as clipped
//! log-normals: masks are "generally small" with a long right tail
//! (§2.2), which a log-normal captures with two parameters. The
//! parameters below reproduce the reported means — 0.11 for the
//! production trace, 0.19 for the public trace \[38\], 0.35 for
//! VITON-HD — with realistic spread.

use rand::Rng;

/// Bounds every sampled ratio is clipped into: a mask is never empty
/// and never covers the whole image.
const MIN_RATIO: f64 = 0.01;
const MAX_RATIO: f64 = 0.95;

/// A mask-ratio distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RatioDistribution {
    /// The paper's production trace: mean ≈ 0.11, heavy right tail.
    ProductionTrace,
    /// The public trace of \[38\]: mean ≈ 0.19.
    PublicTrace,
    /// VITON-HD virtual try-on: mean ≈ 0.35, tighter spread.
    VitonHd,
    /// Uniform over `[lo, hi]` (for controlled sweeps).
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// A constant ratio (kernel-level microbenchmarks, Fig. 15).
    Fixed(f64),
}

impl RatioDistribution {
    /// Log-normal parameters `(μ, σ)` for the trace-backed variants.
    fn lognormal_params(self) -> Option<(f64, f64)> {
        match self {
            // mean = exp(μ + σ²/2); chosen to land on the reported
            // means after clipping.
            Self::ProductionTrace => Some(((0.080f64).ln(), 0.80)),
            Self::PublicTrace => Some(((0.140f64).ln(), 0.80)),
            Self::VitonHd => Some(((0.330f64).ln(), 0.35)),
            _ => None,
        }
    }

    /// Draws one mask ratio.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            Self::Fixed(v) => v.clamp(MIN_RATIO, MAX_RATIO),
            Self::Uniform { lo, hi } => {
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                rng.gen_range(lo..=hi).clamp(MIN_RATIO, MAX_RATIO)
            }
            _ => {
                let (mu, sigma) = self.lognormal_params().expect("trace variant");
                // Box-Muller normal from two uniforms.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mu + sigma * z).exp().clamp(MIN_RATIO, MAX_RATIO)
            }
        }
    }

    /// The mean the distribution is calibrated to (for the trace-backed
    /// variants) or the analytic mean otherwise.
    pub fn nominal_mean(&self) -> f64 {
        match *self {
            Self::ProductionTrace => 0.11,
            Self::PublicTrace => 0.19,
            Self::VitonHd => 0.35,
            Self::Uniform { lo, hi } => (lo + hi) / 2.0,
            Self::Fixed(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean(dist: RatioDistribution, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn trace_means_match_the_paper() {
        for (dist, expect) in [
            (RatioDistribution::ProductionTrace, 0.11),
            (RatioDistribution::PublicTrace, 0.19),
            (RatioDistribution::VitonHd, 0.35),
        ] {
            let mean = empirical_mean(dist, 100_000, 42);
            assert!(
                (mean - expect).abs() < 0.03,
                "{dist:?}: mean {mean} vs expected {expect}"
            );
        }
    }

    #[test]
    fn samples_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for dist in [
            RatioDistribution::ProductionTrace,
            RatioDistribution::PublicTrace,
            RatioDistribution::VitonHd,
            RatioDistribution::Uniform { lo: -1.0, hi: 2.0 },
            RatioDistribution::Fixed(5.0),
        ] {
            for _ in 0..5000 {
                let v = dist.sample(&mut rng);
                assert!((MIN_RATIO..=MAX_RATIO).contains(&v), "{dist:?} gave {v}");
            }
        }
    }

    #[test]
    fn production_trace_has_high_variance() {
        // §2.2: "individual ratios exhibit a significant variation".
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| RatioDistribution::ProductionTrace.sample(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / samples.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 0.5, "coefficient of variation {cv} too small");
    }

    #[test]
    fn fixed_and_uniform_behave() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(RatioDistribution::Fixed(0.2).sample(&mut rng), 0.2);
        let u = RatioDistribution::Uniform { lo: 0.3, hi: 0.3 };
        assert!((u.sample(&mut rng) - 0.3).abs() < 1e-12);
        // Swapped bounds normalize.
        let s = RatioDistribution::Uniform { lo: 0.8, hi: 0.2 }.sample(&mut rng);
        assert!((0.2..=0.8).contains(&s));
    }

    #[test]
    fn nominal_means() {
        assert_eq!(RatioDistribution::ProductionTrace.nominal_mean(), 0.11);
        let u = RatioDistribution::Uniform { lo: 0.2, hi: 0.4 }.nominal_mean();
        assert!((u - 0.3).abs() < 1e-12);
        assert_eq!(RatioDistribution::Fixed(0.5).nominal_mean(), 0.5);
    }
}
