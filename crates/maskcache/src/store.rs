//! Hierarchical activation storage: host memory over disk with LRU
//! eviction and prefetch-while-queued (§4.2).
//!
//! The store tracks *residency and timing*, not tensor payloads: the
//! numeric substrate keeps live activations in
//! `fps_diffusion::TemplateCache`, while serving experiments need to
//! know *where* a template's bytes live and *when* they become
//! host-resident. Disk→host transfers serialize on a disk read stream;
//! host→HBM transfer latency is the worker cost model's job
//! (`fps-serving`), because it contends with that worker's PCIe link.
//!
//! An optional [`bytes::Bytes`] payload per entry lets integration
//! tests exercise real byte movement (serialized activations) through
//! the same code path.

use std::collections::HashMap;

use bytes::Bytes;
use fps_json::Json;
use fps_overload::CircuitBreaker;
use fps_simtime::{Resource, SimDuration, SimTime};
use fps_trace::{Clock, TraceSink, Track};
use parking_lot::Mutex;
use std::sync::Arc;

use crate::error::CacheError;
use crate::Result;

/// Where a template's activations currently reside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Host DRAM: ready for pipeline loading immediately.
    Host,
    /// Disk / distributed storage: must be prefetched to host first.
    Disk,
}

/// Capacities and bandwidths of the storage hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Host-memory budget for cached activations, in bytes.
    pub host_capacity: u64,
    /// Disk budget, in bytes (`u64::MAX` for effectively unbounded).
    pub disk_capacity: u64,
    /// Disk→host read bandwidth, bytes/second (GiB/s order per §4.2).
    pub disk_read_bw: f64,
}

impl StoreConfig {
    /// A production-like default: 2 TiB host (the paper's EC2 P5-class
    /// figure), unbounded disk at 2 GiB/s.
    pub fn production_like() -> Self {
        Self {
            host_capacity: 2 << 40,
            disk_capacity: u64::MAX,
            disk_read_bw: 2.0 * (1u64 << 30) as f64,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    bytes: u64,
    tier: Tier,
    /// When the entry becomes host-resident (for in-flight prefetches).
    host_ready_at: SimTime,
    /// LRU clock of the last touch.
    last_used: u64,
    payload: Option<Bytes>,
    /// Set by fault injection: the entry's bytes are garbage and the
    /// verified-read path must detect this.
    corrupt: bool,
}

/// Counters describing store behaviour over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found the entry host-resident.
    pub host_hits: u64,
    /// Lookups that triggered or waited on a disk prefetch.
    pub disk_hits: u64,
    /// Lookups for templates never inserted.
    pub misses: u64,
    /// Entries demoted host→disk by LRU pressure.
    pub evictions: u64,
    /// Entries dropped by fault-injected cache loss.
    pub invalidations: u64,
    /// Corrupt entries caught by the verified-read path.
    pub corruptions_detected: u64,
    /// Verified reads that had to fall back to full recompute.
    pub fallbacks: u64,
    /// Guarded reads short-circuited to recompute by an open circuit
    /// breaker (no disk I/O issued at all).
    pub breaker_short_circuits: u64,
    /// Reads served *from this store* on behalf of another shard whose
    /// own copy was missing (replica failover sources).
    pub failovers: u64,
    /// Entries copied onto this store by churn-driven re-priming
    /// (replica directory rebuilds after shard leave/join/crash).
    pub re_primes: u64,
}

impl StoreStats {
    /// Adds another stats snapshot into this one (used to carry the
    /// counters of a wiped-and-replaced store across a shard crash).
    pub fn absorb(&mut self, other: StoreStats) {
        self.host_hits += other.host_hits;
        self.disk_hits += other.disk_hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
        self.corruptions_detected += other.corruptions_detected;
        self.fallbacks += other.fallbacks;
        self.breaker_short_circuits += other.breaker_short_circuits;
        self.failovers += other.failovers;
        self.re_primes += other.re_primes;
    }
}

/// The two-tier activation store.
#[derive(Debug)]
pub struct HierarchicalStore {
    config: StoreConfig,
    entries: HashMap<u64, Entry>,
    host_used: u64,
    disk_used: u64,
    disk_stream: Resource,
    clock: u64,
    stats: StoreStats,
    /// Disk-bandwidth divisor while the disk tier is degraded (≥ 1).
    disk_slow_factor: f64,
    /// Trace sink for disk-promote spans and fallback events
    /// (virtual-clock timestamps only — the store speaks `SimTime`).
    trace: TraceSink,
    /// Trace track disk-stream spans land on.
    trace_track: Track,
}

impl HierarchicalStore {
    /// Creates an empty store.
    pub fn new(config: StoreConfig) -> Self {
        Self {
            config,
            entries: HashMap::new(),
            host_used: 0,
            disk_used: 0,
            disk_stream: Resource::new(),
            clock: 0,
            stats: StoreStats::default(),
            disk_slow_factor: 1.0,
            trace: TraceSink::disabled(),
            trace_track: Track::default(),
        }
    }

    /// Attaches a trace sink; disk→host promotions become spans on
    /// `track` (serialized, so they visualize the read stream) and
    /// verification failures become instant events.
    ///
    /// # Panics
    ///
    /// Panics on a wall-clock sink: all store timestamps are
    /// [`SimTime`], so recording them against a wall epoch would mix
    /// clock domains in one trace.
    pub fn set_trace(&mut self, sink: TraceSink, track: Track) {
        assert_ne!(
            sink.clock(),
            Some(Clock::Wall),
            "HierarchicalStore timestamps are virtual (SimTime); attach a \
             TraceSink::recording(Clock::Virtual) sink"
        );
        sink.name_track(track, "disk stream");
        self.trace = sink;
        self.trace_track = track;
    }

    /// Behaviour counters accumulated so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Bytes currently host-resident.
    pub fn host_used(&self) -> u64 {
        self.host_used
    }

    /// Number of templates tracked (either tier).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store tracks no templates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current tier of a template, if present.
    pub fn locate(&self, template_id: u64) -> Option<Tier> {
        self.entries.get(&template_id).map(|e| e.tier)
    }

    /// Optional byte payload of a template, if present and attached.
    pub fn payload(&self, template_id: u64) -> Option<Bytes> {
        self.entries
            .get(&template_id)
            .and_then(|e| e.payload.clone())
    }

    /// Inserts (or replaces) a template's activations into host memory,
    /// evicting least-recently-used entries to disk as needed.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::TooLarge`] when the entry exceeds the host
    /// capacity outright.
    pub fn insert(
        &mut self,
        template_id: u64,
        bytes: u64,
        now: SimTime,
        payload: Option<Bytes>,
    ) -> Result<()> {
        if bytes > self.config.host_capacity {
            return Err(CacheError::TooLarge {
                template_id,
                bytes,
                capacity: self.config.host_capacity,
            });
        }
        // Replacing an entry frees its old accounting first.
        self.remove(template_id);
        self.make_host_room(bytes, template_id);
        self.clock += 1;
        self.host_used += bytes;
        self.entries.insert(
            template_id,
            Entry {
                bytes,
                tier: Tier::Host,
                host_ready_at: now,
                last_used: self.clock,
                payload,
                corrupt: false,
            },
        );
        Ok(())
    }

    /// Inserts (or replaces) a template's activations directly into the
    /// disk tier, without disturbing host residency — the write path of
    /// replica copies and churn-driven re-priming, which land durable
    /// bytes a later fetch promotes on demand.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::TooLarge`] when the entry exceeds the disk
    /// capacity outright.
    pub fn insert_disk(
        &mut self,
        template_id: u64,
        bytes: u64,
        payload: Option<Bytes>,
    ) -> Result<()> {
        if bytes > self.config.disk_capacity {
            return Err(CacheError::TooLarge {
                template_id,
                bytes,
                capacity: self.config.disk_capacity,
            });
        }
        self.remove(template_id);
        self.clock += 1;
        self.disk_used += bytes;
        self.entries.insert(
            template_id,
            Entry {
                bytes,
                tier: Tier::Disk,
                host_ready_at: SimTime::ZERO,
                last_used: self.clock,
                payload,
                corrupt: false,
            },
        );
        Ok(())
    }

    /// The store's configured capacities and bandwidth.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Records that this store served a replica-failover read for
    /// another shard (counted here so fleet stats aggregate for free).
    pub fn note_failover(&mut self) {
        self.stats.failovers += 1;
    }

    /// Records that churn-driven re-priming copied an entry onto this
    /// store.
    pub fn note_re_prime(&mut self) {
        self.stats.re_primes += 1;
    }

    /// Removes a template entirely; returns whether it existed.
    pub fn remove(&mut self, template_id: u64) -> bool {
        match self.entries.remove(&template_id) {
            Some(e) => {
                match e.tier {
                    Tier::Host => self.host_used -= e.bytes,
                    Tier::Disk => self.disk_used -= e.bytes,
                }
                true
            }
            None => false,
        }
    }

    /// Requests a template's activations for use at `now` (typically a
    /// request's arrival, so the disk→host prefetch overlaps queueing,
    /// §4.2). Returns the time the activations are host-resident.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::Missing`] for unknown templates.
    pub fn fetch(&mut self, template_id: u64, now: SimTime) -> Result<SimTime> {
        let entry = match self.entries.get(&template_id) {
            Some(e) => e.clone(),
            None => {
                self.stats.misses += 1;
                return Err(CacheError::Missing { template_id });
            }
        };
        self.clock += 1;
        match entry.tier {
            Tier::Host => {
                self.stats.host_hits += 1;
                let ready = entry.host_ready_at.max(now);
                if let Some(e) = self.entries.get_mut(&template_id) {
                    e.last_used = self.clock;
                }
                Ok(ready)
            }
            Tier::Disk => {
                self.stats.disk_hits += 1;
                let duration = SimDuration::from_secs_f64(
                    entry.bytes as f64 * self.disk_slow_factor / self.config.disk_read_bw,
                );
                let (start, finish) = self.disk_stream.acquire(now, duration);
                if self.trace.is_enabled() {
                    self.trace.span_at(
                        "disk_promote",
                        "cache",
                        self.trace_track,
                        start.as_nanos(),
                        finish.as_nanos(),
                        0,
                        vec![
                            ("template", Json::U64(template_id)),
                            ("bytes", Json::U64(entry.bytes)),
                        ],
                    );
                }
                // Promote to host; the bytes occupy host memory from now
                // (reservation) and are usable at `finish`.
                self.make_host_room(entry.bytes, template_id);
                self.disk_used -= entry.bytes;
                self.host_used += entry.bytes;
                let clock = self.clock;
                if let Some(e) = self.entries.get_mut(&template_id) {
                    e.tier = Tier::Host;
                    e.host_ready_at = finish;
                    e.last_used = clock;
                }
                Ok(finish)
            }
        }
    }

    /// Drops a template as if its cached bytes were lost (fault
    /// injection); returns whether an entry existed.
    pub fn invalidate(&mut self, template_id: u64) -> bool {
        let existed = self.remove(template_id);
        if existed {
            self.stats.invalidations += 1;
        }
        existed
    }

    /// Marks a template's cached bytes as silently corrupted (fault
    /// injection); returns whether an entry existed.
    pub fn corrupt(&mut self, template_id: u64) -> bool {
        match self.entries.get_mut(&template_id) {
            Some(e) => {
                e.corrupt = true;
                true
            }
            None => false,
        }
    }

    /// Degrades (or restores, with `1.0`) disk read bandwidth by the
    /// given divisor. Transfers already in flight keep their original
    /// finish times; only new fetches pay the degraded rate.
    pub fn set_disk_degradation(&mut self, factor: f64) {
        self.disk_slow_factor = factor.max(1.0);
    }

    /// Current disk-bandwidth divisor.
    pub fn disk_degradation(&self) -> f64 {
        self.disk_slow_factor
    }

    /// Fetches a template with integrity checking: a missing or
    /// corrupt entry is reported as a fallback instead of an error, so
    /// callers recompute the template Diffusers-style rather than
    /// failing the request. Corrupt entries are dropped on detection.
    pub fn fetch_verified(&mut self, template_id: u64, now: SimTime) -> VerifiedFetch {
        if self.entries.get(&template_id).is_some_and(|e| e.corrupt) {
            // The checksum mismatch is only discovered by reading the
            // bytes, which pays the fetch (and any disk transfer).
            let _ = self.fetch(template_id, now);
            self.remove(template_id);
            self.stats.corruptions_detected += 1;
            self.stats.fallbacks += 1;
            if self.trace.is_enabled() {
                self.trace.event_at(
                    "corruption_detected",
                    "cache",
                    self.trace_track,
                    now.as_nanos(),
                    vec![("template", Json::U64(template_id))],
                );
            }
            return VerifiedFetch::Fallback(FallbackReason::Corrupt);
        }
        match self.fetch(template_id, now) {
            Ok(ready) => VerifiedFetch::Intact(ready),
            Err(_) => {
                self.stats.fallbacks += 1;
                VerifiedFetch::Fallback(FallbackReason::Missing)
            }
        }
    }

    /// Fetches a template through a [`CircuitBreaker`]: the stateful
    /// replacement for the per-read fallback of [`fetch_verified`].
    ///
    /// While the breaker is Open, the read short-circuits to
    /// [`FallbackReason::BreakerOpen`] without issuing any disk I/O —
    /// under a persistently corrupt or browned-out disk, recompute is
    /// faster than queueing on the degraded read stream. Otherwise the
    /// verified read runs and its outcome feeds the breaker: a
    /// verification failure or a read slower than the breaker's
    /// slow-read threshold counts as a failure; a fast intact read as
    /// a success (which also re-closes a half-open breaker).
    ///
    /// [`fetch_verified`]: HierarchicalStore::fetch_verified
    pub fn fetch_guarded(
        &mut self,
        breaker: &mut CircuitBreaker,
        template_id: u64,
        now: SimTime,
    ) -> VerifiedFetch {
        if !breaker.allow(now) {
            self.stats.fallbacks += 1;
            self.stats.breaker_short_circuits += 1;
            if self.trace.is_enabled() {
                self.trace.event_at(
                    "breaker_short_circuit",
                    "cache",
                    self.trace_track,
                    now.as_nanos(),
                    vec![("template", Json::U64(template_id))],
                );
            }
            return VerifiedFetch::Fallback(FallbackReason::BreakerOpen);
        }
        match self.fetch_verified(template_id, now) {
            VerifiedFetch::Intact(ready) => {
                breaker.record_read(now, ready.since(now), true);
                VerifiedFetch::Intact(ready)
            }
            VerifiedFetch::Fallback(reason) => {
                breaker.record_failure(now);
                VerifiedFetch::Fallback(reason)
            }
        }
    }

    /// Evicts LRU host entries (never `protect`) until `bytes` fit.
    fn make_host_room(&mut self, bytes: u64, protect: u64) {
        while self.host_used + bytes > self.config.host_capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(id, e)| e.tier == Tier::Host && **id != protect)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| *id);
            let Some(victim) = victim else { break };
            let e = self.entries.get_mut(&victim).expect("victim exists");
            e.tier = Tier::Disk;
            self.host_used -= e.bytes;
            self.disk_used += e.bytes;
            self.stats.evictions += 1;
        }
    }
}

/// Why a verified read could not use the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// No entry for the template (never inserted, or lost).
    Missing,
    /// The entry failed integrity verification.
    Corrupt,
    /// An open circuit breaker short-circuited the read before any
    /// disk I/O was issued.
    BreakerOpen,
}

impl FallbackReason {
    /// Short label for reports and trace events.
    pub fn label(self) -> &'static str {
        match self {
            Self::Missing => "missing",
            Self::Corrupt => "corrupt",
            Self::BreakerOpen => "breaker-open",
        }
    }
}

/// Outcome of [`HierarchicalStore::fetch_verified`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifiedFetch {
    /// Cache usable; activations host-resident at the instant.
    Intact(SimTime),
    /// Cache unusable; the caller must recompute the template from
    /// scratch (full, unmasked denoising).
    Fallback(FallbackReason),
}

impl VerifiedFetch {
    /// Whether the read fell back to recompute.
    pub fn is_fallback(&self) -> bool {
        matches!(self, Self::Fallback(_))
    }
}

/// A store shared between threads (the real-threaded serving mode).
pub type SharedStore = Arc<Mutex<HierarchicalStore>>;

/// Wraps a store for cross-thread sharing.
pub fn shared(store: HierarchicalStore) -> SharedStore {
    Arc::new(Mutex::new(store))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(host: u64, bw: f64) -> StoreConfig {
        StoreConfig {
            host_capacity: host,
            disk_capacity: u64::MAX,
            disk_read_bw: bw,
        }
    }

    fn t(secs: f64) -> SimTime {
        SimTime::from_nanos((secs * 1e9) as u64)
    }

    #[test]
    fn insert_and_fetch_host_hit() {
        let mut s = HierarchicalStore::new(cfg(1000, 100.0));
        s.insert(1, 400, SimTime::ZERO, None).unwrap();
        assert_eq!(s.locate(1), Some(Tier::Host));
        let ready = s.fetch(1, t(1.0)).unwrap();
        assert_eq!(ready, t(1.0), "host-resident data is ready immediately");
        assert_eq!(s.stats().host_hits, 1);
    }

    #[test]
    fn oversized_insert_rejected_and_missing_fetch_fails() {
        let mut s = HierarchicalStore::new(cfg(100, 100.0));
        assert!(matches!(
            s.insert(1, 200, SimTime::ZERO, None),
            Err(CacheError::TooLarge { .. })
        ));
        assert!(matches!(
            s.fetch(9, SimTime::ZERO),
            Err(CacheError::Missing { .. })
        ));
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_cold_entries_to_disk() {
        let mut s = HierarchicalStore::new(cfg(1000, 100.0));
        s.insert(1, 400, SimTime::ZERO, None).unwrap();
        s.insert(2, 400, SimTime::ZERO, None).unwrap();
        // Touch 1 so 2 becomes LRU.
        s.fetch(1, t(0.1)).unwrap();
        s.insert(3, 400, SimTime::ZERO, None).unwrap();
        assert_eq!(s.locate(2), Some(Tier::Disk), "LRU victim demoted");
        assert_eq!(s.locate(1), Some(Tier::Host));
        assert_eq!(s.locate(3), Some(Tier::Host));
        assert_eq!(s.stats().evictions, 1);
        assert!(s.host_used() <= 1000);
    }

    #[test]
    fn disk_fetch_pays_bandwidth_and_promotes() {
        // 400 B at 100 B/s = 4 s transfer.
        let mut s = HierarchicalStore::new(cfg(400, 100.0));
        s.insert(1, 400, SimTime::ZERO, None).unwrap();
        s.insert(2, 400, SimTime::ZERO, None).unwrap(); // evicts 1
        assert_eq!(s.locate(1), Some(Tier::Disk));
        let ready = s.fetch(1, t(10.0)).unwrap();
        assert_eq!(ready, t(14.0));
        assert_eq!(s.locate(1), Some(Tier::Host));
        assert_eq!(s.stats().disk_hits, 1);
    }

    #[test]
    fn disk_transfers_serialize_on_the_read_stream() {
        let mut s = HierarchicalStore::new(cfg(800, 100.0));
        s.insert(1, 400, SimTime::ZERO, None).unwrap();
        s.insert(2, 400, SimTime::ZERO, None).unwrap();
        s.insert(3, 400, SimTime::ZERO, None).unwrap(); // evicts 1
        s.insert(4, 400, SimTime::ZERO, None).unwrap(); // evicts 2
        assert_eq!(s.locate(1), Some(Tier::Disk));
        assert_eq!(s.locate(2), Some(Tier::Disk));
        // Both fetched at t=0: second transfer queues behind the first.
        let r1 = s.fetch(1, SimTime::ZERO).unwrap();
        let r2 = s.fetch(2, SimTime::ZERO).unwrap();
        assert_eq!(r1, t(4.0));
        assert_eq!(r2, t(8.0));
    }

    #[test]
    fn prefetch_while_queued_hides_disk_latency() {
        // §4.2: a request that queues for ≥ the transfer time sees a
        // host-ready cache when it starts.
        let mut s = HierarchicalStore::new(cfg(400, 100.0));
        s.insert(1, 400, SimTime::ZERO, None).unwrap();
        s.insert(2, 400, SimTime::ZERO, None).unwrap(); // evicts 1
        let ready = s.fetch(1, t(0.0)).unwrap(); // prefetch at arrival
        let dequeue = t(6.0); // request leaves the queue at 6 s
        assert!(ready <= dequeue, "transfer finished during queueing");
        // A second fetch is now a host hit with no extra delay.
        let again = s.fetch(1, dequeue).unwrap();
        assert_eq!(again, dequeue);
    }

    #[test]
    fn replacement_updates_accounting() {
        let mut s = HierarchicalStore::new(cfg(1000, 100.0));
        s.insert(1, 400, SimTime::ZERO, None).unwrap();
        s.insert(1, 100, SimTime::ZERO, None).unwrap();
        assert_eq!(s.host_used(), 100);
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert!(s.is_empty());
    }

    #[test]
    fn payload_round_trips() {
        let mut s = HierarchicalStore::new(cfg(1000, 100.0));
        let data = Bytes::from_static(b"activations");
        s.insert(5, 11, SimTime::ZERO, Some(data.clone())).unwrap();
        assert_eq!(s.payload(5).unwrap(), data);
        assert!(s.payload(6).is_none());
    }

    #[test]
    fn invalidation_forces_fallback_on_next_read() {
        let mut s = HierarchicalStore::new(cfg(1000, 100.0));
        s.insert(1, 400, SimTime::ZERO, None).unwrap();
        assert!(s.invalidate(1));
        assert!(!s.invalidate(1), "already gone");
        assert_eq!(
            s.fetch_verified(1, t(1.0)),
            VerifiedFetch::Fallback(FallbackReason::Missing)
        );
        assert_eq!(s.stats().invalidations, 1);
        assert_eq!(s.stats().fallbacks, 1);
    }

    #[test]
    fn corruption_is_detected_once_then_recovers_via_reinsert() {
        let mut s = HierarchicalStore::new(cfg(1000, 100.0));
        s.insert(1, 400, SimTime::ZERO, None).unwrap();
        assert!(s.corrupt(1));
        assert!(!s.corrupt(9), "unknown template");
        let read = s.fetch_verified(1, t(1.0));
        assert_eq!(read, VerifiedFetch::Fallback(FallbackReason::Corrupt));
        assert!(read.is_fallback());
        assert_eq!(s.stats().corruptions_detected, 1);
        assert_eq!(s.locate(1), None, "corrupt entry dropped");
        // Recompute reinserts; the next read is intact again.
        s.insert(1, 400, t(2.0), None).unwrap();
        assert_eq!(s.fetch_verified(1, t(3.0)), VerifiedFetch::Intact(t(3.0)));
        assert_eq!(s.stats().fallbacks, 1);
    }

    #[test]
    fn verified_read_matches_plain_fetch_when_intact() {
        let mut s = HierarchicalStore::new(cfg(400, 100.0));
        s.insert(1, 400, SimTime::ZERO, None).unwrap();
        s.insert(2, 400, SimTime::ZERO, None).unwrap(); // evicts 1
        match s.fetch_verified(1, t(10.0)) {
            VerifiedFetch::Intact(ready) => assert_eq!(ready, t(14.0)),
            other => panic!("expected intact disk promote, got {other:?}"),
        }
    }

    #[test]
    fn disk_degradation_slows_only_new_transfers() {
        let mut s = HierarchicalStore::new(cfg(400, 100.0));
        s.insert(1, 400, SimTime::ZERO, None).unwrap();
        s.insert(2, 400, SimTime::ZERO, None).unwrap(); // evicts 1
        s.set_disk_degradation(4.0);
        assert_eq!(s.disk_degradation(), 4.0);
        // 400 B at 100/4 B/s = 16 s.
        assert_eq!(s.fetch(1, SimTime::ZERO).unwrap(), t(16.0));
        s.set_disk_degradation(1.0);
        s.insert(3, 400, t(16.0), None).unwrap(); // evicts 2 (LRU)
        assert_eq!(s.locate(2), Some(Tier::Disk));
        // Restored bandwidth, but the stream is busy until 16 s.
        assert_eq!(s.fetch(2, t(16.0)).unwrap(), t(20.0));
        // Factors below 1 clamp: degradation can't speed the disk up.
        s.set_disk_degradation(0.25);
        assert_eq!(s.disk_degradation(), 1.0);
    }

    #[test]
    fn breaker_trips_on_repeated_corruption_and_short_circuits() {
        use fps_overload::{BreakerConfig, BreakerState};
        let mut s = HierarchicalStore::new(cfg(10_000, 100.0));
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs_f64(10.0),
            slow_read_threshold: SimDuration::from_secs_f64(1.0),
        });
        // Three corrupt reads in a row trip the breaker.
        for i in 0..3u64 {
            s.insert(i, 100, SimTime::ZERO, None).unwrap();
            s.corrupt(i);
            assert_eq!(
                s.fetch_guarded(&mut b, i, t(i as f64)),
                VerifiedFetch::Fallback(FallbackReason::Corrupt)
            );
        }
        assert_eq!(b.state(t(2.0)), BreakerState::Open);
        // While open: short-circuit with zero disk I/O, even for an
        // entry that is perfectly intact.
        s.insert(9, 100, SimTime::ZERO, None).unwrap();
        let before = s.stats();
        assert_eq!(
            s.fetch_guarded(&mut b, 9, t(3.0)),
            VerifiedFetch::Fallback(FallbackReason::BreakerOpen)
        );
        let after = s.stats();
        assert_eq!(after.breaker_short_circuits, 1);
        assert_eq!(after.host_hits, before.host_hits, "no read issued");
        assert_eq!(after.disk_hits, before.disk_hits);
        // After the cooldown a probe runs for real and heals.
        assert_eq!(
            s.fetch_guarded(&mut b, 9, t(13.0)),
            VerifiedFetch::Intact(t(13.0))
        );
        assert_eq!(b.state(t(13.0)), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn breaker_trips_on_slow_disk_reads() {
        use fps_overload::{BreakerConfig, BreakerState};
        // 400 B at 100 B/s = 4 s per disk read, over the 1 s slow
        // threshold: intact results still come back, but the breaker
        // learns and eventually short-circuits.
        let mut s = HierarchicalStore::new(cfg(400, 100.0));
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: SimDuration::from_secs_f64(60.0),
            slow_read_threshold: SimDuration::from_secs_f64(1.0),
        });
        for i in 0..3u64 {
            s.insert(100 + i, 400, SimTime::ZERO, None).unwrap();
        }
        // 102 is host-resident; 100 and 101 were evicted to disk.
        assert!(matches!(
            s.fetch_guarded(&mut b, 100, t(0.0)),
            VerifiedFetch::Intact(_)
        ));
        assert!(matches!(
            s.fetch_guarded(&mut b, 101, t(0.0)),
            VerifiedFetch::Intact(_)
        ));
        assert_eq!(b.state(t(0.0)), BreakerState::Open, "two slow reads");
        assert_eq!(
            s.fetch_guarded(&mut b, 102, t(1.0)),
            VerifiedFetch::Fallback(FallbackReason::BreakerOpen)
        );
    }

    #[test]
    fn shared_store_is_usable_across_threads() {
        let s = shared(HierarchicalStore::new(cfg(1000, 100.0)));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.lock().insert(1, 10, SimTime::ZERO, None).unwrap();
        });
        h.join().unwrap();
        assert_eq!(s.lock().locate(1), Some(Tier::Host));
    }
}
