//! Algorithm 1: the bubble-free pipeline dynamic program.
//!
//! Model (Fig. 9 of the paper): a denoising step runs `N` transformer
//! blocks in order on the *compute stream* while cached activations
//! move host→HBM on the *copy stream*. For each block the planner
//! chooses:
//!
//! - **use cache**: pay `load` on the copy stream (loads serialize and
//!   can be issued eagerly, ahead of the compute stream) and
//!   `compute_cached` on the compute stream, which may stall until the
//!   block's load completes; or
//! - **skip cache**: pay `compute_full` on the compute stream with no
//!   load at all.
//!
//! The objective is the compute stream's finish time. When per-block
//! costs are uniform (the common case: every block of a model has the
//! same shape) an O(N²) DP over `(block, #cached)` is exact because a
//! block's cache-ready time depends only on how many loads precede it.
//! For heterogeneous costs a Pareto-frontier DP over
//! `(compute_finish, load_finish)` states is used.

use fps_simtime::SimDuration;

use crate::error::CacheError;
use crate::Result;

/// Per-block latencies the planner chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCosts {
    /// Compute latency when consuming cached activations (masked tokens
    /// only) — `C_w^m` in Algorithm 1.
    pub compute_cached: SimDuration,
    /// Compute latency without cache (all tokens) — `C_w/o`.
    pub compute_full: SimDuration,
    /// Host→HBM load latency of the block's cached activations — `L^m`.
    pub load: SimDuration,
}

/// The planner's output: per-block decisions and the resulting pipeline
/// latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelinePlan {
    /// `true` → the block consumes cached activations.
    pub use_cache: Vec<bool>,
    /// End-to-end latency of the compute stream under this plan.
    pub latency: SimDuration,
}

/// Evaluates the pipeline latency of a given plan.
///
/// Loads are issued eagerly in block order on the copy stream; block
/// `i`'s compute starts at `max(compute_finish, its load's finish)`.
///
/// # Errors
///
/// Returns [`CacheError::InvalidInput`] when lengths differ.
pub fn simulate_plan(costs: &[BlockCosts], use_cache: &[bool]) -> Result<SimDuration> {
    if costs.len() != use_cache.len() {
        return Err(CacheError::InvalidInput {
            reason: format!(
                "{} cost entries but {} decisions",
                costs.len(),
                use_cache.len()
            ),
        });
    }
    let mut compute_finish = SimDuration::ZERO;
    let mut load_finish = SimDuration::ZERO;
    for (c, &cached) in costs.iter().zip(use_cache.iter()) {
        if cached {
            load_finish += c.load;
            let start = compute_finish.max(load_finish);
            compute_finish = start + c.compute_cached;
        } else {
            compute_finish += c.compute_full;
        }
    }
    Ok(compute_finish)
}

/// Naive sequential schedule (Fig. 9-top): load *all* cached
/// activations first, then compute every block in cached mode.
pub fn naive_sequential_latency(costs: &[BlockCosts]) -> SimDuration {
    let total_load = costs.iter().fold(SimDuration::ZERO, |acc, c| acc + c.load);
    let total_compute = costs
        .iter()
        .fold(SimDuration::ZERO, |acc, c| acc + c.compute_cached);
    total_load + total_compute
}

/// Strawman pipeline (Fig. 9-middle): every block uses cache, loads
/// overlapped block-wise — bubbles appear when loads outpace compute.
pub fn strawman_pipeline_latency(costs: &[BlockCosts]) -> SimDuration {
    simulate_plan(costs, &vec![true; costs.len()]).expect("lengths match by construction")
}

/// Ideal latency (Fig. 4-left "ideal"): cached compute with load
/// overhead magically eliminated.
pub fn ideal_latency(costs: &[BlockCosts]) -> SimDuration {
    costs
        .iter()
        .fold(SimDuration::ZERO, |acc, c| acc + c.compute_cached)
}

/// Algorithm 1 for uniform per-block costs: O(N²) DP over
/// `(block index, number of cached blocks so far)`.
///
/// Exactness: with uniform costs, the copy stream finishes the `j`-th
/// issued load at `j · load`, so a cached block's ready time depends
/// only on its rank among cached blocks — captured by the DP state.
pub fn plan_uniform(n_blocks: usize, costs: BlockCosts) -> PipelinePlan {
    if n_blocks == 0 {
        return PipelinePlan {
            use_cache: Vec::new(),
            latency: SimDuration::ZERO,
        };
    }
    let load = costs.load.as_nanos();
    let cc = costs.compute_cached.as_nanos();
    let cf = costs.compute_full.as_nanos();
    const INF: u64 = u64::MAX / 4;
    // dp[j] = minimal compute-finish after the current prefix with j
    // cached blocks; parent[i][j] = whether block i-1 was cached on the
    // optimal path reaching (i, j).
    let mut dp = vec![INF; n_blocks + 1];
    dp[0] = 0;
    let mut parent = vec![vec![false; n_blocks + 1]; n_blocks + 1];
    for i in 0..n_blocks {
        let mut next = vec![INF; n_blocks + 1];
        let mut choice = vec![false; n_blocks + 1];
        for j in 0..=i {
            let cur = dp[j];
            if cur >= INF {
                continue;
            }
            // Skip cache.
            let skip = cur + cf;
            if skip < next[j] {
                next[j] = skip;
                choice[j] = false;
            }
            // Use cache: this is the (j+1)-th load, ready at (j+1)·load.
            let ready = (j as u64 + 1) * load;
            let use_c = cur.max(ready) + cc;
            if use_c < next[j + 1] {
                next[j + 1] = use_c;
                choice[j + 1] = true;
            }
        }
        dp = next;
        parent[i + 1] = choice;
    }
    // Best final state.
    let (best_j, &best) = dp
        .iter()
        .enumerate()
        .min_by_key(|(_, &v)| v)
        .expect("dp is non-empty");
    // Backtrack decisions.
    let mut use_cache = vec![false; n_blocks];
    let mut j = best_j;
    for i in (0..n_blocks).rev() {
        let cached = parent[i + 1][j];
        use_cache[i] = cached;
        if cached {
            j -= 1;
        }
    }
    // Recompute exactly through the simulator to keep the invariant
    // latency == simulate_plan(plan).
    let costs_vec = vec![costs; n_blocks];
    let latency = simulate_plan(&costs_vec, &use_cache).expect("lengths match");
    debug_assert_eq!(latency.as_nanos(), best);
    PipelinePlan { use_cache, latency }
}

#[derive(Debug, Clone)]
struct FrontierState {
    compute_finish: u64,
    load_finish: u64,
    decisions: Vec<bool>,
}

/// Algorithm 1 for heterogeneous per-block costs: a Pareto-frontier DP
/// over `(compute_finish, load_finish)` states with dominance pruning.
///
/// Exact for any cost vector; the frontier stays small in practice
/// because most states dominate each other.
pub fn plan_general(costs: &[BlockCosts]) -> PipelinePlan {
    let mut frontier = vec![FrontierState {
        compute_finish: 0,
        load_finish: 0,
        decisions: Vec::new(),
    }];
    for c in costs {
        let mut next: Vec<FrontierState> = Vec::with_capacity(frontier.len() * 2);
        for s in &frontier {
            // Skip cache.
            let mut d = s.decisions.clone();
            d.push(false);
            next.push(FrontierState {
                compute_finish: s.compute_finish + c.compute_full.as_nanos(),
                load_finish: s.load_finish,
                decisions: d,
            });
            // Use cache.
            let lf = s.load_finish + c.load.as_nanos();
            let start = s.compute_finish.max(lf);
            let mut d = s.decisions.clone();
            d.push(true);
            next.push(FrontierState {
                compute_finish: start + c.compute_cached.as_nanos(),
                load_finish: lf,
                decisions: d,
            });
        }
        // Dominance pruning: keep states minimal in (compute, load).
        next.sort_by_key(|s| (s.compute_finish, s.load_finish));
        let mut pruned: Vec<FrontierState> = Vec::with_capacity(next.len());
        let mut best_load = u64::MAX;
        for s in next {
            if s.load_finish < best_load {
                best_load = s.load_finish;
                pruned.push(s);
            }
        }
        frontier = pruned;
    }
    let best = frontier
        .into_iter()
        .min_by_key(|s| s.compute_finish)
        .expect("frontier never empty");
    PipelinePlan {
        latency: SimDuration::from_nanos(best.compute_finish),
        use_cache: best.decisions,
    }
}

/// Exhaustive reference planner for tests and the Fig. 9 bench; `N`
/// must stay small (2^N plans).
pub fn plan_brute_force(costs: &[BlockCosts]) -> PipelinePlan {
    let n = costs.len();
    assert!(n <= 20, "brute force is exponential; use plan_general");
    let mut best = PipelinePlan {
        use_cache: vec![false; n],
        latency: simulate_plan(costs, &vec![false; n]).expect("lengths match"),
    };
    for bits in 0u32..(1u32 << n) {
        let plan: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        let lat = simulate_plan(costs, &plan).expect("lengths match");
        if lat < best.latency {
            best = PipelinePlan {
                use_cache: plan,
                latency: lat,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ns(v: u64) -> SimDuration {
        SimDuration::from_nanos(v)
    }

    fn costs(cached: u64, full: u64, load: u64) -> BlockCosts {
        BlockCosts {
            compute_cached: ns(cached),
            compute_full: ns(full),
            load: ns(load),
        }
    }

    #[test]
    fn compute_bound_case_caches_everything() {
        // Loads are cheap: caching every block is optimal and the
        // pipeline hides all but the first load.
        let c = costs(10, 100, 2);
        let plan = plan_uniform(8, c);
        assert!(plan.use_cache.iter().all(|&b| b));
        // First block waits for its load (2), then compute dominates.
        assert_eq!(plan.latency, ns(2 + 8 * 10));
    }

    #[test]
    fn load_bound_case_skips_some_blocks() {
        // Loads are expensive relative to cached compute: the strawman
        // pipeline bubbles, and the DP must beat it by computing some
        // blocks in full.
        let c = costs(10, 25, 40);
        let n = 8;
        let plan = plan_uniform(n, c);
        let strawman = strawman_pipeline_latency(&vec![c; n]);
        assert!(
            plan.latency < strawman,
            "DP {:?} must beat strawman {:?}",
            plan.latency,
            strawman
        );
        assert!(plan.use_cache.iter().any(|&b| !b), "some blocks skip cache");
        assert!(plan.use_cache.iter().any(|&b| b), "some blocks still cache");
    }

    #[test]
    fn expensive_loads_still_help_late_blocks() {
        // Loads cost more than the full-vs-cached compute saving, so a
        // naive analysis would skip caching entirely (6 × 60 = 360).
        // But loads are prefetched eagerly: a late block's load is
        // hidden behind earlier compute, so caching the tail is free
        // compute savings. Block 5 cached: load done at 100 ≤ 5 × 60,
        // so it starts at 300 and finishes at 350 < 360.
        let c = costs(50, 60, 100);
        let plan = plan_uniform(6, c);
        assert!(plan.latency < ns(6 * 60));
        assert!(plan.use_cache.iter().any(|&b| b));
        assert_eq!(plan.latency, plan_brute_force(&[c; 6]).latency);
    }

    #[test]
    fn zero_blocks() {
        let plan = plan_uniform(0, costs(1, 2, 3));
        assert!(plan.use_cache.is_empty());
        assert_eq!(plan.latency, SimDuration::ZERO);
    }

    #[test]
    fn reference_schedules_ordering() {
        // naive ≥ strawman ≥ DP ≥ ideal, the ordering behind Fig. 4-left.
        let c = costs(10, 30, 15);
        let n = 10;
        let v = vec![c; n];
        let naive = naive_sequential_latency(&v);
        let strawman = strawman_pipeline_latency(&v);
        let dp = plan_uniform(n, c).latency;
        let ideal = ideal_latency(&v);
        assert!(naive >= strawman, "naive {naive} < strawman {strawman}");
        assert!(strawman >= dp);
        assert!(dp >= ideal);
        // The paper reports ~102% overhead for naive loading; with these
        // costs naive is 2.5× ideal while the DP sits close to ideal.
        assert!(naive.as_nanos() as f64 / ideal.as_nanos() as f64 > 1.5);
    }

    #[test]
    fn uniform_matches_brute_force() {
        for (cc, cf, ld) in [
            (10, 100, 2),
            (10, 25, 40),
            (50, 60, 100),
            (7, 13, 11),
            (1, 2, 3),
            (20, 21, 1),
        ] {
            let c = costs(cc, cf, ld);
            for n in [1usize, 2, 3, 5, 8, 12] {
                let dp = plan_uniform(n, c);
                let bf = plan_brute_force(&vec![c; n]);
                assert_eq!(
                    dp.latency, bf.latency,
                    "n={n} costs=({cc},{cf},{ld}): dp {:?} vs brute {:?}",
                    dp.latency, bf.latency
                );
            }
        }
    }

    #[test]
    fn general_matches_brute_force_on_heterogeneous_costs() {
        let cases: Vec<Vec<BlockCosts>> = vec![
            vec![costs(5, 20, 9), costs(10, 12, 30), costs(3, 40, 2)],
            vec![
                costs(10, 25, 40),
                costs(10, 25, 4),
                costs(1, 100, 50),
                costs(30, 31, 30),
                costs(2, 90, 7),
            ],
            vec![costs(1, 1, 1)],
        ];
        for case in cases {
            let dp = plan_general(&case);
            let bf = plan_brute_force(&case);
            assert_eq!(dp.latency, bf.latency, "case {case:?}");
            // The plan must actually achieve its claimed latency.
            assert_eq!(simulate_plan(&case, &dp.use_cache).unwrap(), dp.latency);
        }
    }

    #[test]
    fn simulate_plan_validates_lengths() {
        let c = vec![costs(1, 2, 3)];
        assert!(simulate_plan(&c, &[true, false]).is_err());
    }

    #[test]
    fn large_mask_ratio_keeps_caching_despite_copy_bubbles() {
        // §4.2: when compute latency with cache exceeds load latency,
        // bubbles sit on the *copy* stream and the DP still caches all
        // blocks (compute is the bottleneck either way).
        let c = costs(50, 60, 10);
        let plan = plan_uniform(6, c);
        // Fully cached: first load (10) then compute-bound, 10 + 6·50.
        // (Computing the first block in full instead ties at 60 + 5·50;
        // either plan is optimal.)
        assert_eq!(plan.latency, ns(10 + 6 * 50));
        assert!(plan.use_cache.iter().filter(|&&b| b).count() >= 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_uniform_dp_is_optimal(
            cc in 1u64..50,
            extra in 1u64..100,
            ld in 1u64..80,
            n in 1usize..10,
        ) {
            // compute_full > compute_cached always (fewer tokens is
            // never slower in this model).
            let c = costs(cc, cc + extra, ld);
            let dp = plan_uniform(n, c);
            let bf = plan_brute_force(&vec![c; n]);
            prop_assert_eq!(dp.latency, bf.latency);
        }

        #[test]
        fn prop_general_dp_is_optimal(
            params in proptest::collection::vec((1u64..40, 1u64..60, 1u64..60), 1..9),
        ) {
            let case: Vec<BlockCosts> = params
                .iter()
                .map(|&(cc, extra, ld)| costs(cc, cc + extra, ld))
                .collect();
            let dp = plan_general(&case);
            let bf = plan_brute_force(&case);
            prop_assert_eq!(dp.latency, bf.latency);
        }

        #[test]
        fn prop_dp_never_worse_than_extremes(
            cc in 1u64..50,
            extra in 1u64..100,
            ld in 1u64..100,
            n in 1usize..16,
        ) {
            let c = costs(cc, cc + extra, ld);
            let plan = plan_uniform(n, c);
            let v = vec![c; n];
            let all_cached = strawman_pipeline_latency(&v);
            let all_full = simulate_plan(&v, &vec![false; n]).unwrap();
            prop_assert!(plan.latency <= all_cached);
            prop_assert!(plan.latency <= all_full);
            prop_assert!(plan.latency >= ideal_latency(&v).min(all_full));
        }
    }
}
