//! Error types for the cache engine.

use core::fmt;

/// Errors produced by the cache store and pipeline planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The requested template has never been inserted.
    Missing {
        /// Template identifier of the missing entry.
        template_id: u64,
    },
    /// An entry is too large for the configured tiers.
    TooLarge {
        /// Template identifier of the oversized entry.
        template_id: u64,
        /// Entry size in bytes.
        bytes: u64,
        /// Total capacity of the largest tier.
        capacity: u64,
    },
    /// The planner was given inconsistent inputs.
    InvalidInput {
        /// Description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Missing { template_id } => {
                write!(f, "no cached activations for template {template_id}")
            }
            Self::TooLarge {
                template_id,
                bytes,
                capacity,
            } => write!(
                f,
                "template {template_id} needs {bytes} B, exceeding tier capacity {capacity} B"
            ),
            Self::InvalidInput { reason } => write!(f, "invalid planner input: {reason}"),
        }
    }
}

impl std::error::Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let e = CacheError::Missing { template_id: 9 };
        assert!(e.to_string().contains('9'));
        let e = CacheError::TooLarge {
            template_id: 1,
            bytes: 10,
            capacity: 5,
        };
        assert!(e.to_string().contains("10"));
    }
}
