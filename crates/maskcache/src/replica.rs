//! Template→R-replica placement over per-shard hierarchical stores.
//!
//! At fleet scale the activation cache is only worth its bytes if the
//! shard holding them is alive. This module keeps each template's
//! activations on **R shards**: the ring primary serves from its host
//! tier like any single-shard cache, while the remaining R−1 owners
//! hold durable disk-tier copies written through at compute time. When
//! the primary crashes, is partitioned from peers, or loses its cache,
//! affinity routing lands the request elsewhere and the read **fails
//! over** to a surviving replica — through each source shard's
//! [`CircuitBreaker`], so a shard that keeps failing its peers gets
//! short-circuited out of the failover path instead of queueing reads
//! against a corpse.
//!
//! The [`ReplicaDirectory`] is the authority on who *should* hold each
//! template; churn (leave/join/crash) triggers [`rebuild`], which
//! recomputes desired owners from the ring's preference order and
//! **re-primes** moved templates by copying them onto their new owners
//! from any surviving holder. Re-priming is modelled as background
//! traffic (counted, not billed to the serving path): the copies land
//! in the disk tier and later fetches pay the promote like any other
//! disk hit.
//!
//! [`rebuild`]: ReplicatedStore::rebuild

use std::collections::HashMap;

use fps_overload::{BreakerConfig, CircuitBreaker};
use fps_simtime::SimTime;

use crate::placement::{
    PlacementContext, PlacementPlan, PlacementPolicy, PlacementSpec, ShardBudget,
};
use crate::store::{HierarchicalStore, StoreConfig, StoreStats, Tier, VerifiedFetch};

/// Which shards are *supposed* to hold each template, in priority
/// order (index 0 is the ring primary).
#[derive(Debug, Clone, Default)]
pub struct ReplicaDirectory {
    replicas: usize,
    owners: HashMap<u64, Vec<u32>>,
}

impl ReplicaDirectory {
    /// A directory targeting `replicas` copies per template (≥ 1).
    pub fn new(replicas: usize) -> Self {
        Self {
            replicas: replicas.max(1),
            owners: HashMap::new(),
        }
    }

    /// The replication target R.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The desired owners of a template, primary first.
    pub fn owners(&self, template_id: u64) -> &[u32] {
        self.owners.get(&template_id).map_or(&[], Vec::as_slice)
    }

    /// Sets a template's desired owners (primary first, truncated to
    /// R).
    pub fn set(&mut self, template_id: u64, mut owners: Vec<u32>) {
        owners.truncate(self.replicas);
        self.owners.insert(template_id, owners);
    }

    /// Number of templates the directory places.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Whether the directory places nothing.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }
}

/// Outcome of a replicated-cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFetch {
    /// The serving shard's own host tier had the bytes; ready at the
    /// instant.
    LocalHit(SimTime),
    /// A peer replica served the bytes (failover); ready at the
    /// instant, from the given source shard.
    Failover {
        /// The shard whose store served the read.
        source: u32,
        /// When the bytes are usable on the serving shard.
        ready: SimTime,
    },
    /// No live replica could serve: the caller recomputes cold.
    Miss,
}

/// R-replicated activation caching across per-shard stores.
///
/// Shard ids index into an internally grown table, so mid-run joins of
/// brand-new shard ids just work. All iteration orders are explicit
/// (template lists arrive sorted from the caller, owner walks follow
/// directory priority), keeping seeded runs byte-identical.
#[derive(Debug)]
pub struct ReplicatedStore {
    stores: Vec<HierarchicalStore>,
    breakers: Vec<CircuitBreaker>,
    directory: ReplicaDirectory,
    store_config: StoreConfig,
    breaker_config: BreakerConfig,
    template_bytes: u64,
    /// Stats carried over from stores wiped by crashes.
    retired: StoreStats,
    /// Who decides which R shards hold a template.
    policy: Box<dyn PlacementPolicy>,
    spec: PlacementSpec,
    /// Per-shard replica-byte budget the planner admits against
    /// (`u64::MAX` = unbounded, the legacy behavior).
    replica_budget_bytes: u64,
    /// Ex-owner disk replicas reclaimed by budget enforcement.
    replica_evictions: u64,
}

impl ReplicatedStore {
    /// A replicated store over `shards` initial shards, each with its
    /// own `store_config`-shaped store and `breaker_config` breaker,
    /// holding uniform `template_bytes`-sized activations.
    pub fn new(
        shards: u32,
        replicas: usize,
        store_config: StoreConfig,
        breaker_config: BreakerConfig,
        template_bytes: u64,
    ) -> Self {
        let mut this = Self {
            stores: Vec::new(),
            breakers: Vec::new(),
            directory: ReplicaDirectory::new(replicas),
            store_config,
            breaker_config,
            template_bytes,
            retired: StoreStats::default(),
            policy: PlacementSpec::RingOrder.build(),
            spec: PlacementSpec::RingOrder,
            replica_budget_bytes: u64::MAX,
            replica_evictions: 0,
        };
        this.ensure_shard(shards.saturating_sub(1));
        this
    }

    /// Swaps the placement policy (default: ring order, the legacy
    /// behavior).
    pub fn with_placement(mut self, spec: PlacementSpec) -> Self {
        self.policy = spec.build();
        self.spec = spec;
        self
    }

    /// Caps each shard's replica bytes; the planner refuses admissions
    /// beyond it and rebuilds reclaim ex-owner disk copies.
    pub fn with_replica_budget(mut self, bytes: u64) -> Self {
        self.replica_budget_bytes = bytes;
        self
    }

    /// The active placement policy's stable label.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The active placement spec.
    pub fn placement(&self) -> PlacementSpec {
        self.spec
    }

    /// Whether the active policy wants periodic re-planning on
    /// popularity drift.
    pub fn reacts_to_popularity(&self) -> bool {
        self.policy.reacts_to_popularity()
    }

    /// Per-shard replica-byte budget (`u64::MAX` = unbounded).
    pub fn replica_budget_bytes(&self) -> u64 {
        self.replica_budget_bytes
    }

    /// Ex-owner disk replicas reclaimed by budget enforcement so far.
    pub fn replica_evictions(&self) -> u64 {
        self.replica_evictions
    }

    /// Runs the placement policy over `templates` (sorted) against a
    /// fresh per-shard budget ledger. The ledger covers every known
    /// shard plus any shard named by `prefer` (mid-run joins).
    pub fn plan(
        &mut self,
        templates: &[u64],
        prefer: impl Fn(u64) -> Vec<u32>,
        popularity: impl Fn(u64) -> u64,
    ) -> PlacementPlan {
        let mut budgets: Vec<ShardBudget> = (0..self.stores.len() as u32)
            .map(|shard| ShardBudget {
                shard,
                capacity_bytes: self.replica_budget_bytes,
                planned_bytes: 0,
            })
            .collect();
        for &template in templates {
            for shard in prefer(template) {
                if !budgets.iter().any(|b| b.shard == shard) {
                    budgets.push(ShardBudget {
                        shard,
                        capacity_bytes: self.replica_budget_bytes,
                        planned_bytes: 0,
                    });
                }
            }
        }
        self.policy.plan(&mut PlacementContext {
            templates,
            replicas: self.directory.replicas(),
            template_bytes: self.template_bytes,
            prefer: &prefer,
            popularity: &popularity,
            budgets: &mut budgets,
        })
    }

    /// Grows the shard table to cover `shard` (idempotent).
    pub fn ensure_shard(&mut self, shard: u32) {
        while self.stores.len() <= shard as usize {
            self.stores.push(HierarchicalStore::new(self.store_config));
            self.breakers
                .push(CircuitBreaker::new(self.breaker_config.clone()));
        }
    }

    /// The directory of desired placements.
    pub fn directory(&self) -> &ReplicaDirectory {
        &self.directory
    }

    /// Uniform per-template activation footprint, bytes.
    pub fn template_bytes(&self) -> u64 {
        self.template_bytes
    }

    /// One shard's store, for inspection.
    pub fn store(&self, shard: u32) -> Option<&HierarchicalStore> {
        self.stores.get(shard as usize)
    }

    /// Aggregated stats across all shards, including stores wiped by
    /// crashes.
    pub fn stats(&self) -> StoreStats {
        let mut total = self.retired;
        for s in &self.stores {
            total.absorb(s.stats());
        }
        total
    }

    /// Sum of breaker short-circuits across all shards (also folded
    /// into [`stats`]'s `breaker_short_circuits` by the stores).
    ///
    /// [`stats`]: ReplicatedStore::stats
    pub fn breaker_trips(&self) -> u64 {
        self.breakers.iter().map(CircuitBreaker::trips).sum()
    }

    /// Local host-tier lookup on `shard`, mirroring a plain per-shard
    /// LRU template cache: returns `true` on a host hit (and touches
    /// the LRU clock); on a miss the template is inserted host-resident
    /// — the caller is about to compute it anyway — evicting LRU
    /// entries to the disk tier as needed.
    pub fn touch(&mut self, shard: u32, template_id: u64, now: SimTime) -> bool {
        self.ensure_shard(shard);
        let store = &mut self.stores[shard as usize];
        if store.locate(template_id) == Some(Tier::Host) {
            let _ = store.fetch(template_id, now);
            true
        } else {
            let _ = store.insert(template_id, self.template_bytes, now, None);
            false
        }
    }

    /// Write-through replication after a compute on `shard`: every
    /// desired owner that lacks a copy gets a durable disk-tier one
    /// (the computing shard itself already holds the host copy from
    /// [`touch`]).
    ///
    /// [`touch`]: ReplicatedStore::touch
    pub fn replicate(&mut self, template_id: u64) {
        let owners: Vec<u32> = self.directory.owners(template_id).to_vec();
        for owner in owners {
            self.ensure_shard(owner);
            let store = &mut self.stores[owner as usize];
            if store.locate(template_id).is_none() {
                let _ = store.insert_disk(template_id, self.template_bytes, None);
            }
        }
    }

    /// Failover read for `template_id` on behalf of `shard`, whose own
    /// copy missed: walks the directory's owners in priority order,
    /// skipping `shard` itself and any peer `fetchable` rejects, and
    /// reads through each source shard's circuit breaker. The first
    /// intact read wins; failed probes feed the source's breaker so a
    /// dead or wiped peer gets short-circuited out of later walks.
    pub fn fetch_failover(
        &mut self,
        shard: u32,
        template_id: u64,
        now: SimTime,
        fetchable: impl Fn(u32) -> bool,
    ) -> ReplicaFetch {
        let owners: Vec<u32> = self.directory.owners(template_id).to_vec();
        for source in owners {
            if source == shard || !fetchable(source) {
                continue;
            }
            self.ensure_shard(source);
            let store = &mut self.stores[source as usize];
            let breaker = &mut self.breakers[source as usize];
            match store.fetch_guarded(breaker, template_id, now) {
                VerifiedFetch::Intact(ready) => {
                    store.note_failover();
                    return ReplicaFetch::Failover { source, ready };
                }
                VerifiedFetch::Fallback(_) => {}
            }
        }
        ReplicaFetch::Miss
    }

    /// Sets a shard's disk read-time multiplier (storage gray failure;
    /// `1.0` restores full speed). Host-tier hits stay free — only
    /// disk→host promotes on the shard, and peer reads *sourced* from
    /// it, pay the slowdown.
    pub fn set_disk_degradation(&mut self, shard: u32, factor: f64) {
        self.ensure_shard(shard);
        self.stores[shard as usize].set_disk_degradation(factor);
    }

    /// Wipes a shard's store (crash or silent cache loss), carrying its
    /// counters into the aggregate. The shard's breaker keeps its
    /// state: peers probing the wiped store will find entries missing,
    /// trip it, and route around until re-priming restores copies.
    pub fn wipe(&mut self, shard: u32) {
        self.ensure_shard(shard);
        let fresh = HierarchicalStore::new(self.store_config);
        let old = std::mem::replace(&mut self.stores[shard as usize], fresh);
        self.retired.absorb(old.stats());
    }

    /// Start-of-run priming: records `owners` (primary first) in the
    /// directory, host-loads the primary copy if it fits without
    /// evicting anything, and lands durable disk copies on the
    /// remaining owners. Mirrors a single-shard cache's pre-warm when
    /// R = 1.
    pub fn prime(&mut self, template_id: u64, owners: Vec<u32>, now: SimTime) {
        self.directory.set(template_id, owners);
        let owners = self.directory.owners(template_id).to_vec();
        if let Some(&primary) = owners.first() {
            self.ensure_shard(primary);
            let store = &mut self.stores[primary as usize];
            if store.locate(template_id).is_none()
                && store.host_used() + self.template_bytes <= store.config().host_capacity
            {
                let _ = store.insert(template_id, self.template_bytes, now, None);
            }
        }
        for &owner in owners.iter().skip(1) {
            self.ensure_shard(owner);
            if self.stores[owner as usize].locate(template_id).is_none() {
                let _ =
                    self.stores[owner as usize].insert_disk(template_id, self.template_bytes, None);
            }
        }
    }

    /// Plans and primes the whole template universe at start of run:
    /// each template's planned owners are recorded in the directory,
    /// the primary host-loads if it fits, and the remaining owners get
    /// disk copies (see [`prime`]). With the default ring-order policy
    /// and an unbounded budget this is exactly the legacy per-template
    /// `prime(t, prefer(t).take(R))` loop.
    ///
    /// [`prime`]: ReplicatedStore::prime
    pub fn prime_all(
        &mut self,
        templates: &[u64],
        prefer: impl Fn(u64) -> Vec<u32>,
        popularity: impl Fn(u64) -> u64,
        now: SimTime,
    ) {
        let plan = self.plan(templates, prefer, popularity);
        for (template, owners) in plan.assignments {
            self.prime(template, owners, now);
        }
    }

    /// Updates the directory to track new placements **without**
    /// copying any bytes — the ablation arm that answers "what does
    /// re-priming buy": failover still consults the fresh owner set,
    /// but new owners start cold. Placement goes through the active
    /// policy (ring order reproduces the legacy directory exactly).
    pub fn retarget(&mut self, templates: &[u64], prefer: impl Fn(u64) -> Vec<u32>) {
        let plan = self.plan(templates, prefer, |_| 0);
        for (template, desired) in plan.assignments {
            self.directory.set(template, desired);
        }
    }

    /// Rebuilds the directory after churn and re-primes moved
    /// templates, with zero popularity weight (the legacy entry point —
    /// identical placement under the default ring-order policy).
    pub fn rebuild(&mut self, templates: &[u64], prefer: impl Fn(u64) -> Vec<u32>) -> u64 {
        self.rebuild_weighted(templates, prefer, |_| 0)
    }

    /// Rebuilds the directory after churn (or a popularity-drift
    /// replan) and re-primes moved templates.
    ///
    /// `templates` must arrive sorted (determinism); `prefer` is the
    /// ring's preference order over **live** shards for a key. The
    /// active [`PlacementPolicy`] turns `(prefer, popularity, budget)`
    /// into desired owners per template; any new owner lacking a copy
    /// receives a disk-tier copy from the first current holder, counted
    /// as a re-prime on the receiving store. Templates with no
    /// surviving holder are left to be recomputed on demand. When the
    /// replica budget is finite, disk copies on shards that are no
    /// longer owners are reclaimed (host-tier working-set entries are
    /// never touched). Returns the number of re-primed copies.
    pub fn rebuild_weighted(
        &mut self,
        templates: &[u64],
        prefer: impl Fn(u64) -> Vec<u32>,
        popularity: impl Fn(u64) -> u64,
    ) -> u64 {
        let bounded = self.replica_budget_bytes != u64::MAX;
        let plan = self.plan(templates, prefer, popularity);
        let mut re_primed = 0;
        for (template, desired) in plan.assignments {
            // A holder survives churn iff some shard still has bytes.
            let holder = desired
                .iter()
                .chain(self.directory.owners(template).iter())
                .copied()
                .find(|&s| {
                    self.stores
                        .get(s as usize)
                        .is_some_and(|st| st.locate(template).is_some())
                });
            for &owner in &desired {
                self.ensure_shard(owner);
                if holder.is_some() && self.stores[owner as usize].locate(template).is_none() {
                    let _ = self.stores[owner as usize].insert_disk(
                        template,
                        self.template_bytes,
                        None,
                    );
                    self.stores[owner as usize].note_re_prime();
                    re_primed += 1;
                }
            }
            if bounded {
                for shard in 0..self.stores.len() as u32 {
                    if !desired.contains(&shard)
                        && self.stores[shard as usize].locate(template) == Some(Tier::Disk)
                        && self.stores[shard as usize].remove(template)
                    {
                        self.replica_evictions += 1;
                    }
                }
            }
            self.directory.set(template, desired);
        }
        re_primed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_nanos((secs * 1e9) as u64)
    }

    fn store(shards: u32, replicas: usize, cap_templates: u64) -> ReplicatedStore {
        let bytes = 100u64;
        ReplicatedStore::new(
            shards,
            replicas,
            StoreConfig {
                host_capacity: cap_templates * bytes,
                disk_capacity: u64::MAX,
                disk_read_bw: 1000.0,
            },
            BreakerConfig::default(),
            bytes,
        )
    }

    /// Owners = [t % shards, (t+1) % shards]: a stand-in for ring
    /// preference with a deterministic shape.
    fn owners(template: u64, shards: u32) -> Vec<u32> {
        (0..shards)
            .map(|k| ((template + k as u64) % shards as u64) as u32)
            .collect()
    }

    #[test]
    fn touch_mirrors_an_lru_template_cache() {
        let mut rs = store(1, 1, 2);
        assert!(!rs.touch(0, 1, t(0.0)), "cold first touch");
        assert!(rs.touch(0, 1, t(0.1)), "warm second touch");
        assert!(!rs.touch(0, 2, t(0.2)));
        assert!(!rs.touch(0, 3, t(0.3)), "evicts 1 (LRU)");
        assert!(!rs.touch(0, 1, t(0.4)), "1 no longer host-resident");
        assert_eq!(rs.stats().host_hits, 1);
        assert!(rs.stats().evictions >= 1);
    }

    #[test]
    fn write_through_replicas_enable_failover() {
        let mut rs = store(3, 2, 10);
        rs.rebuild(&[7], |tid| owners(tid, 3));
        // Compute on the primary, write through to the secondary.
        let primary = rs.directory().owners(7)[0];
        let secondary = rs.directory().owners(7)[1];
        rs.touch(primary, 7, t(0.0));
        rs.replicate(7);
        assert_eq!(rs.store(secondary).unwrap().locate(7), Some(Tier::Disk));
        // Primary dies; a request lands on some other shard and fails
        // over to the secondary's disk copy.
        rs.wipe(primary);
        let serving = (0..3u32)
            .find(|s| *s != primary && *s != secondary)
            .unwrap();
        match rs.fetch_failover(serving, 7, t(1.0), |s| s != primary) {
            ReplicaFetch::Failover { source, ready } => {
                assert_eq!(source, secondary);
                assert!(ready >= t(1.0));
            }
            other => panic!("expected failover, got {other:?}"),
        }
        assert_eq!(rs.stats().failovers, 1);
    }

    #[test]
    fn failover_skips_unfetchable_and_misses_when_no_replica_survives() {
        let mut rs = store(3, 2, 10);
        rs.rebuild(&[7], |tid| owners(tid, 3));
        rs.touch(rs.directory().owners(7)[0], 7, t(0.0));
        rs.replicate(7);
        let [primary, secondary] = [rs.directory().owners(7)[0], rs.directory().owners(7)[1]];
        // Everything unfetchable: miss, no breaker probes issued.
        assert_eq!(
            rs.fetch_failover(2, 7, t(1.0), |_| false),
            ReplicaFetch::Miss
        );
        // Both replicas wiped: probes run, fail, and feed breakers.
        rs.wipe(primary);
        rs.wipe(secondary);
        let serving = (0..3u32)
            .find(|s| *s != primary && *s != secondary)
            .unwrap();
        assert_eq!(
            rs.fetch_failover(serving, 7, t(2.0), |_| true),
            ReplicaFetch::Miss
        );
        assert!(rs.stats().fallbacks >= 1, "failed probes are recorded");
    }

    #[test]
    fn wipe_carries_stats_and_repeated_probes_trip_the_breaker() {
        let mut rs = store(2, 2, 10);
        rs.rebuild(&[1, 2, 3], |tid| owners(tid, 2));
        for tid in [1, 2, 3] {
            rs.touch(0, tid, t(0.0));
            rs.replicate(tid);
        }
        let before = rs.stats();
        rs.wipe(0);
        assert_eq!(rs.stats().host_hits, before.host_hits, "stats survive");
        // Shard 1 probes the wiped shard repeatedly; with the default
        // threshold of 3 the breaker opens and later walks
        // short-circuit.
        for (i, tid) in [1u64, 2, 3, 1].iter().enumerate() {
            let _ = rs.fetch_failover(1, *tid, t(1.0 + i as f64), |s| s == 0);
        }
        assert!(rs.breaker_trips() >= 1);
        assert!(rs.stats().breaker_short_circuits >= 1);
    }

    #[test]
    fn rebuild_re_primes_moved_templates_onto_new_owners() {
        let mut rs = store(3, 2, 10);
        rs.rebuild(&[5], |tid| owners(tid, 3));
        rs.touch(rs.directory().owners(5)[0], 5, t(0.0));
        rs.replicate(5);
        // Churn reshuffles placement: shard 1 (previously a non-owner)
        // becomes an owner and must receive a copy.
        let moved = rs.rebuild(&[5], |_| vec![1, 0]);
        assert!(moved >= 1, "new owner received a copy");
        assert_eq!(rs.store(1).unwrap().locate(5), Some(Tier::Disk));
        assert_eq!(rs.directory().owners(5), &[1, 0]);
        assert_eq!(rs.stats().re_primes, moved);
        // Rebuild with no movement re-primes nothing.
        assert_eq!(rs.rebuild(&[5], |_| vec![1, 0]), 0);
    }

    #[test]
    fn rebuild_with_no_surviving_holder_leaves_template_cold() {
        let mut rs = store(2, 1, 10);
        rs.rebuild(&[9], |_| vec![0]);
        rs.touch(0, 9, t(0.0));
        rs.wipe(0);
        let moved = rs.rebuild(&[9], |_| vec![1]);
        assert_eq!(moved, 0, "nothing to copy from");
        assert_eq!(rs.store(1).unwrap().locate(9), None);
    }

    #[test]
    fn ensure_shard_grows_for_mid_run_joins() {
        let mut rs = store(2, 2, 10);
        assert!(rs.store(5).is_none());
        rs.touch(5, 1, t(0.0));
        assert!(rs.store(5).is_some());
        assert_eq!(rs.store(5).unwrap().locate(1), Some(Tier::Host));
    }

    #[test]
    fn directory_truncates_to_r_and_reports_shape() {
        let mut d = ReplicaDirectory::new(2);
        assert!(d.is_empty());
        d.set(1, vec![3, 1, 4, 1, 5]);
        assert_eq!(d.owners(1), &[3, 1]);
        assert_eq!(d.owners(99), &[] as &[u32]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.replicas(), 2);
        assert_eq!(ReplicaDirectory::new(0).replicas(), 1, "R clamps to 1");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn splitmix64(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Ring-preference stand-in over an explicit live-shard set:
        /// rotation of the sorted live list keyed by a template hash.
        fn prefer(live: &[u32], template: u64, seed: u64) -> Vec<u32> {
            let mut sorted = live.to_vec();
            sorted.sort_unstable();
            let start = (splitmix64(template.wrapping_add(seed)) % sorted.len() as u64) as usize;
            (0..sorted.len())
                .map(|k| sorted[(start + k) % sorted.len()])
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            // Unbounded budget: every live template keeps exactly R
            // replicas across churn — shards leave and join, wipes hit
            // random shards, and each rebuild restores the invariant
            // for both policies.
            #[test]
            fn every_template_keeps_r_replicas_across_churn(
                seed in 0u64..10_000,
                replicas in 1usize..=3,
                n_templates in 1u64..24,
                spec_pop in proptest::bool::ANY,
                ops in proptest::collection::vec(0u8..3, 1..10),
            ) {
                let shards = 6u32;
                let spec = if spec_pop { PlacementSpec::Popularity } else { PlacementSpec::RingOrder };
                let bytes = 100u64;
                let mut rs = ReplicatedStore::new(
                    shards,
                    replicas,
                    StoreConfig { host_capacity: bytes * 64, disk_capacity: u64::MAX, disk_read_bw: 1000.0 },
                    BreakerConfig::default(),
                    bytes,
                )
                .with_placement(spec);
                let templates: Vec<u64> = (0..n_templates).collect();
                let mut live: Vec<u32> = (0..shards).collect();
                rs.prime_all(&templates, |t| prefer(&live, t, seed), |t| t, t(0.0));
                for (i, &op) in ops.iter().enumerate() {
                    let r = splitmix64(seed ^ (i as u64) << 32);
                    match op {
                        // A shard leaves (never below R live shards).
                        0 if live.len() > replicas => {
                            live.remove((r % live.len() as u64) as usize);
                        }
                        // A departed shard rejoins.
                        1 => {
                            if let Some(s) = (0..shards).find(|s| !live.contains(s)) {
                                live.push(s);
                            }
                        }
                        // A live shard's cache is wiped in place.
                        _ => {
                            rs.wipe(live[(r % live.len() as u64) as usize]);
                        }
                    }
                    rs.rebuild_weighted(&templates, |t| prefer(&live, t, seed), |t| t);
                    for &template in &templates {
                        let owners = rs.directory().owners(template);
                        prop_assert_eq!(
                            owners.len(),
                            replicas.min(live.len()),
                            "template {} owners {:?} live {:?}",
                            template, owners, live
                        );
                        let mut uniq = owners.to_vec();
                        uniq.sort_unstable();
                        uniq.dedup();
                        prop_assert_eq!(uniq.len(), owners.len(), "duplicate owners");
                        prop_assert!(owners.iter().all(|s| live.contains(s)), "dead owner");
                    }
                }
            }

            // Finite budget: no plan ever assigns more bytes to a shard
            // than its capacity, under either policy, any replication
            // target, and any popularity skew.
            #[test]
            fn plans_never_exceed_the_per_shard_budget(
                seed in 0u64..10_000,
                replicas in 1usize..=3,
                n_templates in 1u64..40,
                budget_templates in 1u64..8,
                spec_pop in proptest::bool::ANY,
            ) {
                let shards = 5u32;
                let bytes = 100u64;
                let spec = if spec_pop { PlacementSpec::Popularity } else { PlacementSpec::RingOrder };
                let mut rs = ReplicatedStore::new(
                    shards,
                    replicas,
                    StoreConfig { host_capacity: bytes * 64, disk_capacity: u64::MAX, disk_read_bw: 1000.0 },
                    BreakerConfig::default(),
                    bytes,
                )
                .with_placement(spec)
                .with_replica_budget(budget_templates * bytes);
                let templates: Vec<u64> = (0..n_templates).collect();
                let live: Vec<u32> = (0..shards).collect();
                let plan = rs.plan(
                    &templates,
                    |t| prefer(&live, t, seed),
                    |t| splitmix64(t ^ seed) % 100,
                );
                let mut planned = vec![0u64; shards as usize];
                for (_, owners) in &plan.assignments {
                    for &s in owners {
                        planned[s as usize] += bytes;
                        prop_assert!(
                            planned[s as usize] <= budget_templates * bytes,
                            "shard {} over budget", s
                        );
                    }
                }
            }

            // The default policy is byte-identical to the pre-refactor
            // store: owners are exactly `prefer(t).take(R)` on any
            // seeded preference order, and a store built without
            // `with_placement` plans the same bytes as an explicit
            // ring-order one.
            #[test]
            fn ring_order_is_byte_identical_to_prefer_take_r(
                seed in 0u64..10_000,
                replicas in 1usize..=3,
                n_templates in 1u64..32,
            ) {
                let shards = 6u32;
                let bytes = 100u64;
                let cfg = StoreConfig { host_capacity: bytes * 64, disk_capacity: u64::MAX, disk_read_bw: 1000.0 };
                let mut legacy = ReplicatedStore::new(shards, replicas, cfg, BreakerConfig::default(), bytes);
                let mut explicit = ReplicatedStore::new(shards, replicas, cfg, BreakerConfig::default(), bytes)
                    .with_placement(PlacementSpec::RingOrder);
                let templates: Vec<u64> = (0..n_templates).collect();
                let live: Vec<u32> = (0..shards).collect();
                let a = legacy.plan(&templates, |t| prefer(&live, t, seed), |t| t);
                let b = explicit.plan(&templates, |t| prefer(&live, t, seed), |t| t);
                prop_assert_eq!(&a, &b, "default and explicit ring-order diverge");
                for (template, owners) in &a.assignments {
                    let want: Vec<u32> = prefer(&live, *template, seed)
                        .into_iter()
                        .take(replicas)
                        .collect();
                    prop_assert_eq!(owners, &want, "template {}", template);
                }
            }
        }
    }
}
