//! Pluggable replica-placement policy under per-shard byte budgets.
//!
//! PR 7's `ReplicatedStore` placed every template on the first R shards
//! of the ring's preference order — correct, but blind: a shard's
//! budget fills with whatever template ids happen to hash first, and a
//! hot template competes for bytes on exactly the same terms as one
//! nobody has requested in an hour. This module splits *where replicas
//! go* out of the store behind [`PlacementPolicy`]:
//!
//! - [`RingOrderPolicy`] reproduces the legacy behavior exactly —
//!   owners are `prefer(t).take(R)`, admitted in template-id order
//!   against the budget (with an unbounded budget this is byte-for-byte
//!   the pre-refactor placement, which the seeded-fingerprint test in
//!   `fig_cache_placement` pins).
//! - [`PopularityPolicy`] admits templates hottest-first, so when the
//!   per-shard budget binds, the bytes go to the templates that save
//!   the most recomputes. Each template still *prefers* its ring order
//!   (owners double as the affinity router's candidate walk, so keeping
//!   the primary on `prefer(t)[0]` converts placements into local hits
//!   rather than peer fetches) but skips capacity-infeasible shards and
//!   falls back to the least-planned feasible shard when the ring
//!   choices are full.
//!
//! Policies are pure planners: they read a [`PlacementContext`] and
//! return a [`PlacementPlan`]; the store applies it (copying bytes,
//! counting re-primes, evicting ex-owner replicas when the budget is
//! finite). Planning is deterministic — template order, tie-breaks, and
//! shard walks are all explicit — so seeded replays stay byte-identical.

/// A shard's replica-byte ledger during planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBudget {
    /// Shard id.
    pub shard: u32,
    /// Replica bytes this shard may hold (`u64::MAX` = unbounded).
    pub capacity_bytes: u64,
    /// Bytes the plan has already assigned to this shard.
    pub planned_bytes: u64,
}

impl ShardBudget {
    /// Whether `bytes` more fit under the capacity.
    pub fn fits(&self, bytes: u64) -> bool {
        self.planned_bytes.saturating_add(bytes) <= self.capacity_bytes
    }
}

/// Everything a policy may consult when planning placements.
pub struct PlacementContext<'a> {
    /// Sorted universe of live template ids.
    pub templates: &'a [u64],
    /// Replication target R (≥ 1).
    pub replicas: usize,
    /// Uniform per-template activation footprint, bytes.
    pub template_bytes: u64,
    /// Ring preference order over live shards for a key.
    pub prefer: &'a dyn Fn(u64) -> Vec<u32>,
    /// Observed (or prior) request count per template.
    pub popularity: &'a dyn Fn(u64) -> u64,
    /// One ledger per live shard, `planned_bytes` zeroed by the caller.
    pub budgets: &'a mut Vec<ShardBudget>,
}

/// A full placement decision: every template in `templates`, in the
/// order the policy decided them, with its owners primary-first
/// (possibly fewer than R — or empty — when the budget refused
/// admission).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementPlan {
    /// `(template_id, owners)` in decision order.
    pub assignments: Vec<(u64, Vec<u32>)>,
}

impl PlacementPlan {
    /// Total replica copies the plan places.
    pub fn copies(&self) -> usize {
        self.assignments.iter().map(|(_, o)| o.len()).sum()
    }
}

/// Decides which R shards hold each template's replicas.
pub trait PlacementPolicy: std::fmt::Debug + Send {
    /// Stable label for reports and trace spans.
    fn name(&self) -> &'static str;

    /// Whether popularity drift should trigger periodic re-planning.
    /// Ring order ignores popularity, so re-running it is a no-op and
    /// the caller skips the tick entirely (keeping legacy runs
    /// byte-identical).
    fn reacts_to_popularity(&self) -> bool {
        false
    }

    /// Plans owners for every template in `ctx.templates`, debiting
    /// `ctx.budgets` as it assigns.
    fn plan(&self, ctx: &mut PlacementContext) -> PlacementPlan;
}

/// Legacy placement: owners are the first R capacity-feasible shards of
/// the ring preference order, templates admitted in id order. With an
/// unbounded budget this is exactly `prefer(t).take(R)` — the
/// pre-refactor `ReplicatedStore` behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingOrderPolicy;

impl PlacementPolicy for RingOrderPolicy {
    fn name(&self) -> &'static str {
        "ring-order"
    }

    fn plan(&self, ctx: &mut PlacementContext) -> PlacementPlan {
        let mut assignments = Vec::with_capacity(ctx.templates.len());
        for &template in ctx.templates {
            let mut owners = Vec::with_capacity(ctx.replicas);
            for shard in (ctx.prefer)(template) {
                if owners.len() == ctx.replicas {
                    break;
                }
                if let Some(b) = ctx.budgets.iter_mut().find(|b| b.shard == shard) {
                    if b.fits(ctx.template_bytes) {
                        b.planned_bytes += ctx.template_bytes;
                        owners.push(shard);
                    }
                } else {
                    // Shard unknown to the ledger (mid-run join the
                    // caller has not budgeted yet): legacy semantics,
                    // admit unbounded.
                    owners.push(shard);
                }
            }
            assignments.push((template, owners));
        }
        PlacementPlan { assignments }
    }
}

/// Popularity-weighted placement: templates are admitted hottest-first
/// (ties broken by id for determinism), each taking the first R
/// capacity-feasible shards of its ring preference order, then — if the
/// ring choices are full — the least-planned feasible shard. When the
/// budget binds, cold-tail templates get fewer (or zero) replicas
/// instead of crowding out hot ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PopularityPolicy;

impl PlacementPolicy for PopularityPolicy {
    fn name(&self) -> &'static str {
        "popularity"
    }

    fn reacts_to_popularity(&self) -> bool {
        true
    }

    fn plan(&self, ctx: &mut PlacementContext) -> PlacementPlan {
        let mut order: Vec<u64> = ctx.templates.to_vec();
        order.sort_by(|a, b| {
            (ctx.popularity)(*b)
                .cmp(&(ctx.popularity)(*a))
                .then(a.cmp(b))
        });
        let mut assignments = Vec::with_capacity(order.len());
        for template in order {
            let pref = (ctx.prefer)(template);
            let mut owners: Vec<u32> = Vec::with_capacity(ctx.replicas);
            // Ring order first: owners double as the affinity router's
            // candidate walk, so a feasible ring shard converts the
            // placement into local hits.
            for &shard in &pref {
                if owners.len() == ctx.replicas {
                    break;
                }
                let Some(b) = ctx.budgets.iter_mut().find(|b| b.shard == shard) else {
                    continue;
                };
                if b.fits(ctx.template_bytes) {
                    b.planned_bytes += ctx.template_bytes;
                    owners.push(shard);
                }
            }
            // Ring choices full: spill remaining replicas onto the
            // least-planned feasible shards (tie by shard id).
            while owners.len() < ctx.replicas {
                let next = ctx
                    .budgets
                    .iter()
                    .filter(|b| !owners.contains(&b.shard) && b.fits(ctx.template_bytes))
                    .min_by(|a, b| {
                        a.planned_bytes
                            .cmp(&b.planned_bytes)
                            .then(a.shard.cmp(&b.shard))
                    })
                    .map(|b| b.shard);
                match next {
                    Some(shard) => {
                        let b = ctx.budgets.iter_mut().find(|b| b.shard == shard).unwrap();
                        b.planned_bytes += ctx.template_bytes;
                        owners.push(shard);
                    }
                    None => break,
                }
            }
            assignments.push((template, owners));
        }
        PlacementPlan { assignments }
    }
}

/// Clonable, config-friendly selector for a [`PlacementPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlacementSpec {
    /// Legacy ring-preference placement ([`RingOrderPolicy`]).
    #[default]
    RingOrder,
    /// Hot-first admission ([`PopularityPolicy`]).
    Popularity,
}

impl PlacementSpec {
    /// Builds the policy.
    pub fn build(self) -> Box<dyn PlacementPolicy> {
        match self {
            Self::RingOrder => Box::new(RingOrderPolicy),
            Self::Popularity => Box::new(PopularityPolicy),
        }
    }

    /// Stable label, matching the built policy's `name()`.
    pub fn name(self) -> &'static str {
        match self {
            Self::RingOrder => "ring-order",
            Self::Popularity => "popularity",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budgets(shards: u32, cap: u64) -> Vec<ShardBudget> {
        (0..shards)
            .map(|shard| ShardBudget {
                shard,
                capacity_bytes: cap,
                planned_bytes: 0,
            })
            .collect()
    }

    fn ring(template: u64, shards: u32) -> Vec<u32> {
        (0..shards)
            .map(|k| ((template + k as u64) % shards as u64) as u32)
            .collect()
    }

    #[test]
    fn ring_order_unbounded_matches_prefer_take_r() {
        let templates: Vec<u64> = (0..12).collect();
        let mut b = budgets(4, u64::MAX);
        let plan = RingOrderPolicy.plan(&mut PlacementContext {
            templates: &templates,
            replicas: 2,
            template_bytes: 100,
            prefer: &|t| ring(t, 4),
            popularity: &|_| 0,
            budgets: &mut b,
        });
        assert_eq!(plan.assignments.len(), 12);
        for (t, owners) in &plan.assignments {
            let want: Vec<u32> = ring(*t, 4).into_iter().take(2).collect();
            assert_eq!(owners, &want, "template {t}");
        }
    }

    #[test]
    fn popularity_admits_hot_templates_when_budget_binds() {
        // Budget for one copy per shard; four templates all prefer
        // shard 0 first. Hot template 3 must win admission there.
        let templates: Vec<u64> = vec![0, 1, 2, 3];
        let mut b = budgets(2, 100);
        let plan = PopularityPolicy.plan(&mut PlacementContext {
            templates: &templates,
            replicas: 1,
            template_bytes: 100,
            prefer: &|_| vec![0, 1],
            popularity: &|t| t * 10,
            budgets: &mut b,
        });
        assert_eq!(plan.assignments[0], (3, vec![0]), "hottest takes primary");
        assert_eq!(plan.assignments[1], (2, vec![1]), "next spills to shard 1");
        assert_eq!(plan.assignments[2].1, Vec::<u32>::new(), "budget refuses");
        assert_eq!(plan.assignments[3].1, Vec::<u32>::new());
        assert!(b.iter().all(|s| s.planned_bytes <= s.capacity_bytes));
    }

    #[test]
    fn popularity_spills_off_ring_when_preferred_shards_fill() {
        // Two shards on every preference list, three available: the
        // third replica set lands on the least-planned shard 2.
        let templates: Vec<u64> = vec![7];
        let mut b = budgets(3, 1000);
        b[0].planned_bytes = 1000;
        b[1].planned_bytes = 1000;
        let plan = PopularityPolicy.plan(&mut PlacementContext {
            templates: &templates,
            replicas: 2,
            template_bytes: 100,
            prefer: &|_| vec![0, 1],
            popularity: &|_| 1,
            budgets: &mut b,
        });
        assert_eq!(plan.assignments[0].1, vec![2], "only shard 2 feasible");
    }

    #[test]
    fn spec_builds_matching_names() {
        assert_eq!(PlacementSpec::RingOrder.build().name(), "ring-order");
        assert_eq!(PlacementSpec::Popularity.build().name(), "popularity");
        assert_eq!(PlacementSpec::default(), PlacementSpec::RingOrder);
        assert!(!RingOrderPolicy.reacts_to_popularity());
        assert!(PopularityPolicy.reacts_to_popularity());
    }
}
