//! The FlashPS cache engine (§4.2 of the paper).
//!
//! Two halves:
//!
//! - [`pipeline`] implements **Algorithm 1**: the dynamic program that
//!   decides, per transformer block, whether to consume cached
//!   activations (and pay their load latency on the copy stream) or to
//!   recompute all tokens (and pay full compute), minimizing the
//!   bubble-free pipeline's end-to-end latency. Both the O(N²)
//!   uniform-block DP and a general Pareto-frontier DP for
//!   heterogeneous blocks are provided, plus the naive / strawman /
//!   ideal reference schedules of Fig. 9 and Fig. 4-left.
//! - [`store`] implements the **hierarchical activation store**: host
//!   memory in front of disk with LRU eviction, byte-level sizing per
//!   Table 1, and prefetch-while-queued from disk to host (the
//!   state-of-practice KV-cache trick the paper adopts).

pub mod error;
pub mod pipeline;
pub mod placement;
pub mod replica;
pub mod store;

pub use error::CacheError;
pub use pipeline::{BlockCosts, PipelinePlan};
pub use placement::{
    PlacementContext, PlacementPlan, PlacementPolicy, PlacementSpec, PopularityPolicy,
    RingOrderPolicy, ShardBudget,
};
pub use replica::{ReplicaDirectory, ReplicaFetch, ReplicatedStore};
pub use store::{FallbackReason, HierarchicalStore, StoreConfig, StoreStats, Tier, VerifiedFetch};

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, CacheError>;
