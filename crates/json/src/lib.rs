//! Dependency-free JSON for FlashPS artifacts.
//!
//! The workspace serializes traces, experiment points, and degradation
//! reports to JSON without external crates. Numbers keep their lexical
//! class — unsigned integers parse to [`Json::U64`], negative integers
//! to [`Json::I64`], everything else to [`Json::F64`] — so 64-bit
//! seeds round-trip exactly instead of being squeezed through a
//! double. Object member order is preserved.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer literal (no `.`, `e`, or sign).
    U64(u64),
    /// Negative integer literal.
    I64(i64),
    /// Any other number literal.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object, in insertion order.
    Object(Vec<(String, Json)>),
}

/// Conversion into a [`Json`] tree (the stand-in for `serde::Serialize`).
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! impl_to_json_from {
    ($($t:ty => $via:expr),* $(,)?) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json {
                #[allow(clippy::redundant_closure_call)]
                ($via)(v)
            }
        }
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::from(self.clone())
            }
        }
    )*};
}

impl_to_json_from!(
    bool => Json::Bool,
    u8 => |v| Json::U64(u64::from(v)),
    u16 => |v| Json::U64(u64::from(v)),
    u32 => |v| Json::U64(u64::from(v)),
    u64 => Json::U64,
    usize => |v| Json::U64(v as u64),
    i32 => |v: i32| if v < 0 { Json::I64(i64::from(v)) } else { Json::U64(v as u64) },
    i64 => |v: i64| if v < 0 { Json::I64(v) } else { Json::U64(v as u64) },
    f32 => |v| Json::F64(f64::from(v)),
    f64 => Json::F64,
    String => Json::Str,
    &str => |v: &str| Json::Str(v.to_string()),
);

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl Json {
    /// Starts an empty object; chain [`Json::with`] to fill it.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends one member to an object (panics on non-objects, which
    /// would be a programming error in a serializer).
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(members) => members.push((key.to_string(), value.into())),
            other => panic!("Json::with on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::U64(v) => i64::try_from(v).ok(),
            Json::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `f64` for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    /// Parses a JSON document (the whole input must be one value).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => render_f64(out, *v),
            Json::Str(s) => render_string(out, s),
            Json::Array(items) => {
                render_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                    items[i].render(out, indent, d);
                });
            }
            Json::Object(members) => {
                render_seq(out, indent, depth, members.len(), '{', '}', |out, i, d| {
                    let (key, value) = &members[i];
                    render_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.render(out, indent, d);
                });
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

/// `{:?}` on finite doubles is Rust's shortest round-trip decimal,
/// which is also valid JSON (`1.0`, not `1`); non-finite values have
/// no JSON spelling and degrade to `null` like serde_json.
fn render_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte '{}' at {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: decode the low half when
                            // a high surrogate is followed by \uXXXX.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.pos)
                            })?);
                        }
                        other => {
                            return Err(format!(
                                "invalid escape '\\{}' at byte {}",
                                other as char,
                                self.pos - 1
                            ))
                        }
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid utf-8 near byte {start}"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let text = std::str::from_utf8(chunk)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !fractional {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(v) = digits.parse::<u64>() {
                    if let Ok(signed) = i64::try_from(v) {
                        return Ok(Json::I64(-signed));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

/// Fetches a required object member (serde-style missing-field error).
///
/// # Errors
///
/// Names the missing `key` when absent.
pub fn required<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_seeds_round_trip_exactly() {
        let seeds = [0u64, 1, u64::MAX, u64::MAX - 1, 0xDEAD_BEEF_CAFE_F00D];
        for seed in seeds {
            let rendered = Json::U64(seed).to_string_compact();
            let back = Json::parse(&rendered).unwrap();
            assert_eq!(back.as_u64(), Some(seed));
        }
    }

    #[test]
    fn f64_round_trips_via_shortest_repr() {
        for v in [0.0, 0.1, 1.0 / 3.0, 123.456e-7, -2.5, f64::MIN_POSITIVE] {
            let rendered = Json::F64(v).to_string_compact();
            let back = Json::parse(&rendered).unwrap();
            assert_eq!(back.as_f64(), Some(v), "{rendered}");
        }
    }

    #[test]
    fn object_builder_and_accessors() {
        let j = Json::object()
            .with("name", "flashps")
            .with("count", 3u64)
            .with("ratio", 0.25)
            .with("flags", Json::Array(vec![Json::Bool(true), Json::Null]));
        assert_eq!(j.get("name").and_then(Json::as_str), Some("flashps"));
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("ratio").and_then(Json::as_f64), Some(0.25));
        assert_eq!(
            j.get("flags").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(j.get("absent").is_none());
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#" { "a" : [ 1 , -2 , 3.5 , { "b" : "x\ny" } ] , "c" : null } "#;
        let j = Json::parse(doc).unwrap();
        let a = j.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_i64(), Some(-2));
        assert_eq!(a[2].as_f64(), Some(3.5));
        assert_eq!(a[3].get("b").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(j.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "not json", "[1,", "{\"a\":}", "[1] tail", "\"open", "{1:2}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn missing_field_errors_name_the_field() {
        let j = Json::parse(r#"{"id": 1}"#).unwrap();
        assert!(required(&j, "id").is_ok());
        let err = required(&j, "seed").unwrap_err();
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn pretty_rendering_is_reparseable() {
        let j = Json::parse(r#"{"a":[1,2],"b":{"c":"d"},"e":[]}"#).unwrap();
        let pretty = j.to_string_pretty();
        assert!(pretty.contains("\n  "));
        assert_eq!(Json::parse(&pretty).unwrap(), j);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" back\\ nl\n tab\t ctl\u{1} unicode✓";
        let rendered = Json::Str(s.to_string()).to_string_compact();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(s));
        // Surrogate-pair escape decodes to one char.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("😀")
        );
    }

    #[test]
    fn to_json_trait_covers_primitives_and_vecs() {
        assert_eq!(5u64.to_json(), Json::U64(5));
        assert_eq!((-5i64).to_json(), Json::I64(-5));
        assert_eq!(7i64.to_json(), Json::U64(7));
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!("s".to_json(), Json::Str("s".into()));
        assert_eq!(
            vec![1u32, 2].to_json(),
            Json::Array(vec![Json::U64(1), Json::U64(2)])
        );
    }
}
