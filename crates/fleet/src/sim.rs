//! The virtual-time fleet simulator.
//!
//! One [`FleetSim`] run drives a [`FleetTrace`] through `n` shards.
//! Each shard is an independent serving unit: its own clock-generic
//! [`ControlPlane`] (admission, degradation ladder — the exact policy
//! code the single-cluster simulator and the threaded server consult),
//! its own worker pool, and its own LRU activation cache keyed by
//! template. Above the shards sit the two fleet-level policies under
//! study: the [`FleetRouter`] choosing a shard per request, and one
//! [`Autoscaler`] per shard resizing its pool from windowed SLO
//! signals.
//!
//! The simulator is built for *scale*: workers are analytic k-server
//! FIFO pools ([`MultiResource`] — `acquire` returns the start/finish
//! pair immediately), so a request costs exactly two events (arrival
//! and completion) regardless of its step count. A million-request
//! fleet run is ~2M events, which is what the calendar-queue scheduler
//! is gated on in `bench_simtime`. Everything is deterministic in the
//! trace: two runs of the same config serialize to byte-identical
//! reports, on either scheduler.
//!
//! [`ControlPlane`]: fps_serving::ControlPlane

use std::collections::HashMap;

use fps_json::{Json, ToJson};
use fps_metrics::{FleetSloReport, Histogram, ShardSloReport, SloReport};
use fps_serving::cost::BatchItem;
use fps_serving::{
    Assessment, ControlPlane, CostModel, EngineKind, GpuSpec, LeastLoadedRouter, OverloadConfig,
    OverloadState, TimeSource, TraceSink, Track,
};
use fps_simtime::{
    CalendarQueue, EventHandler, EventQueue, EventScheduler, MultiResource, SimDuration, SimTime,
    Simulation,
};
use fps_workload::FleetTrace;

use crate::autoscaler::{Autoscaler, AutoscalerConfig, ScaleDecision, ShardSignal};
use crate::ring::HashRing;
use crate::router::{FleetRouter, RouteStrategy, ShardLoad};

/// Fleet-run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards.
    pub shards: u32,
    /// Initial worker-pool size per shard.
    pub workers_per_shard: usize,
    /// Concurrent service lanes per worker.
    pub max_batch: usize,
    /// SLO deadline, seconds from arrival.
    pub deadline_secs: f64,
    /// Shard-selection policy.
    pub strategy: RouteStrategy,
    /// Per-shard activation-cache capacity, in templates.
    pub cache_capacity: usize,
    /// Autoscaling policy; `None` freezes the pools.
    pub autoscaler: Option<AutoscalerConfig>,
    /// Seconds between autoscaler observation windows.
    pub scale_interval_secs: f64,
    /// Typical mask ratio of the offered load (sizes the admission
    /// estimates, exactly as in the cluster simulator).
    pub mean_mask_ratio: f64,
    /// Let the degradation ladder cut steps under pressure. Routing
    /// experiments pin this off: a shard that rides out cache misses by
    /// serving fewer denoising steps converts the miss penalty into
    /// quality loss that latency metrics cannot see, which would make
    /// strategies incomparable at equal output quality.
    pub allow_degradation: bool,
    /// Trace sink for route/scale/decision events.
    pub trace: TraceSink,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            workers_per_shard: 2,
            max_batch: 4,
            deadline_secs: 30.0,
            strategy: RouteStrategy::Affinity { load_factor: 1.25 },
            cache_capacity: 16,
            autoscaler: None,
            scale_interval_secs: 10.0,
            mean_mask_ratio: 0.11,
            allow_degradation: true,
            trace: TraceSink::disabled(),
        }
    }
}

/// What one fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Strategy label of the run.
    pub strategy: &'static str,
    /// Per-shard SLO accounting with mergeable histograms.
    pub shard_reports: Vec<ShardSloReport>,
    /// Histogram-merged fleet rollup.
    pub fleet: FleetSloReport,
    /// Requests whose template was already in the serving shard's
    /// activation cache.
    pub cache_hits: u64,
    /// Requests that recomputed from scratch.
    pub cache_misses: u64,
    /// Affinity placements that bypassed a saturated primary.
    pub spills: u64,
    /// Scale-up actions across all shards.
    pub scale_ups: u64,
    /// Scale-down actions across all shards.
    pub scale_downs: u64,
    /// Worker-pool sizes at the end of the run.
    pub final_workers: Vec<usize>,
    /// Virtual seconds from first arrival to last completion.
    pub makespan_secs: f64,
    /// Total events the scheduler processed.
    pub events_processed: u64,
}

impl FleetReport {
    /// Activation-cache hit rate over served requests.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl ToJson for FleetReport {
    fn to_json(&self) -> Json {
        Json::object()
            .with("strategy", self.strategy)
            .with("fleet", self.fleet.to_json())
            .with("shards", self.shard_reports.to_json())
            .with("cache_hits", self.cache_hits)
            .with("cache_misses", self.cache_misses)
            .with("hit_rate", self.hit_rate())
            .with("spills", self.spills)
            .with("scale_ups", self.scale_ups)
            .with("scale_downs", self.scale_downs)
            .with(
                "final_workers",
                Json::Array(
                    self.final_workers
                        .iter()
                        .map(|&w| Json::U64(w as u64))
                        .collect(),
                ),
            )
            .with("makespan_secs", self.makespan_secs)
            .with("events_processed", self.events_processed)
    }
}

/// Deterministic LRU cache over template ids.
#[derive(Debug)]
struct TemplateCache {
    capacity: usize,
    last_use: HashMap<u64, u64>,
    tick: u64,
}

impl TemplateCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            last_use: HashMap::new(),
            tick: 0,
        }
    }

    /// Looks up and touches `template`; on miss, inserts it (evicting
    /// the least-recently-used entry — ties broken by template id, so
    /// eviction never depends on map iteration order).
    fn touch(&mut self, template: u64) -> bool {
        self.tick += 1;
        if let Some(t) = self.last_use.get_mut(&template) {
            *t = self.tick;
            return true;
        }
        if self.last_use.len() >= self.capacity {
            let victim = self
                .last_use
                .iter()
                .map(|(&k, &t)| (t, k))
                .min()
                .expect("non-empty at capacity")
                .1;
            self.last_use.remove(&victim);
        }
        self.last_use.insert(template, self.tick);
        false
    }

    /// Inserts without counting a miss (pre-priming).
    fn prime(&mut self, template: u64) {
        if self.last_use.len() < self.capacity {
            self.tick += 1;
            self.last_use.entry(template).or_insert(self.tick);
        }
    }
}

/// Windowed counters feeding the autoscaler, reset every scale tick.
#[derive(Debug, Default)]
struct Window {
    submitted: u64,
    turned_away: u64,
    queue_waits: Vec<f64>,
}

impl Window {
    fn signal(&mut self, utilization: f64) -> ShardSignal {
        let shed_rate = if self.submitted == 0 {
            0.0
        } else {
            self.turned_away as f64 / self.submitted as f64
        };
        self.queue_waits
            .sort_by(|a, b| a.partial_cmp(b).expect("finite waits"));
        let p95 = if self.queue_waits.is_empty() {
            0.0
        } else {
            let ix = ((self.queue_waits.len() as f64 * 0.95).ceil() as usize)
                .clamp(1, self.queue_waits.len());
            self.queue_waits[ix - 1]
        };
        let s = ShardSignal {
            shed_rate,
            queue_wait_p95_secs: p95,
            utilization,
        };
        *self = Self::default();
        s
    }
}

/// One shard's live state.
struct Shard {
    plane: ControlPlane<LeastLoadedRouter>,
    /// One k-server pool per worker (`max_batch` lanes each).
    pools: Vec<MultiResource>,
    cache: TemplateCache,
    scaler: Option<Autoscaler>,
    outstanding: usize,
    window: Window,
    // Accounting.
    submitted: u64,
    served: u64,
    served_within_deadline: u64,
    shed: u64,
    deadline_rejected: u64,
    rung_served: Vec<(&'static str, u64)>,
    latency_hist: Histogram,
    queue_wait_hist: Histogram,
}

/// Fleet events: two per request plus periodic scale ticks. Public so
/// callers can plug in their own [`EventScheduler`] via
/// [`FleetSim::run_with_scheduler`].
#[derive(Debug, Clone, Copy)]
pub enum FleetEv {
    /// Request `trace[i]` arrives at the fleet front door.
    Arrival(usize),
    /// A request completes on `shard`.
    Done {
        /// The shard whose worker finished.
        shard: u32,
    },
    /// Autoscaler observation window closes.
    ScaleTick,
}

struct World<'a> {
    trace: &'a FleetTrace,
    shards: Vec<Shard>,
    router: FleetRouter,
    cost: CostModel,
    engine: EngineKind,
    config: FleetConfig,
    deadline: SimDuration,
    spills: u64,
    cache_hits: u64,
    cache_misses: u64,
    last_completion: SimTime,
    inflight: usize,
    next_arrival: usize,
}

impl World<'_> {
    fn shard_loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardLoad {
                shard: i as u32,
                outstanding: s.outstanding,
                lanes: s.pools.len() * self.config.max_batch,
            })
            .collect()
    }

    /// Service seconds for one request at `steps` denoising steps.
    /// Cache hits compute only the masked region; misses recompute the
    /// full latent (mask ratio 1.0) — the fleet-level cost of losing
    /// affinity.
    fn service_duration(&self, mask_ratio: f64, steps: usize, hit: bool) -> SimDuration {
        let ratio = if hit { mask_ratio } else { 1.0 };
        let step = self
            .engine
            .step_latency(&self.cost, &[BatchItem { mask_ratio: ratio }]);
        SimDuration::from_secs_f64(step.as_secs_f64() * steps as f64)
    }

    fn emit(&self, name: &'static str, shard: u32, ts: SimTime, args: Vec<(&'static str, Json)>) {
        if !self.config.trace.is_enabled() {
            return;
        }
        self.config
            .trace
            .event_at(name, "fleet", Track::new(2, shard), ts.as_nanos(), args);
    }
}

impl<Q: EventScheduler<FleetEv>> EventHandler<FleetEv, Q> for World<'_> {
    fn handle(&mut self, now: SimTime, event: FleetEv, queue: &mut Q) {
        match event {
            FleetEv::Arrival(i) => {
                self.next_arrival = self.next_arrival.max(i + 1);
                let req = &self.trace.trace.requests[i];
                let loads = self.shard_loads();
                let choice = self.router.choose(req.id, req.template_id, &loads);
                if choice.spilled {
                    self.spills += 1;
                }
                let sx = choice.shard as usize;
                self.emit(
                    "fleet_route",
                    choice.shard,
                    now,
                    vec![
                        ("id", Json::U64(req.id)),
                        ("template", Json::U64(req.template_id)),
                        ("spilled", Json::Bool(choice.spilled)),
                    ],
                );
                let shard = &mut self.shards[sx];
                shard.submitted += 1;
                shard.window.submitted += 1;
                let capacity = shard.pools.len() * self.config.max_batch;
                let assessment =
                    shard
                        .plane
                        .assess(req.id, now, shard.outstanding, capacity, false);
                let (rung, steps) = match assessment {
                    Assessment::Shed(_) => {
                        shard.shed += 1;
                        shard.window.turned_away += 1;
                        return;
                    }
                    Assessment::Serve { rung, steps } => (rung, steps),
                };
                // Earliest any lane frees: if even starting then blows
                // the deadline, reject before charging the pool.
                let free = shard
                    .pools
                    .iter()
                    .map(MultiResource::earliest_free)
                    .min()
                    .expect("at least one worker");
                let queue_wait = free.max(now).since(now);
                if queue_wait > self.deadline {
                    shard.deadline_rejected += 1;
                    shard.window.turned_away += 1;
                    return;
                }
                let hit = shard.cache.touch(req.template_id);
                if hit {
                    self.cache_hits += 1;
                } else {
                    self.cache_misses += 1;
                }
                let dur = self.service_duration(req.mask_ratio, steps, hit);
                let shard = &mut self.shards[sx];
                // Lane with the earliest opening, ties to the lowest
                // worker index: deterministic and work-conserving.
                let px = shard
                    .pools
                    .iter()
                    .enumerate()
                    .min_by_key(|(ix, p)| (p.earliest_free(), *ix))
                    .expect("non-empty")
                    .0;
                let (start, finish) = shard.pools[px].acquire(now, dur);
                let wait_secs = start.since(now).as_secs_f64();
                let latency_secs = finish.since(now).as_secs_f64();
                shard.served += 1;
                if finish.since(now) <= self.deadline {
                    shard.served_within_deadline += 1;
                }
                if let Some(r) = rung {
                    let label = r.label();
                    match shard.rung_served.iter_mut().find(|(l, _)| *l == label) {
                        Some((_, c)) => *c += 1,
                        None => shard.rung_served.push((label, 1)),
                    }
                }
                shard.latency_hist.record(latency_secs);
                shard.queue_wait_hist.record(wait_secs);
                shard.window.queue_waits.push(wait_secs);
                shard.outstanding += 1;
                self.inflight += 1;
                self.last_completion = self.last_completion.max(finish);
                queue.schedule_at(
                    finish,
                    FleetEv::Done {
                        shard: choice.shard,
                    },
                );
            }
            FleetEv::Done { shard } => {
                let s = &mut self.shards[shard as usize];
                s.outstanding = s.outstanding.saturating_sub(1);
                self.inflight -= 1;
            }
            FleetEv::ScaleTick => {
                for sx in 0..self.shards.len() {
                    let max_batch = self.config.max_batch;
                    let shard = &mut self.shards[sx];
                    let capacity = (shard.pools.len() * max_batch).max(1);
                    let utilization = (shard.outstanding as f64 / capacity as f64).min(1.0);
                    let signal = shard.window.signal(utilization);
                    let Some(scaler) = shard.scaler.as_mut() else {
                        continue;
                    };
                    let decision = scaler.observe(shard.pools.len(), &signal, now);
                    match decision {
                        ScaleDecision::Hold => {}
                        ScaleDecision::Up(n) => {
                            while shard.pools.len() < n {
                                shard.pools.push(MultiResource::new(max_batch));
                            }
                        }
                        ScaleDecision::Down(n) => {
                            shard.pools.truncate(n.max(1));
                        }
                    }
                    match decision {
                        ScaleDecision::Hold => {}
                        ScaleDecision::Up(n) => self.emit(
                            "scale_up",
                            sx as u32,
                            now,
                            vec![("workers", Json::U64(n as u64))],
                        ),
                        ScaleDecision::Down(n) => self.emit(
                            "scale_down",
                            sx as u32,
                            now,
                            vec![("workers", Json::U64(n as u64))],
                        ),
                    }
                }
                // Keep ticking only while the run still has work:
                // unconditional rescheduling would never terminate.
                if self.inflight > 0 || self.next_arrival < self.trace.trace.len() {
                    queue.schedule_after(
                        SimDuration::from_secs_f64(self.config.scale_interval_secs),
                        FleetEv::ScaleTick,
                    );
                }
            }
        }
    }
}

/// Runs fleet simulations. The scheduler is pluggable ([`FleetSim::run`] uses
/// the calendar queue, [`FleetSim::run_on_heap`] the binary heap) and the two
/// must produce byte-identical reports — the fleet-scale differential
/// test of the scheduler contract.
pub struct FleetSim;

impl FleetSim {
    /// Runs `trace` under `config` on the calendar-queue scheduler.
    pub fn run(config: FleetConfig, trace: &FleetTrace) -> FleetReport {
        Self::run_with_scheduler(config, trace, CalendarQueue::new())
    }

    /// Runs on the binary-heap scheduler (differential baseline).
    pub fn run_on_heap(config: FleetConfig, trace: &FleetTrace) -> FleetReport {
        Self::run_with_scheduler(config, trace, EventQueue::new())
    }

    /// Runs on an explicit scheduler.
    pub fn run_with_scheduler<Q: EventScheduler<FleetEv>>(
        config: FleetConfig,
        trace: &FleetTrace,
        queue: Q,
    ) -> FleetReport {
        let cost = CostModel::new(GpuSpec::h800(), ModelDefaults::paper());
        let engine = EngineKind::FlashPs { kv: true };
        let deadline = SimDuration::from_secs_f64(config.deadline_secs);
        let full_steps = cost.model.steps;
        let hist_hi = (config.deadline_secs * 4.0).max(1.0);
        let ring = HashRing::with_shards(config.shards.max(1));
        let mut shards: Vec<Shard> = (0..config.shards.max(1))
            .map(|sx| {
                let mut overload_cfg = OverloadConfig::for_cluster(
                    &cost,
                    config.workers_per_shard,
                    config.max_batch,
                    config.mean_mask_ratio,
                    deadline,
                );
                // `for_cluster` sizes the admission rate from the
                // batching server's wave model, where a slot turns over
                // once per full-batch wave. This simulator's pools are
                // k independent lanes, each serving one request at the
                // single-item step latency — noticeably faster — so an
                // admission bucket sized from waves sheds traffic the
                // shard could actually serve. Resize it from the
                // per-request service time the simulator charges.
                let per_req_secs = engine
                    .step_latency(
                        &cost,
                        &[BatchItem {
                            mask_ratio: config.mean_mask_ratio,
                        }],
                    )
                    .as_secs_f64()
                    * full_steps as f64;
                overload_cfg.admission = fps_overload::AdmissionConfig::for_capacity(
                    config.workers_per_shard.max(1) * config.max_batch,
                    per_req_secs,
                    config.deadline_secs,
                );
                if !config.allow_degradation {
                    // Unreachable enter thresholds pin the ladder at
                    // the premium rung: admission still sheds, but
                    // every served request gets full quality.
                    overload_cfg.ladder.enter = [f64::INFINITY; 4];
                }
                let state = OverloadState::new(
                    overload_cfg,
                    &cost,
                    config.max_batch,
                    config.mean_mask_ratio,
                );
                let plane =
                    ControlPlane::new(LeastLoadedRouter, TimeSource::virtual_clock(), full_steps)
                        .with_overload(Some(state))
                        .with_trace(config.trace.clone())
                        .with_control_track(Track::new(1, sx));
                Shard {
                    plane,
                    pools: (0..config.workers_per_shard.max(1))
                        .map(|_| MultiResource::new(config.max_batch))
                        .collect(),
                    cache: TemplateCache::new(config.cache_capacity),
                    scaler: config.autoscaler.clone().map(Autoscaler::new),
                    outstanding: 0,
                    window: Window::default(),
                    submitted: 0,
                    served: 0,
                    served_within_deadline: 0,
                    shed: 0,
                    deadline_rejected: 0,
                    rung_served: Vec::new(),
                    latency_hist: Histogram::new(0.0, hist_hi, 512).expect("valid geometry"),
                    queue_wait_hist: Histogram::new(0.0, hist_hi, 512).expect("valid geometry"),
                }
            })
            .collect();
        // Pre-prime every shard's cache with the templates it owns on
        // the ring — identically for every strategy, so hit-rate
        // comparisons measure routing, not starting conditions.
        let total_templates: u64 = trace
            .trace
            .requests
            .iter()
            .map(|r| r.template_id + 1)
            .max()
            .unwrap_or(0);
        for t in 0..total_templates {
            if let Some(owner) = ring.primary(t) {
                shards[owner as usize].cache.prime(t);
            }
        }
        let router = FleetRouter::new(config.strategy, ring);
        let strategy = config.strategy.name();
        let scale_interval = SimDuration::from_secs_f64(config.scale_interval_secs.max(0.001));
        let deadline_secs = config.deadline_secs;
        let mut world = World {
            trace,
            shards,
            router,
            cost,
            engine,
            config,
            deadline,
            spills: 0,
            cache_hits: 0,
            cache_misses: 0,
            last_completion: SimTime::ZERO,
            inflight: 0,
            next_arrival: 0,
        };
        let mut sim: Simulation<FleetEv, Q> = Simulation::with_scheduler(queue);
        for (i, req) in trace.trace.requests.iter().enumerate() {
            sim.queue_mut()
                .schedule_at(req.arrival(), FleetEv::Arrival(i));
        }
        if !trace.trace.is_empty() {
            sim.queue_mut()
                .schedule_after(scale_interval, FleetEv::ScaleTick);
        }
        sim.run(&mut world);
        // Roll up.
        let makespan_secs = world.last_completion.as_secs_f64();
        let window_secs = makespan_secs.max(1e-9);
        let shard_reports: Vec<ShardSloReport> = world
            .shards
            .iter()
            .enumerate()
            .map(|(sx, s)| ShardSloReport {
                shard: sx as u32,
                report: SloReport {
                    label: format!("shard-{sx}"),
                    deadline_secs,
                    submitted: s.submitted,
                    served: s.served,
                    served_within_deadline: s.served_within_deadline,
                    shed: s.shed,
                    deadline_rejected: s.deadline_rejected,
                    other_rejected: 0,
                    goodput_rps: s.served as f64 / window_secs,
                    goodput_at_deadline_rps: s.served_within_deadline as f64 / window_secs,
                    p95_latency_secs: s.latency_hist.percentile(0.95),
                    mean_latency_secs: s.latency_hist.mean(),
                    rungs: s
                        .rung_served
                        .iter()
                        .map(|&(label, served)| fps_metrics::RungServed::new(label, served, None))
                        .collect(),
                    bubble_fraction: None,
                },
                latency_hist: s.latency_hist.clone(),
                queue_wait_hist: s.queue_wait_hist.clone(),
            })
            .collect();
        let fleet = FleetSloReport::merge("fleet", window_secs, &shard_reports)
            .expect("uniform histogram geometry");
        FleetReport {
            strategy,
            shard_reports,
            fleet,
            cache_hits: world.cache_hits,
            cache_misses: world.cache_misses,
            spills: world.spills,
            scale_ups: world
                .shards
                .iter()
                .filter_map(|s| s.scaler.as_ref())
                .map(Autoscaler::ups)
                .sum(),
            scale_downs: world
                .shards
                .iter()
                .filter_map(|s| s.scaler.as_ref())
                .map(Autoscaler::downs)
                .sum(),
            final_workers: world.shards.iter().map(|s| s.pools.len()).collect(),
            makespan_secs,
            events_processed: sim.events_processed(),
        }
    }
}

/// Model defaults live behind a helper so the simulator has one place
/// naming which paper model the analytic costs are calibrated to.
struct ModelDefaults;

impl ModelDefaults {
    fn paper() -> fps_diffusion::ModelConfig {
        fps_diffusion::ModelConfig::paper_sdxl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_workload::{FleetTraceConfig, TenantSpec};

    fn small_trace() -> FleetTrace {
        FleetTrace::generate(&FleetTraceConfig {
            tenants: vec![TenantSpec::new("t", 3.0, 48)],
            duration_secs: 120.0,
            diurnal: None,
            seed: 42,
        })
    }

    fn config(strategy: RouteStrategy) -> FleetConfig {
        FleetConfig {
            shards: 4,
            workers_per_shard: 2,
            max_batch: 4,
            cache_capacity: 12,
            strategy,
            ..Default::default()
        }
    }

    #[test]
    fn conservation_holds_per_shard_and_fleet() {
        let trace = small_trace();
        let r = FleetSim::run(
            config(RouteStrategy::Affinity { load_factor: 1.25 }),
            &trace,
        );
        assert_eq!(r.fleet.fleet.submitted, trace.trace.len() as u64);
        assert_eq!(r.fleet.fleet.lost(), 0, "requests vanished");
        for s in &r.shard_reports {
            assert_eq!(s.report.lost(), 0, "shard {} lost requests", s.shard);
        }
        assert!(r.fleet.fleet.served > 0);
        assert!(r.makespan_secs > 0.0);
        // Two events per request plus scale ticks.
        assert!(r.events_processed >= 2 * r.fleet.fleet.served);
    }

    #[test]
    fn replays_are_byte_identical_on_both_schedulers() {
        let trace = small_trace();
        let cfg = config(RouteStrategy::Affinity { load_factor: 1.25 });
        let a = FleetSim::run(cfg.clone(), &trace)
            .to_json()
            .to_string_compact();
        let b = FleetSim::run(cfg.clone(), &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a, b, "same scheduler, same bytes");
        let heap = FleetSim::run_on_heap(cfg, &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a, heap, "calendar and heap runs diverged");
    }

    #[test]
    fn affinity_beats_round_robin_on_hit_rate() {
        let trace = small_trace();
        let aff = FleetSim::run(
            config(RouteStrategy::Affinity { load_factor: 1.25 }),
            &trace,
        );
        let rr = FleetSim::run(config(RouteStrategy::RoundRobin), &trace);
        assert!(
            aff.hit_rate() > rr.hit_rate(),
            "affinity {} vs round-robin {}",
            aff.hit_rate(),
            rr.hit_rate()
        );
    }

    #[test]
    fn autoscaler_grows_pools_under_pressure() {
        let trace = FleetTrace::generate(&FleetTraceConfig {
            tenants: vec![TenantSpec::new("hot", 12.0, 32)],
            duration_secs: 300.0,
            diurnal: None,
            seed: 9,
        });
        let mut cfg = config(RouteStrategy::Affinity { load_factor: 1.25 });
        cfg.workers_per_shard = 1;
        cfg.autoscaler = Some(AutoscalerConfig {
            min_workers: 1,
            max_workers: 6,
            up_ticks: 1,
            cooldown: SimDuration::from_secs_f64(10.0),
            ..Default::default()
        });
        let r = FleetSim::run(cfg, &trace);
        assert!(r.scale_ups > 0, "no scale-ups under overload");
        assert!(r.final_workers.iter().any(|&w| w > 1));
    }

    #[test]
    fn empty_trace_produces_an_empty_report() {
        let trace = FleetTrace::generate(&FleetTraceConfig {
            tenants: vec![],
            duration_secs: 10.0,
            diurnal: None,
            seed: 0,
        });
        let r = FleetSim::run(config(RouteStrategy::RoundRobin), &trace);
        assert_eq!(r.fleet.fleet.submitted, 0);
        assert_eq!(r.events_processed, 0);
    }
}
